"""Shared fixtures for the service tests: fabricated results and a
gateable stub engine, so queue/dedup/quota behaviour is tested
deterministically without paying for real simulations."""

import threading

import pytest

from repro.energy.model import EnergyBreakdown
from repro.gpu.stats import Slot
from repro.harness import runner
from repro.harness.runner import RunResult, RunSpec


@pytest.fixture(autouse=True)
def _isolated_service_cache(tmp_path, monkeypatch):
    """Per-test cache isolation: the stub engine records *fabricated*
    results through the real checkpoint path (that is what the dedup
    layer reads back), and those must never leak into the session-wide
    cache other tests' real simulations resolve from."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "service-cache"))
    runner.clear_caches()
    yield
    runner.clear_caches()


def make_result(spec: RunSpec, cycles: int = 1000) -> RunResult:
    """A minimal, raw-free RunResult consistent with ``spec``."""
    return RunResult(
        app=spec.app,
        design=spec.design.name,
        cycles=cycles,
        ipc=1.5,
        instructions=cycles,
        assist_instructions=0,
        bandwidth_utilization=0.5,
        compression_ratio=1.0,
        energy=EnergyBreakdown(core_dynamic=1.0),
        slot_breakdown={slot: 0.2 for slot in Slot},
        md_cache_hit_rate=None,
        dram_bursts={},
        l2_hit_rate=0.5,
        truncated=False,
        occupancy_blocks=1,
    )


class GateEngine:
    """Engine stub: ``run_many`` blocks on a gate, then resolves every
    spec with a fabricated result (or a scripted failure). Lets tests
    hold work in the RUNNING state while they probe coalescing, events
    and quotas."""

    def __init__(self, gated: bool = False) -> None:
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self.calls = 0
        self.specs_run = []
        #: Specs (by ``app@design`` label) that fail instead of resolve.
        self.fail = set()

    def run_many(self, specs, strict=True, label=None,
                 on_result=None, on_failure=None):
        from repro.harness.parallel import RunFailure

        self.calls += 1
        assert self.gate.wait(timeout=30.0), "gate never opened"
        for spec in specs:
            self.specs_run.append(spec)
            if f"{spec.app}@{spec.design.name}" in self.fail:
                on_failure(RunFailure(
                    spec=spec, kind="error", attempts=2,
                    exception="InjectedFault: scripted failure",
                ))
            else:
                result = make_result(spec)
                # Same contract as the real engine: checkpoint the
                # result into the runner caches as it lands, so a
                # later identical submission cache-serves.
                runner.record_result(spec, result)
                on_result(spec, result)

    def close(self) -> None:
        self.gate.set()


@pytest.fixture
def gate_engine():
    return GateEngine(gated=True)


@pytest.fixture
def open_engine():
    return GateEngine(gated=False)
