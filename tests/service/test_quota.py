"""Per-tenant admission control (`repro.service.quota`).

All deterministic: the token bucket takes an injectable clock, so rate
behaviour is tested by advancing fake time, never by sleeping.
"""

import pytest

from repro.service.quota import (
    QuotaExceeded,
    QuotaLimits,
    QuotaManager,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_acquire() for _ in range(3)] == \
            [True, True, False]

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_nonpositive_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(100))
        assert bucket.retry_after() == 0.0


class TestQuotaManager:
    def _manager(self, **limits) -> tuple[QuotaManager, FakeClock]:
        clock = FakeClock()
        defaults = dict(rate=1000.0, burst=1000.0,
                        max_queued_jobs=4, max_inflight_specs=10)
        defaults.update(limits)
        return QuotaManager(QuotaLimits(**defaults), clock=clock), clock

    def test_admit_reserves_and_release_frees(self):
        manager, _ = self._manager()
        manager.admit("alice", 3)
        snap = manager.snapshot()["alice"]
        assert snap["queued_jobs"] == 1
        assert snap["inflight_specs"] == 3
        manager.release_queued("alice")
        manager.release_specs("alice", 3)
        snap = manager.snapshot()["alice"]
        assert snap["queued_jobs"] == 0
        assert snap["inflight_specs"] == 0

    def test_rate_limited_code_and_retry_after(self):
        manager, _ = self._manager(rate=1e-9, burst=1.0)
        manager.admit("alice", 1)
        with pytest.raises(QuotaExceeded) as exc_info:
            manager.admit("alice", 1)
        assert exc_info.value.code == "rate-limited"
        assert exc_info.value.retry_after > 0

    def test_queue_full_code(self):
        manager, _ = self._manager(max_queued_jobs=1)
        manager.admit("alice", 1)
        with pytest.raises(QuotaExceeded) as exc_info:
            manager.admit("alice", 1)
        assert exc_info.value.code == "queue-full"
        # Backlog rejections must carry a Retry-After hint too, or the
        # server would emit a 429 with no guidance (the rate-limited
        # path always had one).
        assert exc_info.value.retry_after == \
            manager.limits.backlog_retry_after
        assert exc_info.value.retry_after > 0
        # Releasing the queue slot makes room again.
        manager.release_queued("alice")
        manager.admit("alice", 1)

    def test_inflight_full_code(self):
        manager, _ = self._manager(max_inflight_specs=5)
        manager.admit("alice", 4)
        manager.release_queued("alice")
        with pytest.raises(QuotaExceeded) as exc_info:
            manager.admit("alice", 2)
        assert exc_info.value.code == "inflight-full"
        assert exc_info.value.retry_after == \
            manager.limits.backlog_retry_after
        assert exc_info.value.retry_after > 0
        manager.admit("alice", 1)  # 4 + 1 == 5 still fits

    def test_rejection_reserves_nothing(self):
        manager, _ = self._manager(max_inflight_specs=2)
        with pytest.raises(QuotaExceeded):
            manager.admit("alice", 3)
        snap = manager.snapshot()["alice"]
        assert snap["queued_jobs"] == 0
        assert snap["inflight_specs"] == 0
        assert snap["rejected"] == 1
        assert snap["submitted"] == 0

    def test_tenants_are_independent(self):
        manager, _ = self._manager(max_queued_jobs=1)
        manager.admit("alice", 1)
        with pytest.raises(QuotaExceeded):
            manager.admit("alice", 1)
        # Alice's exhausted quota never touches Bob.
        manager.admit("bob", 1)
