"""Payload parsing and content addressing (`repro.service.specs`)."""

import json

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.harness.cache import RunCache
from repro.harness.parallel import RunFailure
from repro.harness.runner import RunSpec
from repro.service.specs import (
    BadRequest,
    failure_payload,
    job_key,
    parse_request,
    result_payload,
    spec_key,
    stall_summary,
)


class TestParseRequest:
    def test_explicit_runs(self):
        specs = parse_request({"runs": [
            {"app": "MM", "design": "base"},
            {"app": "MM", "design": "caba", "algorithm": "fpc"},
        ]})
        assert [s.design.name for s in specs] == ["Base", "CABA-FPC"]
        assert all(s.app == "MM" for s in specs)
        assert all(s.config == GPUConfig.small() for s in specs)

    def test_sweep_cross_product(self):
        specs = parse_request({"sweep": {
            "apps": ["MM", "PVC"], "designs": ["base", "caba"],
        }})
        assert [(s.app, s.design.name) for s in specs] == [
            ("MM", "Base"), ("MM", "CABA-BDI"),
            ("PVC", "Base"), ("PVC", "CABA-BDI"),
        ]

    def test_duplicates_collapse(self):
        specs = parse_request({"runs": [
            {"app": "MM", "design": "base"},
            {"app": "MM", "design": "base"},
        ]})
        assert len(specs) == 1

    def test_exact_by_default_even_under_ambient_sampling(self, monkeypatch):
        # A shared server must not let the server process's REPRO_SAMPLE
        # change what a tenant's submission means.
        monkeypatch.setenv("REPRO_SAMPLE", "1")
        (spec,) = parse_request({"runs": [{"app": "MM", "design": "base"}]})
        assert spec.sample is None

    def test_sample_opt_in(self):
        (spec,) = parse_request({"runs": [
            {"app": "MM", "design": "base", "sample": "50:100:800"},
        ]})
        assert spec.sample == SampleConfig(warmup=50, measure=100, skip=800)
        (spec,) = parse_request({"runs": [
            {"app": "MM", "design": "base", "sample": True},
        ]})
        assert spec.sample == SampleConfig()

    def test_bandwidth_scale(self):
        (spec,) = parse_request({"runs": [
            {"app": "MM", "design": "base", "bandwidth_scale": 2.0},
        ]})
        assert spec.config == GPUConfig.small().with_bandwidth_scale(2.0)

    @pytest.mark.parametrize("payload", [
        None,
        [],
        {},                                       # neither runs nor sweep
        {"runs": [], "sweep": {"apps": ["MM"]}},  # both
        {"runs": []},
        {"runs": ["MM"]},
        {"runs": [{"design": "base"}]},           # no app
        {"runs": [{"app": "NOPE"}]},
        {"runs": [{"app": "MM", "design": "warp-drive"}]},
        {"runs": [{"app": "MM", "algorithm": "nope"}]},
        {"runs": [{"app": "MM", "config": "huge"}]},
        {"runs": [{"app": "MM", "bandwidth_scale": -1}]},
        {"runs": [{"app": "MM", "sample": "a:b:c"}]},
        {"runs": [{"app": "MM", "frobnicate": 1}]},
        {"sweep": {"designs": ["base"]}},         # no apps
        {"sweep": {"apps": []}},
    ])
    def test_bad_payloads(self, payload):
        with pytest.raises(BadRequest):
            parse_request(payload)


class TestContentKeys:
    def test_spec_key_matches_run_cache_key(self):
        # The service's dedup and the on-disk cache must agree on what
        # "the same run" means; both derive from stamp + canonical().
        spec = RunSpec("MM", designs.base(), GPUConfig.small(), sample=None)
        assert spec_key(spec) == RunCache().key(spec)

    def test_job_key_is_order_insensitive(self):
        a = RunSpec("MM", designs.base(), GPUConfig.small(), sample=None)
        b = RunSpec("PVC", designs.base(), GPUConfig.small(), sample=None)
        assert job_key([a, b]) == job_key([b, a])

    def test_job_key_separates_different_work(self):
        a = RunSpec("MM", designs.base(), GPUConfig.small(), sample=None)
        b = RunSpec("PVC", designs.base(), GPUConfig.small(), sample=None)
        assert job_key([a]) != job_key([b])
        assert job_key([a]) != job_key([a, b])


class TestPayloads:
    def test_result_payload_is_json_safe(self):
        from repro.harness.runner import run_app

        run = run_app("MM", designs.base())
        payload = result_payload(run)
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text)["app"] == "MM"
        assert payload["energy"]["total"] == pytest.approx(run.energy.total)
        assert set(payload["slot_breakdown"]) == {
            "active", "compute_stall", "memory_stall", "data_stall", "idle",
        }

    def test_failure_payload(self):
        spec = RunSpec("MM", designs.base(), GPUConfig.small(), sample=None)
        failure = RunFailure(spec=spec, kind="timeout", attempts=2,
                             exception="TimeoutError: no result")
        payload = failure_payload(failure)
        json.dumps(payload)
        assert payload["app"] == "MM"
        assert payload["design"] == "Base"
        assert payload["kind"] == "timeout"

    def test_stall_summary_empty(self):
        assert stall_summary([]) == {}
