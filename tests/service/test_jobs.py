"""Job store behaviour (`repro.service.jobs`): queueing, two-level
dedup, events, failures, quota lifecycle — all against the stub engine
from conftest, so nothing here simulates."""

import threading
import time

import pytest

from repro.harness import runner
from repro.service.jobs import JobNotFinished, JobStore, UnknownJob
from repro.service.quota import QuotaExceeded, QuotaLimits

PAYLOAD = {"sweep": {"apps": ["MM"], "designs": ["base", "caba"]}}
OTHER = {"runs": [{"app": "PVC", "design": "base"}]}

LIMITS = QuotaLimits(rate=1e9, burst=1e9,
                     max_queued_jobs=100, max_inflight_specs=1000)


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


@pytest.fixture
def store(open_engine):
    store = JobStore(engine=open_engine, limits=LIMITS)
    yield store
    store.close()


@pytest.fixture
def gated_store(gate_engine):
    store = JobStore(engine=gate_engine, limits=LIMITS)
    yield store
    gate_engine.gate.set()
    store.close()


class TestLifecycle:
    def test_submit_runs_and_finishes(self, store, open_engine):
        job = store.submit("alice", PAYLOAD)
        assert job.served_from == "new"
        wait_until(lambda: store.status(job.id)["status"] == "done")
        status = store.status(job.id)
        assert status["specs"] == {"total": 2, "done": 2,
                                   "cached": 0, "failed": 0}
        assert status["stalls"]["memory_stall"] == pytest.approx(0.2)
        result = store.result(job.id)
        assert [r["design"] for r in result["results"]] == \
            ["Base", "CABA-BDI"]
        assert open_engine.calls == 1

    def test_result_before_terminal_is_an_error(self, gated_store):
        job = gated_store.submit("alice", PAYLOAD)
        with pytest.raises(JobNotFinished):
            gated_store.result(job.id)

    def test_unknown_job(self, store):
        with pytest.raises(UnknownJob):
            store.status("j999999")

    def test_failures_are_structured_and_partial(self, store, open_engine):
        open_engine.fail.add("MM@CABA-BDI")
        job = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(job.id)["status"] == "failed")
        status = store.status(job.id)
        assert status["specs"]["done"] == 1
        assert status["specs"]["failed"] == 1
        (failure,) = status["failures"]
        assert failure["design"] == "CABA-BDI"
        assert failure["kind"] == "error"
        assert "InjectedFault" in failure["exception"]
        # The completed sibling's result is still delivered.
        result = store.result(job.id)
        assert result["results"][0]["design"] == "Base"
        assert result["results"][1] is None


class TestDedup:
    def test_inflight_coalescing(self, gated_store, gate_engine):
        first = gated_store.submit("alice", PAYLOAD)
        wait_until(lambda: gate_engine.calls == 1)  # worker picked it up
        second = gated_store.submit("bob", PAYLOAD)
        assert second.served_from == "coalesced"
        assert second.work is first.work
        gate_engine.gate.set()
        wait_until(
            lambda: gated_store.status(second.id)["status"] == "done"
        )
        # One engine batch, both tenants see the same results.
        assert gate_engine.calls == 1
        assert gated_store.result(first.id)["results"] == \
            gated_store.result(second.id)["results"]

    def test_coalescing_while_still_queued(self, gated_store, gate_engine):
        # Hold the worker on one job; the next two identical submissions
        # coalesce while their work is still in the queue.
        blocker = gated_store.submit("alice", OTHER)
        wait_until(lambda: gate_engine.calls == 1)
        first = gated_store.submit("alice", PAYLOAD)
        second = gated_store.submit("bob", PAYLOAD)
        assert first.served_from == "new"
        assert second.served_from == "coalesced"
        gate_engine.gate.set()
        wait_until(
            lambda: gated_store.status(second.id)["status"] == "done"
        )
        assert gate_engine.calls == 2  # blocker + one shared batch
        assert gated_store.status(blocker.id)["status"] == "done"

    def test_cache_serving_after_completion(self, store, open_engine):
        first = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(first.id)["status"] == "done")
        calls = open_engine.calls
        second = store.submit("bob", PAYLOAD)
        assert second.served_from == "cache"
        assert store.status(second.id)["status"] == "done"
        assert store.status(second.id)["specs"]["cached"] == 2
        assert open_engine.calls == calls  # zero new engine batches
        assert store.result(first.id)["results"] == \
            store.result(second.id)["results"]

    def test_permuted_resubmission_coalesces(self, gated_store, gate_engine):
        gated_store.submit("alice", {"runs": [
            {"app": "MM", "design": "base"},
            {"app": "PVC", "design": "base"},
        ]})
        second = gated_store.submit("bob", {"runs": [
            {"app": "PVC", "design": "base"},
            {"app": "MM", "design": "base"},
        ]})
        assert second.served_from == "coalesced"


class TestEvents:
    def test_event_stream_and_since(self, store):
        job = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(job.id)["status"] == "done")
        events = store.events(job.id)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert kinds.count("spec-done") == 2
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        # `since` resumes mid-stream.
        tail = store.events(job.id, since=events[-2]["seq"])
        assert [e["seq"] for e in tail] == [events[-1]["seq"]]

    def test_long_poll_wakes_on_progress(self, gated_store, gate_engine):
        job = gated_store.submit("alice", PAYLOAD)
        wait_until(lambda: gate_engine.calls == 1)
        seen = {e["seq"] for e in gated_store.events(job.id)}
        opener = threading.Timer(0.05, gate_engine.gate.set)
        opener.start()
        fresh = gated_store.events(job.id, since=max(seen), wait=10.0)
        opener.join()
        assert fresh  # woke with new events, not an empty timeout

    def test_unrelated_job_event_does_not_steal_long_poll(
            self, gated_store, gate_engine):
        """Regression: the condition variable is shared by all works,
        so another job's event wakes every parked long-poll. A wake for
        job B must not end job A's poll early with an empty list — it
        has to re-check and keep waiting out its budget."""
        job_a = gated_store.submit("alice", PAYLOAD)
        wait_until(lambda: gate_engine.calls == 1)
        since = max(e["seq"] for e in gated_store.events(job_a.id))
        # At ~0.05s job B's submission appends a "queued" event (and
        # notifies the shared condition); A's real progress only
        # arrives when the gate opens at ~0.4s.
        stealer = threading.Timer(
            0.05, lambda: gated_store.submit("bob", OTHER))
        opener = threading.Timer(0.4, gate_engine.gate.set)
        stealer.start()
        opener.start()
        start = time.monotonic()
        fresh = gated_store.events(job_a.id, since=since, wait=10.0)
        elapsed = time.monotonic() - start
        stealer.join()
        opener.join()
        assert fresh, "poll returned empty (stolen by job B's wake)"
        assert all(e["seq"] > since for e in fresh)
        # With the single-wait bug the poll returns at ~0.05s; the loop
        # keeps it parked until A's own events exist.
        assert elapsed >= 0.3

    def test_since_slice_matches_filter_semantics(self, store):
        """``events(since=N)`` is implemented as a tail slice (seqs are
        contiguous from 1); pin that it equals filtering the full log
        by ``seq > N`` for every interesting N, including out-of-range
        and negative values."""
        job = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(job.id)["status"] == "done")
        # Grow the log well past the real events so the slice has a
        # long tail to get wrong.
        with store._lock:
            work = store._jobs[job.id].work
            for _ in range(500):
                store._event(work, "spec-done", spec="synthetic")
        events = store.events(job.id)
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        for since in (0, 1, 7, len(events) - 1, len(events),
                      len(events) + 13, -5):
            expected = [e for e in events if e["seq"] > since]
            assert store.events(job.id, since=since) == expected


class TestQuotaIntegration:
    def test_rejection_does_not_disturb_other_tenant(self, gated_store,
                                                     gate_engine):
        limits = gated_store.quota.limits
        gated_store.quota.limits = QuotaLimits(
            rate=1e9, burst=1e9, max_queued_jobs=100, max_inflight_specs=2
        )
        try:
            alice = gated_store.submit("alice", PAYLOAD)
            with pytest.raises(QuotaExceeded) as exc_info:
                gated_store.submit("bob", {"sweep": {
                    "apps": ["MM", "PVC", "CONS"],
                    "designs": ["base"],
                }})
            assert exc_info.value.code == "inflight-full"
            gate_engine.gate.set()
            wait_until(
                lambda: gated_store.status(alice.id)["status"] == "done"
            )
        finally:
            gated_store.quota.limits = limits

    def test_reservations_release_at_terminal(self, store):
        job = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(job.id)["status"] == "done")
        snap = store.stats()["tenants"]["alice"]
        assert snap["queued_jobs"] == 0
        assert snap["inflight_specs"] == 0

    def test_cache_served_job_releases_immediately(self, store):
        first = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(first.id)["status"] == "done")
        store.submit("bob", PAYLOAD)  # cache-served
        snap = store.stats()["tenants"]["bob"]
        assert snap["queued_jobs"] == 0
        assert snap["inflight_specs"] == 0


class TestStats:
    def test_counters(self, store):
        job = store.submit("alice", PAYLOAD)
        wait_until(lambda: store.status(job.id)["status"] == "done")
        store.submit("bob", PAYLOAD)
        stats = store.stats()
        assert stats["jobs"] == 2
        assert stats["served_from"] == {"new": 1, "cache": 1}
        assert stats["works"]["done"] == 1
        assert stats["simulations"] == runner.simulation_count()
