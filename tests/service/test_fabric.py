"""Distributed sweep fabric (`repro.service.fabric`).

Unit tests drive the coordinator's lease protocol directly (fabricated
results, no simulation); the integration test at the bottom is the
issue's acceptance scenario — a sweep dispatched to two worker
processes over real HTTP must be byte-identical to the single-node run
with **zero duplicate simulations**.
"""

import threading
import time

import pytest

from repro.harness import runner
from repro.harness.cache import version_stamp
from repro.harness.parallel import ExperimentEngine, RunFailure
from repro.service.client import ServiceClient, ServiceError
from repro.service.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricWorker,
    decode_spec,
    encode_spec,
)
from repro.service.jobs import JobStore
from repro.service.server import ServiceConfig, SweepServer
from repro.service.specs import parse_request

from .conftest import make_result

PAYLOAD = {"sweep": {"apps": ["MM"], "designs": ["base", "caba"]}}


def _specs():
    return parse_request(PAYLOAD)


def _config(**overrides) -> FabricConfig:
    defaults = dict(lease_ttl=30.0, lease_specs=2, retries=3, poll=0.05)
    defaults.update(overrides)
    return FabricConfig(**defaults)


class _Batch:
    """Runs ``coordinator.run_many`` on a thread and collects the
    store-facing callbacks."""

    def __init__(self, coordinator, specs) -> None:
        self.results = {}
        self.failures = []
        self.batch = None
        self.thread = threading.Thread(
            target=self._run, args=(coordinator, specs), daemon=True)
        self.thread.start()

    def _run(self, coordinator, specs) -> None:
        self.batch = coordinator.run_many(
            specs, strict=False,
            on_result=lambda spec, result: self.results.__setitem__(
                spec, result),
            on_failure=self.failures.append,
        )

    def join(self, timeout: float = 30.0):
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "run_many never returned"
        return self.batch


class TestSpecWire:
    def test_encode_decode_round_trip(self):
        for spec in _specs():
            assert decode_spec(encode_spec(spec)) == spec


class TestProtocol:
    def test_register_rejects_stamp_mismatch(self):
        coordinator = FabricCoordinator(_config())
        with pytest.raises(FabricError) as exc_info:
            coordinator.register("w", "somebody-elses-stamp")
        assert exc_info.value.code == "stamp-mismatch"

    def test_lease_requires_registration(self):
        coordinator = FabricCoordinator(_config())
        with pytest.raises(FabricError) as exc_info:
            coordinator.lease("ghost")
        assert exc_info.value.code == "unknown-worker"

    def test_lease_complete_resolves_batch(self):
        coordinator = FabricCoordinator(_config())
        specs = _specs()
        batch = _Batch(coordinator, specs)
        worker = coordinator.register("w", version_stamp())["worker"]

        deadline = time.monotonic() + 10.0
        done = []
        while len(done) < len(specs):
            assert time.monotonic() < deadline
            lease = coordinator.lease(worker)
            if lease["lease"] is None:
                time.sleep(0.01)
                continue
            for item in lease["specs"]:
                spec = decode_spec(item["spec"])
                # Stand-in for the worker's upload: land the result in
                # the coordinator's cache through the checkpoint path.
                runner.record_result(spec, make_result(spec))
                done.append(item["key"])
            coordinator.complete(worker, lease["lease"],
                                 done=[i["key"] for i in lease["specs"]],
                                 failures=[], simulated=len(lease["specs"]))
        result = batch.join()
        assert not result.failures
        assert all(r is not None for r in result.results)
        assert set(batch.results) == set(specs)
        stats = coordinator.stats()
        assert stats["completed"] == len(specs)
        assert stats["remote_simulated"] == len(specs)

    def test_expired_lease_requeues_and_survivor_completes(self):
        coordinator = FabricCoordinator(_config(lease_ttl=0.2,
                                                lease_specs=2))
        specs = _specs()
        batch = _Batch(coordinator, specs)
        crasher = coordinator.register("crasher", version_stamp())["worker"]
        lease = coordinator.lease(crasher)
        assert len(lease["specs"]) == len(specs)
        # The crasher never completes nor heartbeats; its lease expires
        # and the specs go back to the queue for the survivor.
        survivor = coordinator.register("survivor",
                                        version_stamp())["worker"]
        deadline = time.monotonic() + 10.0
        regranted = []
        while len(regranted) < len(specs):
            assert time.monotonic() < deadline
            grant = coordinator.lease(survivor)
            if grant["lease"] is None:
                time.sleep(0.02)
                continue
            for item in grant["specs"]:
                spec = decode_spec(item["spec"])
                runner.record_result(spec, make_result(spec))
                regranted.append(item["key"])
            coordinator.complete(
                survivor, grant["lease"],
                done=[i["key"] for i in grant["specs"]], failures=[])
        result = batch.join()
        assert not result.failures
        stats = coordinator.stats()
        assert stats["leases_expired"] >= 1
        assert stats["specs_requeued"] >= len(specs)
        # The crasher's complete is now a structured stale-lease error.
        with pytest.raises(FabricError) as exc_info:
            coordinator.complete(crasher, lease["lease"], done=[],
                                 failures=[])
        assert exc_info.value.code == "stale-lease"

    def test_retries_exhausted_becomes_structured_failure(self):
        coordinator = FabricCoordinator(_config(lease_ttl=0.1,
                                                retries=2, lease_specs=2))
        specs = _specs()[:1]
        batch = _Batch(coordinator, specs)
        worker = coordinator.register("w", version_stamp())["worker"]
        granted = 0
        deadline = time.monotonic() + 20.0
        while granted < 2:  # burn both attempts by letting leases die
            assert time.monotonic() < deadline
            grant = coordinator.lease(worker)
            if grant["lease"] is None:
                time.sleep(0.02)
                continue
            granted += 1
            # never complete: the TTL does the failing
        result = batch.join()
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "lease-expired"
        assert failure.attempts == 2
        assert batch.failures == [failure]

    def test_worker_failure_report_charges_an_attempt(self):
        coordinator = FabricCoordinator(_config(retries=1))
        specs = _specs()[:1]
        batch = _Batch(coordinator, specs)
        worker = coordinator.register("w", version_stamp())["worker"]
        deadline = time.monotonic() + 10.0
        while True:
            assert time.monotonic() < deadline
            grant = coordinator.lease(worker)
            if grant["lease"] is not None:
                break
            time.sleep(0.01)
        coordinator.complete(
            worker, grant["lease"], done=[],
            failures=[{"key": grant["specs"][0]["key"], "kind": "error",
                       "exception": "BoomError: injected"}])
        result = batch.join()
        assert len(result.failures) == 1
        assert result.failures[0].kind == "error"
        assert "BoomError" in result.failures[0].exception

    def test_done_without_upload_is_not_silent_success(self):
        """A worker claiming a spec done whose result never landed in
        the cache must cost an attempt, not fabricate a completion."""
        coordinator = FabricCoordinator(_config(retries=1))
        specs = _specs()[:1]
        batch = _Batch(coordinator, specs)
        worker = coordinator.register("w", version_stamp())["worker"]
        deadline = time.monotonic() + 10.0
        while True:
            assert time.monotonic() < deadline
            grant = coordinator.lease(worker)
            if grant["lease"] is not None:
                break
            time.sleep(0.01)
        coordinator.complete(worker, grant["lease"],
                             done=[grant["specs"][0]["key"]], failures=[])
        result = batch.join()
        assert len(result.failures) == 1
        assert result.failures[0].kind == "upload-missing"

    def test_abort_fails_open_specs(self):
        coordinator = FabricCoordinator(_config())
        batch = _Batch(coordinator, _specs())
        time.sleep(0.05)
        coordinator.abort()
        result = batch.join()
        assert result.failures
        assert all(f.kind == "aborted" for f in result.failures)


class TestIntegration:
    """The acceptance scenario, over real HTTP and real simulations."""

    def test_two_worker_sweep_matches_single_node(self, tmp_path,
                                                  monkeypatch):
        n_specs = len(_specs())

        # --- single-node reference run --------------------------------
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "single"))
        runner.clear_caches()
        store = JobStore(engine=ExperimentEngine(jobs=1))
        server = SweepServer(store, ServiceConfig(host="127.0.0.1",
                                                  port=0))
        host, port = server.start_background()
        client = ServiceClient(f"http://{host}:{port}", tenant="ref")
        before = runner.simulation_count()
        accepted = client.submit(PAYLOAD)
        final = client.wait(accepted["job"], timeout=600.0)
        assert final["status"] == "done"
        single_sims = runner.simulation_count() - before
        assert single_sims == n_specs
        single_bytes = client.result_bytes(accepted["job"])
        server.stop()
        store.close()

        # --- same sweep through the fabric, fresh cache ---------------
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fabric"))
        runner.clear_caches()
        coordinator = FabricCoordinator(
            _config(lease_ttl=15.0, lease_specs=1))
        store = JobStore(engine=coordinator)
        server = SweepServer(store, ServiceConfig(host="127.0.0.1",
                                                  port=0))
        host, port = server.start_background()
        url = f"http://{host}:{port}"
        try:
            client = ServiceClient(url, tenant="fab")
            before = runner.simulation_count()
            accepted = client.submit(PAYLOAD)
            workers = [FabricWorker(url, name=f"w{i}", max_idle=2.0)
                       for i in range(2)]
            threads = [threading.Thread(target=w.run, daemon=True)
                       for w in workers]
            for thread in threads:
                thread.start()
            final = client.wait(accepted["job"], timeout=600.0)
            assert final["status"] == "done"

            # Zero duplicate simulations across the whole fabric: the
            # workers share this process, so the counter covers both.
            assert runner.simulation_count() - before == n_specs
            fabric_bytes = client.result_bytes(accepted["job"])
            assert fabric_bytes == single_bytes

            stats = client.stats()
            assert stats["fabric"]["remote_simulated"] == n_specs
            assert stats["fabric"]["remote_cached"] == 0
            assert stats["fabric"]["completed"] == n_specs

            # Resubmission is served from the shared cache: a resumed
            # sweep costs nothing.
            again = ServiceClient(url, tenant="resumer").submit(PAYLOAD)
            assert again["served_from"] == "cache"
            assert runner.simulation_count() - before == n_specs

            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads)
            assert sum(w.simulated for w in workers) == n_specs
        finally:
            server.stop()
            store.close()

    def test_fabric_endpoints_404_without_fabric_engine(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plain"))
        runner.clear_caches()
        store = JobStore(engine=ExperimentEngine(jobs=1))
        server = SweepServer(store, ServiceConfig(host="127.0.0.1",
                                                  port=0))
        host, port = server.start_background()
        try:
            client = ServiceClient(f"http://{host}:{port}")
            with pytest.raises(ServiceError) as exc_info:
                client.register_worker("w", version_stamp())
            assert exc_info.value.status == 404
            assert exc_info.value.code == "fabric-disabled"
        finally:
            server.stop()
            store.close()
