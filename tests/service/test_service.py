"""End-to-end service tests over real HTTP and real simulations.

The module-scoped server runs one real (tiny) sweep; everything else —
the two-tenant dedup guarantee, byte-identity, quota rejections, HTTP
error mapping, the CLI subcommands — reuses it, so the whole module
costs two simulator invocations.

The headline assertion is the issue's acceptance test: a second tenant
submitting an identical sweep gets byte-for-byte identical result
bytes with **zero additional simulator invocations**, verified against
:func:`repro.harness.runner.simulation_count`.
"""

import json
import os

import pytest

from repro.harness import runner
from repro.harness.parallel import ExperimentEngine
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobStore
from repro.service.quota import QuotaLimits
from repro.service.server import ServiceConfig, SweepServer

SWEEP = {"sweep": {"apps": ["MM"], "designs": ["base", "caba"]}}


@pytest.fixture(scope="module", autouse=True)
def _isolated_service_cache(tmp_path_factory):
    """Overrides the per-test isolation from conftest with *module*
    scope: the dedup assertions here depend on alice's real results
    staying resolvable for the whole module (that is the service's
    entire point), while still never touching the session cache other
    test files share."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("service-e2e-cache")
    )
    runner.clear_caches()
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    runner.clear_caches()


@pytest.fixture(scope="module")
def server():
    store = JobStore(
        engine=ExperimentEngine(jobs=1),
        limits=QuotaLimits(rate=1e9, burst=1e9,
                           max_queued_jobs=100, max_inflight_specs=100),
    )
    server = SweepServer(store, ServiceConfig(host="127.0.0.1", port=0))
    server.start_background()
    yield server
    server.stop()
    store.close()


@pytest.fixture(scope="module")
def url(server):
    host, port = server.address
    return f"http://{host}:{port}"


@pytest.fixture(scope="module")
def completed(url):
    """The one real sweep this module pays for: tenant alice runs
    MM x (Base, CABA-BDI) and waits for it."""
    alice = ServiceClient(url, tenant="alice")
    before = runner.simulation_count()
    accepted = alice.submit(SWEEP)
    final = alice.wait(accepted["job"], timeout=600.0)
    return {
        "client": alice,
        "job": accepted["job"],
        "accepted": accepted,
        "final": final,
        "sims": runner.simulation_count() - before,
    }


class TestHealthAndStats:
    def test_health(self, url):
        assert ServiceClient(url).health() == {"ok": True}

    def test_stats_shape(self, url, completed):
        stats = ServiceClient(url).stats()
        assert stats["simulations"] == runner.simulation_count()
        assert "alice" in stats["tenants"]


class TestSweepLifecycle:
    def test_sweep_completes(self, completed):
        assert completed["final"]["status"] == "done"
        assert completed["final"]["specs"]["done"] == 2
        assert completed["sims"] == 2  # one per unique spec, no more

    def test_status_streams_stall_attribution(self, completed):
        status = completed["client"].status(completed["job"])
        stalls = status["stalls"]
        assert set(stalls) == {"active", "compute_stall", "memory_stall",
                               "data_stall", "idle"}
        assert sum(stalls.values()) == pytest.approx(1.0, abs=1e-6)

    def test_events_tell_the_story(self, completed):
        events = completed["client"].events(completed["job"])
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds.count("spec-done") == 2
        assert kinds[-1] == "done"

    def test_results_match_direct_run(self, completed):
        from repro import design as designs
        from repro.harness.runner import run_app

        body = completed["client"].result(completed["job"])
        by_design = {r["design"]: r for r in body["results"]}
        direct = run_app("MM", designs.base(), sample=None)
        assert by_design["Base"]["cycles"] == direct.cycles
        assert by_design["Base"]["ipc"] == pytest.approx(direct.ipc)


class TestTwoTenantDedup:
    """ISSUE acceptance: identical submission from a second tenant —
    byte-for-byte identical results, zero additional simulations."""

    def test_second_tenant_costs_zero_simulations(self, url, completed):
        bob = ServiceClient(url, tenant="bob")
        before = runner.simulation_count()
        accepted = bob.submit(SWEEP)
        assert accepted["served_from"] == "cache"
        assert accepted["status"] == "done"
        assert runner.simulation_count() == before

        alice_bytes = completed["client"].result_bytes(completed["job"])
        bob_bytes = bob.result_bytes(accepted["job"])
        assert alice_bytes == bob_bytes  # byte-for-byte, not just equal

    def test_dedup_is_observable_in_stats(self, url, completed):
        stats = ServiceClient(url).stats()
        assert stats["served_from"].get("cache", 0) >= 1


class TestStructuredErrors:
    def test_bad_payload_is_400(self, url):
        with pytest.raises(ServiceError) as exc_info:
            ServiceClient(url).submit({"runs": [{"app": "NOPE"}]})
        assert exc_info.value.status == 400
        assert exc_info.value.code == "bad-request"

    def test_malformed_json_is_400(self, url, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body="{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad-json"

    def test_unknown_job_is_404(self, url):
        with pytest.raises(ServiceError) as exc_info:
            ServiceClient(url).status("j999999")
        assert exc_info.value.status == 404
        assert exc_info.value.code == "unknown-job"

    def test_unknown_route_is_404(self, url):
        with pytest.raises(ServiceError) as exc_info:
            ServiceClient(url)._json("GET", "/v2/nothing")
        assert exc_info.value.status == 404

    def test_wrong_method_is_405(self, url):
        with pytest.raises(ServiceError) as exc_info:
            ServiceClient(url)._json("GET", "/v1/jobs")
        assert exc_info.value.status == 405

    def test_429_matrix_carries_retry_after_header(self, url, server,
                                                   completed):
        """All three quota rejection codes map their hint to a real
        ``Retry-After`` header (regression: ``queue-full`` and
        ``inflight-full`` used to omit ``retry_after``, so only the
        rate-limited 429 carried the header)."""
        import http.client

        saved = server.store.quota.limits
        cases = {
            "rate-limited": QuotaLimits(
                rate=1e-9, burst=1.0,
                max_queued_jobs=100, max_inflight_specs=100),
            "queue-full": QuotaLimits(
                rate=1e9, burst=1e9,
                max_queued_jobs=0, max_inflight_specs=100),
            "inflight-full": QuotaLimits(
                rate=1e9, burst=1e9,
                max_queued_jobs=100, max_inflight_specs=1),
        }
        host, port = server.address
        try:
            for code, limits in cases.items():
                server.store.quota.limits = limits
                tenant = f"hdr-{code}"
                if code == "rate-limited":
                    # Burn the single burst token (cache-served, so it
                    # costs nothing); the next submission is the 429.
                    ServiceClient(url, tenant=tenant).submit(SWEEP)
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "POST", "/v1/jobs", body=json.dumps(SWEEP),
                        headers={"Content-Type": "application/json",
                                 "X-Tenant": tenant})
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    header = response.getheader("Retry-After")
                finally:
                    conn.close()
                assert response.status == 429, code
                assert payload["error"]["code"] == code
                assert header is not None, \
                    f"{code} 429 carries no Retry-After header"
                assert float(header) > 0
                assert float(header) == pytest.approx(
                    payload["error"]["retry_after"], rel=1e-3)
        finally:
            server.store.quota.limits = saved

    def test_quota_rejection_is_structured_429(self, url, server,
                                               completed):
        limits = server.store.quota.limits
        server.store.quota.limits = QuotaLimits(
            rate=1e-9, burst=1.0,
            max_queued_jobs=100, max_inflight_specs=100,
        )
        try:
            mallory = ServiceClient(url, tenant="mallory")
            mallory.submit(SWEEP)  # burst token: admitted (cache-served)
            with pytest.raises(ServiceError) as exc_info:
                mallory.submit(SWEEP)
            assert exc_info.value.status == 429
            assert exc_info.value.code == "rate-limited"
            assert exc_info.value.retry_after > 0
            # The rejection disturbed nobody else: alice's finished job
            # still reads back fine, and a fresh tenant still submits.
            assert completed["client"].status(completed["job"])[
                "status"] == "done"
            carol = ServiceClient(url, tenant="carol")
            assert carol.submit(SWEEP)["served_from"] == "cache"
        finally:
            server.store.quota.limits = limits


class TestCliSubcommands:
    def test_submit_status_result_roundtrip(self, url, completed, capsys):
        from repro.cli import main

        assert main(["submit", "--apps", "MM",
                     "--designs", "base", "caba",
                     "--url", url, "--tenant", "cli"]) == 0
        out = capsys.readouterr().out
        assert "served from: cache" in out
        job_id = out.splitlines()[0].split(":")[1].strip()

        assert main(["status", job_id, "--url", url]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["status"] == "done"

        assert main(["result", job_id, "--url", url]) == 0
        body = json.loads(capsys.readouterr().out)
        assert len(body["results"]) == 2

    def test_submit_wait_prints_results(self, url, capsys):
        from repro.cli import main

        assert main(["submit", "--apps", "MM", "--designs", "base",
                     "--url", url, "--tenant", "cli", "--wait"]) == 0
        out = capsys.readouterr().out
        assert '"results"' in out

    def test_unreachable_server_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["status", "j000001",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "error:" in capsys.readouterr().err
