"""ServiceClient deadline discipline, tested against a fake clock and
a stubbed transport — no sockets, no sleeping."""

import types

import pytest

import repro.service.client as client_mod
from repro.service.client import ServiceClient


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubClient(ServiceClient):
    """Overrides the HTTP layer: the job never finishes, and every
    events long-poll records the wait it was asked for, then consumes
    exactly that much fake time (a long-poll that times out empty)."""

    def __init__(self, clock: FakeClock) -> None:
        super().__init__("http://127.0.0.1:1")
        self.clock = clock
        self.waits: list[float] = []

    def status(self, job_id: str) -> dict:
        return {"status": "running"}

    def events(self, job_id: str, since: int = 0,
               wait: float = 0.0) -> list[dict]:
        self.waits.append(wait)
        self.clock.advance(wait)
        return []


@pytest.fixture
def clock(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(
        client_mod, "time",
        types.SimpleNamespace(monotonic=clock.monotonic),
    )
    return clock


class TestWaitDeadline:
    def test_final_poll_is_clamped_to_remaining_budget(self, clock):
        """Regression: ``wait(timeout=5, poll=2)`` used to issue three
        full 2s long-polls and raise at t=6 — overshooting the caller's
        deadline by up to one poll interval. The last poll must shrink
        to the 1s that is actually left."""
        client = StubClient(clock)
        with pytest.raises(TimeoutError):
            client.wait("j1", timeout=5.0, poll=2.0)
        assert client.waits == [2.0, 2.0, 1.0]
        assert clock.now == 5.0

    def test_raises_without_an_extra_poll_at_exact_deadline(self, clock):
        """When the budget divides evenly into polls, the deadline
        check after the last poll raises before a fourth is issued."""
        client = StubClient(clock)
        with pytest.raises(TimeoutError):
            client.wait("j1", timeout=6.0, poll=2.0)
        assert client.waits == [2.0, 2.0, 2.0]
        assert clock.now == 6.0

    def test_terminal_status_short_circuits(self, clock):
        client = StubClient(clock)
        client.status = lambda job_id: {"status": "done"}
        assert client.wait("j1", timeout=5.0)["status"] == "done"
        assert client.waits == []
