"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_pool(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "PVC" in out and "dmr" in out
        assert "lonestar" in out


class TestRun:
    def test_run_caba(self, capsys):
        assert main(["run", "PVC", "--design", "caba"]) == 0
        out = capsys.readouterr().out
        assert "CABA-BDI" in out
        assert "compression ratio" in out

    def test_run_base(self, capsys):
        assert main(["run", "PVC", "--design", "base"]) == 0
        out = capsys.readouterr().out
        assert "Base" in out

    def test_run_with_algorithm(self, capsys):
        assert main(["run", "PVC", "--design", "caba",
                     "--algorithm", "fvc"]) == 0
        assert "CABA-FVC" in capsys.readouterr().out

    def test_unknown_app_fails_cleanly(self, capsys):
        assert main(["run", "quake3"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bandwidth_scale(self, capsys):
        assert main(["run", "NQU", "--design", "base",
                     "--bandwidth-scale", "2.0"]) == 0


class TestCompare:
    def test_compare_prints_five_designs(self, capsys):
        assert main(["compare", "PVC"]) == 0
        out = capsys.readouterr().out
        for name in ("Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI",
                     "Ideal-BDI"):
            assert name in out


class TestFigure:
    def test_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        assert "17" in capsys.readouterr().out

    def test_tab1(self, capsys):
        assert main(["figure", "tab1"]) == 0
        assert "177.4" in capsys.readouterr().out

    def test_bad_figure_id(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestCompress:
    def test_compress_file(self, tmp_path, capsys):
        path = tmp_path / "data.bin"
        path.write_bytes(bytes(4096))
        assert main(["compress", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bdi" in out and "fvc" in out

    def test_empty_input(self, tmp_path, capsys):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        assert main(["compress", str(path)]) == 1

    def test_padding_of_partial_lines(self, tmp_path, capsys):
        path = tmp_path / "odd.bin"
        path.write_bytes(bytes(100))
        assert main(["compress", str(path), "--line-size", "64"]) == 0
        assert "2 lines" in capsys.readouterr().out


class TestExitCodes:
    def test_unknown_subcommand_exits_nonzero_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "frobnicate" in err

    def test_no_arguments_exits_nonzero_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_known_commands_are_dispatchable(self):
        from repro.cli import _COMMANDS

        for command in ("run", "trace", "compare", "figure", "compress",
                        "cache", "list-apps"):
            assert command in _COMMANDS


class TestTrace:
    def test_trace_writes_artifacts_and_prints_table(self, tmp_path,
                                                     capsys):
        out_dir = tmp_path / "traces"
        assert main(["trace", "PVC", "--design", "caba",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "category" in out and "share" in out
        assert "total" in out
        written = sorted(p.name for p in out_dir.iterdir())
        assert written == ["PVC-CABA-BDI.csv", "PVC-CABA-BDI.json"]

    def test_trace_chrome_flag_adds_chrome_file(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["trace", "PVC", "--design", "caba", "--chrome",
                     "--out", str(out_dir)]) == 0
        names = sorted(p.name for p in out_dir.iterdir())
        assert "PVC-CABA-BDI.chrome.json" in names


class TestCheck:
    def test_fuzz_only_quick_passes(self, capsys):
        assert main(["check", "--quick", "--skip-differential",
                     "--skip-invariants", "--skip-soa", "--lines", "8"]) == 0
        out = capsys.readouterr().out
        assert "roundtrip" in out
        assert "all" in out and "passed" in out

    def test_lines_knob_scales_units(self, capsys):
        assert main(["check", "--skip-differential", "--skip-invariants",
                     "--skip-soa",
                     "--algorithms", "bdi", "--lines", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["check", "--skip-differential", "--skip-invariants",
                     "--skip-soa",
                     "--algorithms", "bdi", "--lines", "10"]) == 0
        second = capsys.readouterr().out
        units = lambda text: int(text.split("checks, ")[1].split(" units")[0])
        assert units(second) == 2 * units(first)

    def test_seed_knob_accepted(self, capsys):
        assert main(["check", "--skip-differential", "--skip-invariants",
                     "--skip-soa",
                     "--algorithms", "bdi", "--lines", "4",
                     "--seed", "99"]) == 0

    def test_apps_knob_limits_differential(self, capsys):
        assert main(["check", "--skip-fuzz", "--skip-invariants",
                     "--skip-soa",
                     "--apps", "PVC", "--lines", "4"]) == 0
        out = capsys.readouterr().out
        assert "differential" in out
        assert "MUM" not in out

    def test_unknown_app_fails_cleanly(self, capsys):
        assert main(["check", "--skip-fuzz", "--skip-invariants",
                     "--skip-soa",
                     "--apps", "quake3"]) == 2
        assert "error" in capsys.readouterr().err

    def test_quick_and_all_conflict(self, capsys):
        assert main(["check", "--quick", "--all"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_failing_check_names_the_invariant(self, capsys, monkeypatch):
        import repro.verify.fuzz as fuzz_mod
        from repro.compression import make_algorithm
        from repro.compression.bdi import BdiCompressor

        class Broken(BdiCompressor):
            def decompress(self, line):
                data = bytearray(super().decompress(line))
                data[0] ^= 0xFF
                return bytes(data)

        def fake_make(name, line_size):
            if name == "bdi":
                return Broken(line_size)
            return make_algorithm(name, line_size)

        monkeypatch.setattr(fuzz_mod, "make_algorithm", fake_make)
        assert main(["check", "--skip-differential", "--skip-invariants",
                     "--skip-soa",
                     "--algorithms", "bdi", "--lines", "4"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "roundtrip.bdi" in out

    def test_verbose_lists_passing_checks(self, capsys):
        assert main(["check", "--skip-differential", "--skip-invariants",
                     "--skip-soa",
                     "--algorithms", "bdi", "--lines", "4", "-v"]) == 0
        assert "pass roundtrip.bdi" in capsys.readouterr().out

    def test_check_command_is_dispatchable(self):
        from repro.cli import _COMMANDS

        assert "check" in _COMMANDS


class TestCheckSoa:
    def test_soa_pass_alone(self, capsys):
        assert main(["check", "--skip-fuzz", "--skip-differential",
                     "--skip-invariants", "--apps", "PVC",
                     "--algorithms", "bdi"]) == 0
        out = capsys.readouterr().out
        assert "soa" in out
        assert "passed" in out


class TestBench:
    RECORD = {
        "before": {
            "python": "3.11",
            "sim": {"PVC": {"seconds": 4.0, "cycles": 100}},
        },
        "after": {
            "python": "3.11",
            "sim": {"PVC": {"seconds": 2.0, "cycles": 100}},
        },
        "speedup": {"PVC": 2.0},
    }

    def test_report_renders_trajectory(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_runner.json"
        path.write_text(json.dumps(self.RECORD))
        assert main(["bench", "report", "--files", str(path)]) == 0
        out = capsys.readouterr().out
        assert "before" in out and "after" in out
        assert "sim.PVC.seconds" in out
        # seconds rows get a first-to-last trend column.
        assert "2.00x" in out
        # counts do not.
        assert "sim.PVC.cycles" in out

    def test_report_defaults_to_checked_in_records(self, capsys,
                                                   monkeypatch):
        from pathlib import Path

        monkeypatch.chdir(Path(__file__).parent.parent)
        assert main(["bench", "report"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_runner.json" in out
        assert "cycle_loop" in out or "sim." in out

    def test_report_without_records_fails_cleanly(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "report"]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_rejects_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["bench", "report", "--files", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_bench_command_is_dispatchable(self):
        from repro.cli import _COMMANDS

        assert "bench" in _COMMANDS
