"""Smoke checks for the example scripts and the experiments driver.

The examples are exercised end-to-end outside the unit suite (they run
minutes of simulation); here we pin that they stay syntactically valid,
import only public API, and expose a ``main`` entry point.
"""

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
SCRIPTS = sorted((REPO / "scripts").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS,
                         ids=lambda p: p.name)
def test_script_parses(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    assert tree.body


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS,
                         ids=lambda p: p.name)
def test_script_has_main_guard(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source
    assert "def main(" in source


def test_at_least_three_examples():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_import_only_public_api(path):
    """Examples must demonstrate the public surface, not internals."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            assert root in ("repro",), node.module
            # No private-module imports.
            assert not any(
                part.startswith("_") for part in node.module.split(".")
            ), node.module


class TestResultsGate:
    """The saved experiment matrix must satisfy the paper's shapes."""

    def test_checker_passes_on_shipped_results(self, capsys):
        import json

        from importlib import util as importlib_util

        spec = importlib_util.spec_from_file_location(
            "check_results", REPO / "scripts" / "check_results.py"
        )
        module = importlib_util.module_from_spec(spec)
        spec.loader.exec_module(module)
        with open(REPO / "docs" / "results_small.json") as fh:
            dump = json.load(fh)
        assert module.validate(dump) == 0

    def test_checker_fails_on_broken_results(self):
        from importlib import util as importlib_util

        spec = importlib_util.spec_from_file_location(
            "check_results", REPO / "scripts" / "check_results.py"
        )
        module = importlib_util.module_from_spec(spec)
        spec.loader.exec_module(module)
        broken = {
            "fig7": {"summary": {
                "geomean_Base": 1.0, "geomean_HW-BDI-Mem": 0.9,
                "geomean_HW-BDI": 0.9, "geomean_CABA-BDI": 0.8,
                "geomean_Ideal-BDI": 0.9,
            }}
        }
        assert module.validate(broken) != 0
