"""Trace-invariant suite for the stall-attribution ledger.

The ledger is only trustworthy if it can never drift from the coarse
statistics the paper's figures are built on. These tests enforce the
three contracts of the observability layer on real application runs:

* **Completeness** — every (SM, scheduler) issue slot of every cycle is
  charged to exactly one category; the counts sum to
  ``cycles * schedulers_per_sm`` per SM with nothing double-charged.
* **Reconciliation** — regrouping the refined categories by
  ``SLOT_OF_CAT`` reproduces ``SmStats.slots`` bit-exactly.
* **Isolation** — attaching the ledger never changes the simulation:
  traced and untraced runs produce identical scalar statistics, and
  traced runs are deterministic (byte-identical exports) regardless of
  compression planes.
"""

import json

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.stats import Slot
from repro.harness.runner import clear_caches, run_app
from repro.obs import NO_WARP, SLOT_OF_CAT, StallCat
from repro.workloads.tracegen import TraceScale

SCALE = TraceScale(work=0.25, waves=0.25)

DESIGNS = [
    pytest.param(designs.base(), id="base"),
    pytest.param(designs.caba("bdi"), id="caba-bdi"),
    pytest.param(designs.hw("fpc"), id="hw-fpc"),
]


def _traced(app, design, **kwargs):
    return run_app(app, design, GPUConfig.small(), scale=SCALE,
                   use_cache=False, keep_raw=True, trace=True, **kwargs)


def _untraced(app, design):
    return run_app(app, design, GPUConfig.small(), scale=SCALE,
                   use_cache=False, keep_raw=True, trace=False)


@pytest.mark.parametrize("design", DESIGNS)
@pytest.mark.parametrize("app", ["PVC", "MM"])
def test_attribution_is_complete(app, design):
    run = _traced(app, design)
    obs = run.raw.obs
    n_sched = GPUConfig.small().schedulers_per_sm
    for sm_id in range(len(run.raw.stats.sms)):
        assert obs.ledger.attributed_slots(sm_id) == run.cycles * n_sched


@pytest.mark.parametrize("design", DESIGNS)
@pytest.mark.parametrize("app", ["PVC", "MM"])
def test_ledger_reconciles_with_slot_stats(app, design):
    run = _traced(app, design)
    obs = run.raw.obs
    for sm_id, sm_stats in enumerate(run.raw.stats.sms):
        assert obs.ledger.slot_view(sm_id) == list(sm_stats.slots)


@pytest.mark.parametrize("design", DESIGNS)
def test_per_warp_rows_sum_to_sm_counts(design):
    run = _traced("CONS", design)
    ledger = run.raw.obs.ledger
    for sm_id, rows in enumerate(ledger.warp_counts):
        summed = [0] * len(StallCat)
        for row in rows.values():
            for cat, count in enumerate(row):
                assert count >= 0
                summed[cat] += count
        assert summed == ledger.sm_counts[sm_id]


@pytest.mark.parametrize("design", DESIGNS)
@pytest.mark.parametrize("app", ["PVC", "CONS"])
def test_tracing_does_not_perturb_the_simulation(app, design):
    traced = _traced(app, design)
    untraced = _untraced(app, design)
    assert traced.cycles == untraced.cycles
    assert traced.ipc == untraced.ipc
    assert traced.instructions == untraced.instructions
    assert traced.assist_instructions == untraced.assist_instructions
    assert traced.slot_breakdown == untraced.slot_breakdown
    assert traced.dram_bursts == untraced.dram_bursts
    assert traced.energy.total == untraced.energy.total
    for t_sm, u_sm in zip(traced.raw.stats.sms, untraced.raw.stats.sms):
        assert list(t_sm.slots) == list(u_sm.slots)


def test_traced_runs_are_deterministic():
    first = _traced("PVC", designs.caba("bdi"))
    second = _traced("PVC", designs.caba("bdi"))
    a = json.dumps(first.raw.obs.export(), sort_keys=True)
    b = json.dumps(second.raw.obs.export(), sort_keys=True)
    assert a == b


def test_trace_identical_with_and_without_planes(monkeypatch):
    baseline = _traced("PVC", designs.caba("bdi"))
    payload_planes = json.dumps(baseline.raw.obs.export(), sort_keys=True)
    monkeypatch.setenv("REPRO_PLANES", "0")
    clear_caches()
    try:
        scalar = _traced("PVC", designs.caba("bdi"))
        payload_scalar = json.dumps(scalar.raw.obs.export(), sort_keys=True)
    finally:
        monkeypatch.delenv("REPRO_PLANES")
        clear_caches()
    assert payload_planes == payload_scalar


def test_assist_categories_only_appear_under_caba():
    base = _traced("PVC", designs.base())
    caba = _traced("PVC", designs.caba("bdi"))
    base_totals = base.raw.obs.ledger.totals()
    caba_totals = caba.raw.obs.ledger.totals()
    assert base_totals[StallCat.ASSIST] == 0
    assert base_totals[StallCat.ASSIST_WAIT] == 0
    # The CABA design on a compressible app must actually run assist
    # warps, or the trace would be vacuous.
    assert caba_totals[StallCat.ASSIST] > 0


def test_memory_refinement_attributes_dram_waits():
    run = _traced("PVC", designs.base())
    totals = run.raw.obs.ledger.totals()
    # PVC is memory-bound (Fig. 1): a real share of its data stalls must
    # be refined into DRAM waits, not left as generic scoreboard stalls.
    assert totals[StallCat.DRAM] > 0


def test_slot_of_cat_covers_every_category():
    assert len(SLOT_OF_CAT) == len(StallCat)
    assert all(isinstance(slot, Slot) for slot in SLOT_OF_CAT)


def test_export_shape_and_no_warp_rows():
    run = _traced("MM", designs.caba("bdi"))
    payload = run.raw.obs.ledger.export()
    assert payload["categories"] == [c.name.lower() for c in StallCat]
    assert len(payload["per_sm"]) == GPUConfig.small().n_sms
    total = sum(payload["totals"].values())
    assert total == sum(sum(counts) for counts in payload["per_sm"])
    # Synthetic warp ids serialize as plain strings.
    rows = payload["per_warp"][0]
    assert all(isinstance(key, str) for key in rows)
    assert str(NO_WARP) in rows or any(int(k) >= 0 for k in rows)
