"""Tests for trace-artifact serialization and the chrome emitter."""

import json

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import run_app
from repro.obs import StallCat
from repro.obs.chrome import ASSIST_TID, ChromeTraceCollector
from repro.obs.export import (
    payload_csv,
    payload_json,
    render_ledger,
    write_trace_files,
)
from repro.workloads.tracegen import TraceScale

SCALE = TraceScale(work=0.25, waves=0.25)


def _traced_payload(chrome=False):
    run = run_app("PVC", designs.caba("bdi"), GPUConfig.small(),
                  scale=SCALE, use_cache=False, trace=True, chrome=chrome)
    return run.obs


class TestChromeCollector:
    def test_run_length_encoding_merges_repeats(self):
        chrome = ChromeTraceCollector()
        for _ in range(5):
            chrome.note_slot(0, 0, int(StallCat.IDLE), 1)
        chrome.note_slot(0, 0, int(StallCat.ISSUE), 1)
        chrome.flush()
        events = chrome.export()["traceEvents"]
        assert len(events) == 2
        assert events[0]["name"] == "idle"
        assert events[0]["dur"] == 5
        assert events[1]["name"] == "issue"
        assert events[1]["ts"] == 5

    def test_event_cap_counts_drops(self):
        chrome = ChromeTraceCollector(max_events=2)
        for cat in (0, 1, 2, 3, 4, 5):
            chrome.note_slot(0, 0, cat, 1)
        chrome.flush()
        exported = chrome.export()
        assert len(exported["traceEvents"]) == 2
        assert exported["metadata"]["dropped_events"] > 0

    def test_assist_events_use_their_own_row(self):
        chrome = ChromeTraceCollector()
        chrome.assist_event(3, "decompress", 17, 100, 140, completed=True)
        chrome.assist_event(3, "compress", 18, 150, 150, completed=False)
        events = chrome.export()["traceEvents"]
        assert all(e["tid"] == ASSIST_TID for e in events)
        assert events[0]["name"] == "decompress:17"
        assert "cancelled" in events[1]["name"]
        assert events[1]["dur"] >= 1


class TestPayloadWriters:
    def test_json_is_deterministic_and_newline_terminated(self):
        payload = _traced_payload()
        text = payload_json(payload)
        assert text == payload_json(json.loads(text))
        assert text.endswith("\n")

    def test_csv_covers_ledger_and_metrics(self):
        payload = _traced_payload()
        csv = payload_csv(payload)
        lines = csv.strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert any(line.startswith("ledger,total,dram,") for line in lines)
        assert any(line.startswith("ledger,sm0,") for line in lines)
        assert any(line.startswith("counter,sim.cycles,") for line in lines)

    def test_write_trace_files(self, tmp_path):
        payload = _traced_payload(chrome=True)
        written = write_trace_files(payload, tmp_path, "pvc-caba")
        names = sorted(p.name for p in written)
        assert names == ["pvc-caba.chrome.json", "pvc-caba.csv",
                         "pvc-caba.json"]
        for path in written:
            assert path.exists() and path.stat().st_size > 0
        chrome = json.loads((tmp_path / "pvc-caba.chrome.json").read_text())
        assert chrome["traceEvents"]
        assert chrome["metadata"]["clock"] == "simulated-cycles"

    def test_chrome_file_skipped_without_chrome_payload(self, tmp_path):
        payload = _traced_payload(chrome=False)
        assert "chrome" not in payload
        written = write_trace_files(payload, tmp_path, "plain")
        assert sorted(p.name for p in written) == ["plain.csv", "plain.json"]

    def test_render_ledger_table(self):
        payload = _traced_payload()
        table = render_ledger(payload)
        assert "DRAM Wait" in table
        assert "Assist-Warp Issue" in table
        assert "total" in table
        # Shares sum to ~100%; the total row always says 100.0%.
        assert "100.0%" in table


class TestRunnerObsPayload:
    def test_runresult_obs_counters_match_scalars(self):
        run = run_app("MM", designs.caba("bdi"), GPUConfig.small(),
                      scale=SCALE, use_cache=False, trace=True)
        counters = run.obs["metrics"]["counters"]
        assert counters["sim.cycles"] == run.cycles
        assert counters["dram.read_bursts"] == run.dram_bursts["read"]
        assert counters["dram.write_bursts"] == run.dram_bursts["write"]
        total_slots = sum(run.obs["ledger"]["totals"].values())
        n_sched = GPUConfig.small().schedulers_per_sm
        n_sms = GPUConfig.small().n_sms
        assert total_slots == run.cycles * n_sched * n_sms

    def test_untraced_run_has_no_obs(self):
        run = run_app("MM", designs.base(), GPUConfig.small(),
                      scale=SCALE, use_cache=False, trace=False)
        assert run.obs is None
