"""Unit tests for the metrics registry (counters and histograms)."""

import pytest

from repro.obs.registry import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_set(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(42)
        assert c.value == 42


class TestHistogram:
    def test_power_of_two_binning(self):
        h = Histogram("lat")
        h.record(0)
        h.record(1)
        h.record(2)
        h.record(3)
        h.record(4)
        # value 0 -> bin 0; 1 -> bin 1; 2-3 -> bin 2; 4-7 -> bin 3.
        assert h.bins[0] == 1
        assert h.bins[1] == 1
        assert h.bins[2] == 2
        assert h.bins[3] == 1
        assert h.count == 5
        assert h.total == 10
        assert h.min == 0 and h.max == 4
        assert h.mean == 2.0

    def test_negative_values_clamp_to_zero(self):
        h = Histogram("lat")
        h.record(-7)
        assert h.bins[0] == 1
        assert h.total == 0

    def test_overflow_bin(self):
        h = Histogram("lat")
        h.record(2 ** 40)
        assert h.bins[Histogram.N_BINS] == 1

    def test_weighted_record(self):
        h = Histogram("lat")
        h.record(8, n=3)
        assert h.count == 3
        assert h.total == 24

    def test_export_trims_trailing_bins(self):
        h = Histogram("lat")
        h.record(5)
        exported = h.export()
        assert exported["bins"][-1] != 0
        assert len(exported["bins"]) <= Histogram.N_BINS + 1
        assert exported["count"] == 1
        assert exported["min"] == 5 and exported["max"] == 5

    def test_empty_export(self):
        exported = Histogram("lat").export()
        assert exported == {"count": 0, "total": 0, "min": 0, "max": 0,
                            "bins": [0]}


class TestMetricsRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2
        reg.histogram("h").record(3)
        assert reg.histogram("h").count == 1

    def test_set_counters_prefixes_and_coerces(self):
        reg = MetricsRegistry()
        reg.set_counters("dram", {"reads": 7, "writes": 2.0})
        exported = reg.export()["counters"]
        assert exported == {"dram.reads": 7, "dram.writes": 2}
        assert isinstance(exported["dram.writes"], int)

    def test_export_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.counter("alpha").inc()
        assert list(reg.export()["counters"]) == ["alpha", "zeta"]

    def test_csv_round_trips_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("c").set(9)
        reg.histogram("h").record(2)
        csv = reg.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,c,value,9" in lines
        assert "histogram,h,count,1" in lines
        assert any(line.startswith("histogram,h,bin") for line in lines)
