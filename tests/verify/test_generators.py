"""The adversarial generators must be deterministic and well-formed."""

import pytest

from repro.verify.generators import GENERATOR_NAMES, make_generator


class TestDeterminism:
    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_same_seed_same_bytes(self, name):
        a = make_generator(name, 128, seed=7)
        b = make_generator(name, 128, seed=7)
        assert [a(i) for i in range(16)] == [b(i) for i in range(16)]

    def test_different_seeds_differ(self):
        a = make_generator("high_entropy", 128, seed=1)
        b = make_generator("high_entropy", 128, seed=2)
        assert [a(i) for i in range(8)] != [b(i) for i in range(8)]

    def test_different_indices_differ(self):
        gen = make_generator("narrow_delta", 128, seed=3)
        lines = {gen(i) for i in range(32)}
        assert len(lines) > 1


class TestShape:
    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    @pytest.mark.parametrize("line_size", (32, 64, 128))
    def test_line_size_respected(self, name, line_size):
        gen = make_generator(name, line_size, seed=5)
        assert all(len(gen(i)) == line_size for i in range(8))

    def test_all_zero_is_zero(self):
        gen = make_generator("all_zero", 64, seed=1)
        assert gen(0) == bytes(64)

    def test_pattern_names_cover_data_patterns(self):
        from repro.workloads.data_patterns import PATTERNS

        pattern_gens = {n for n in GENERATOR_NAMES
                        if n.startswith("pattern_")}
        assert pattern_gens == {f"pattern_{n}" for n in PATTERNS}

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            make_generator("nonsense", 128, seed=1)
        with pytest.raises(ValueError, match="unknown"):
            make_generator("pattern_nonsense", 128, seed=1)
