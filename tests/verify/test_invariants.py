"""Conservation invariants: they hold on a real traced run, and each
one trips when its counters are tampered with."""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import clear_caches, run_app
from repro.memory.compressed_cache import CompressedCache
from repro.verify.invariants import _check_run, check_invariants
from repro.workloads.tracegen import TraceScale

CONFIG = GPUConfig.small()
SCALE = TraceScale(work=0.25, waves=0.25)


@pytest.fixture(scope="module")
def traced_run():
    clear_caches()
    return run_app(
        "PVC", designs.caba("bdi"), config=CONFIG, scale=SCALE,
        use_cache=False, keep_raw=True, trace=True,
    )


def _by_kind(results):
    return {r.name.split(".")[1]: r for r in results}


class TestCleanRun:
    def test_all_invariants_hold(self, traced_run):
        results = _check_run("PVC.CABA-BDI", traced_run, CONFIG)
        failures = [r for r in results if not r.passed]
        assert not failures, failures
        assert set(_by_kind(results)) == {
            "slots", "mshr", "flits", "dram", "cache",
        }

    def test_checker_is_read_only(self, traced_run):
        before = traced_run.raw.memory.stats.mshr_allocs
        _check_run("x", traced_run, CONFIG)
        _check_run("x", traced_run, CONFIG)
        assert traced_run.raw.memory.stats.mshr_allocs == before

    def test_mshr_traffic_is_nontrivial(self, traced_run):
        stats = traced_run.raw.memory.stats
        assert stats.mshr_allocs > 0
        assert stats.mshr_allocs == stats.mshr_releases


class TestTamperedCountersAreCaught:
    """Each conservation law must fail when one side is perturbed.
    Counters are restored after each check so the module-scoped run
    stays clean for other tests."""

    def _failing(self, traced_run, kind):
        results = _check_run("t", traced_run, CONFIG)
        return _by_kind(results)[kind]

    def test_mshr_imbalance(self, traced_run):
        stats = traced_run.raw.memory.stats
        stats.mshr_allocs += 1
        try:
            result = self._failing(traced_run, "mshr")
            assert not result.passed
            assert "allocs" in result.detail
        finally:
            stats.mshr_allocs -= 1

    def test_flit_imbalance(self, traced_run):
        xbar = traced_run.raw.memory.crossbar
        xbar.request_flits += 1
        try:
            result = self._failing(traced_run, "flits")
            assert not result.passed
            assert "flits" in result.detail
        finally:
            xbar.request_flits -= 1

    def test_dram_burst_imbalance(self, traced_run):
        mc = traced_run.raw.memory.mcs[0]
        mc.stats.read_bursts += 1
        try:
            result = self._failing(traced_run, "dram")
            assert not result.passed
            assert "bursts" in result.detail
        finally:
            mc.stats.read_bursts -= 1

    def test_slot_imbalance(self, traced_run):
        ledger = traced_run.raw.obs.ledger
        ledger.sm_counts[0][0] += 1
        try:
            result = self._failing(traced_run, "slots")
            assert not result.passed
            assert "SM 0" in result.detail
        finally:
            ledger.sm_counts[0][0] -= 1


class TestCompressedCacheAudit:
    def test_clean_cache_audits_empty(self):
        cache = CompressedCache(
            n_sets=8, assoc=4, line_size=128, tag_mult=2
        )
        for line in range(64):
            cache.access(line, 1 + line % 128)
        assert cache.audit() == []

    def test_tampered_used_counter_is_reported(self):
        cache = CompressedCache(
            n_sets=4, assoc=2, line_size=128, tag_mult=2
        )
        cache.access(0, 40)
        index = cache._set_index(0)
        cache._used[index] += 1
        problems = cache.audit()
        assert problems and "entries sum" in problems[0]

    def test_over_budget_is_reported(self):
        cache = CompressedCache(
            n_sets=4, assoc=2, line_size=128, tag_mult=2
        )
        cache.access(0, 128)
        index = cache._set_index(0)
        entry = cache._sets[index][0]
        entry.size = 999  # corrupt past the budget
        cache._used[index] = 999
        problems = cache.audit()
        assert any("budget" in p for p in problems)
        assert any("bad size" in p for p in problems)


class TestEndToEnd:
    def test_check_invariants_single_pair(self):
        results = check_invariants(
            apps=("PVC",), algorithms=("bdi",),
            config=CONFIG, scale=SCALE,
        )
        failures = [r for r in results if not r.passed]
        assert not failures, failures
        # One CABA design + the compressed-cache design, 5 checks each.
        assert len(results) == 10
        cache_checks = [r for r in results
                        if r.name.startswith("invariant.cache")
                        and "L2-2x" in r.name]
        assert cache_checks and all(r.checked > 0 for r in cache_checks)
