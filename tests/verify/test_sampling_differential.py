"""Tests for the sampled-vs-exact differential (`repro.verify.sampling`).

One certified matrix point is run for real — at the default machine and
trace scale, exactly as `repro check` would — to keep the 2 % contract
honest in the test suite, not just in CI's bench lane. The failure
path is exercised at reduced scale with a zero tolerance, which any
extrapolated run violates (sampled cycle counts are approximate).
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.verify.sampling import (
    CERTIFIED_POINTS,
    DEFAULT_POINTS,
    UncertifiedSamplingPointError,
    is_certified,
    parse_point,
    require_certified,
    sampling_differential,
)
from repro.workloads.tracegen import TraceScale


def test_certified_point_passes_at_defaults():
    results = sampling_differential(points=(("MM", designs.base),))
    assert len(results) == 1
    result = results[0]
    assert result.name == "sampling.differential.MM.Base"
    assert result.passed, result.detail
    # Three bounded metrics + parent-instruction identity + determinism.
    assert result.checked == 5


def test_zero_tolerance_reports_metric_deltas():
    # Reduced scale is an uncertified machine point, so the experiment
    # must opt out of certification explicitly.
    results = sampling_differential(
        points=(("MM", designs.base),),
        scale=TraceScale(work=0.25, waves=0.25),
        sample=SampleConfig(warmup=50, measure=100, skip=800),
        tolerance=0.0,
        certify=False,
    )
    result = results[0]
    assert not result.passed
    assert "off by" in result.detail


def test_default_matrix_shape():
    # The certification matrix is pinned: both paper-central apps, the
    # CABA point only where the bound is calibrated (no MM-CABA-BDI).
    labels = {(app, factory().name) for app, factory in DEFAULT_POINTS}
    assert labels == {("PVC", "Base"), ("PVC", "CABA-BDI"), ("MM", "Base")}
    assert CERTIFIED_POINTS == labels


class TestCertification:
    """The MM-CABA-BDI regression: the uncertified point used to pass
    silently; it must now fail loudly, by name, when requested."""

    def test_uncertified_point_fails_with_named_error(self):
        results = sampling_differential(
            points=(("MM", lambda: designs.caba("bdi")),),
        )
        assert len(results) == 1
        result = results[0]
        assert not result.passed
        assert result.name == "sampling.certified.MM.CABA-BDI"
        assert "UncertifiedSamplingPointError" in result.detail

    def test_certified_and_uncertified_points_mix(self):
        # The certified point still runs; only the uncertified one
        # fails, and it fails without being simulated (at this scale a
        # real MM-CABA-BDI pair would dominate the test's runtime).
        results = sampling_differential(
            points=(("MM", lambda: designs.caba("bdi")),
                    ("MM", designs.base)),
        )
        assert [r.passed for r in results] == [False, True]

    def test_is_certified_matrix(self):
        assert is_certified("PVC", "Base")
        assert is_certified("PVC", "CABA-BDI")
        assert is_certified("MM", "Base")
        assert not is_certified("MM", "CABA-BDI")
        assert not is_certified("CONS", "Base")

    def test_machine_and_scale_gate_certification(self):
        assert not is_certified("PVC", "Base", config=GPUConfig())
        assert not is_certified("PVC", "Base",
                                scale=TraceScale(work=0.5))
        with pytest.raises(UncertifiedSamplingPointError,
                           match="machine/scale"):
            require_certified("PVC", "Base", config=GPUConfig())

    def test_require_certified_names_the_point(self):
        with pytest.raises(UncertifiedSamplingPointError,
                           match=r"\(MM, CABA-BDI\)"):
            require_certified("MM", "CABA-BDI")
        require_certified("MM", "Base")  # certified: no raise


class TestParsePoint:
    def test_base_and_caba_designs(self):
        app, factory = parse_point("MM@Base")
        assert app == "MM" and factory().name == "Base"
        app, factory = parse_point("PVC@CABA-BDI")
        assert app == "PVC" and factory().name == "CABA-BDI"

    def test_case_insensitive(self):
        assert parse_point("MM@base")[1]().name == "Base"
        assert parse_point("MM@caba-fpc")[1]().name == "CABA-FPC"

    @pytest.mark.parametrize("text", [
        "MM", "MM@", "@Base", "MM@ideal-bdi", "MM@caba-nope",
    ])
    def test_rejects_bad_points(self, text):
        with pytest.raises(ValueError):
            parse_point(text)
