"""Tests for the sampled-vs-exact differential (`repro.verify.sampling`).

One certified matrix point is run for real — at the default machine and
trace scale, exactly as `repro check` would — to keep the 2 % contract
honest in the test suite, not just in CI's bench lane. The failure
path is exercised at reduced scale with a zero tolerance, which any
extrapolated run violates (sampled cycle counts are approximate).
"""

from repro import design as designs
from repro.gpu.sampling import SampleConfig
from repro.verify.sampling import DEFAULT_POINTS, sampling_differential
from repro.workloads.tracegen import TraceScale


def test_certified_point_passes_at_defaults():
    results = sampling_differential(points=(("MM", designs.base),))
    assert len(results) == 1
    result = results[0]
    assert result.name == "sampling.differential.MM.Base"
    assert result.passed, result.detail
    # Three bounded metrics + parent-instruction identity + determinism.
    assert result.checked == 5


def test_zero_tolerance_reports_metric_deltas():
    results = sampling_differential(
        points=(("MM", designs.base),),
        scale=TraceScale(work=0.25, waves=0.25),
        sample=SampleConfig(warmup=50, measure=100, skip=800),
        tolerance=0.0,
    )
    result = results[0]
    assert not result.passed
    assert "off by" in result.detail


def test_default_matrix_shape():
    # The certification matrix is pinned: both paper-central apps, the
    # CABA point only where the bound is calibrated (no MM-CABA-BDI).
    labels = {(app, factory().name) for app, factory in DEFAULT_POINTS}
    assert labels == {("PVC", "Base"), ("PVC", "CABA-BDI"), ("MM", "Base")}
