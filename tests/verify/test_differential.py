"""The four-path differential checker: clean on the real code, and able
to catch a corrupted plane or a diverging batch kernel."""

import pytest

import repro.verify.differential as diff_mod
from repro.compression import make_algorithm
from repro.compression.bdi import BdiCompressor
from repro.memory.plane import CompressionPlane
from repro.verify.differential import differential_check


class TestCleanPass:
    def test_small_matrix_agrees(self):
        results = differential_check(
            apps=("PVC",), algorithms=("bdi", "bestofall"), lines=256,
        )
        failures = [r for r in results if not r.passed]
        assert not failures, failures
        assert {r.name for r in results} == {
            "differential.PVC.bdi", "differential.PVC.bestofall",
        }

    def test_bestofall_composition_agrees_on_mixed_app(self):
        # MUM's mixture exercises all three components (Fig. 11), so the
        # plane-composition path must reproduce per-line tie-breaking.
        [result] = differential_check(
            apps=("MUM",), algorithms=("bestofall",), lines=512,
        )
        assert result.passed, result.detail


class _Tampered(BdiCompressor):
    """Batch kernel diverges from scalar on compressible lines."""

    def _size_table(self, lines):
        return [
            (min(size + 1, self.line_size), encoding)
            for size, encoding in super()._size_table(lines)
        ]


class TestCatchesPlantedBugs:
    def test_batch_divergence_is_caught(self, monkeypatch):
        def fake_make(name, line_size):
            if name == "bdi":
                return _Tampered(line_size)
            return make_algorithm(name, line_size)

        monkeypatch.setattr(diff_mod, "make_algorithm", fake_make)
        [result] = differential_check(
            apps=("PVC",), algorithms=("bdi",), lines=64,
        )
        assert not result.passed
        assert "vs scalar" in result.detail

    def test_corrupted_plane_is_caught(self, monkeypatch):
        real_plane_for_app = diff_mod.plane_for_app

        def corrupted(app, algorithm, lines, **kwargs):
            plane = real_plane_for_app(app, algorithm, lines, **kwargs)
            if plane is None:
                pytest.skip("planes disabled (REPRO_PLANES=0)")
            table = dict(plane.table)
            size, bursts, encoding = table[0]
            table[0] = (size, bursts + 1, encoding)
            return CompressionPlane(
                plane.algorithm_name, plane.line_size,
                plane.burst_bytes, plane.key, table,
                plane.assist_cycles,
            )

        monkeypatch.setattr(diff_mod, "plane_for_app", corrupted)
        [result] = differential_check(
            apps=("PVC",), algorithms=("bdi",), lines=64,
        )
        assert not result.passed
        assert "plane vs scalar" in result.detail
        assert "line 0" in result.detail
