"""The round-trip fuzzer: clean on the real algorithms, and able to
catch planted bugs (a fuzzer that can't fail is no evidence)."""

import pytest

import repro.verify.fuzz as fuzz_mod
from repro.compression import make_algorithm
from repro.compression.base import CompressedLine
from repro.compression.bdi import BdiCompressor
from repro.verify.fuzz import fuzz_roundtrip


class TestCleanPass:
    def test_all_algorithms_pass(self):
        results = fuzz_roundtrip(lines_per_generator=24, seed=3)
        failures = [r for r in results if not r.passed]
        assert not failures, failures
        assert all(r.checked == 24 for r in results)

    def test_line_size_64(self):
        results = fuzz_roundtrip(
            algorithms=("bdi", "fpc"), lines_per_generator=16,
            line_size=64, seed=9,
        )
        assert all(r.passed for r in results)

    def test_result_names_are_specific(self):
        results = fuzz_roundtrip(
            algorithms=("bdi",), generators=("all_zero",),
            lines_per_generator=4,
        )
        [result] = results
        assert result.name == "roundtrip.bdi.all_zero"


class _CorruptDecompress(BdiCompressor):
    """Planted bug: flips a byte of every decompressed zero line."""

    def decompress(self, line: CompressedLine) -> bytes:
        data = bytearray(super().decompress(line))
        if data and not any(data):
            data[0] ^= 0xFF
        return bytes(data)


class _CorruptSizeTable(BdiCompressor):
    """Planted bug: batch kernel disagrees with scalar compress()."""

    def _size_table(self, lines):
        return [(size + 1 if size < self.line_size else size, encoding)
                for size, encoding in super()._size_table(lines)]


class TestCatchesPlantedBugs:
    def _with_planted(self, monkeypatch, broken_cls):
        def fake_make(name, line_size):
            if name == "bdi":
                return broken_cls(line_size)
            return make_algorithm(name, line_size)

        monkeypatch.setattr(fuzz_mod, "make_algorithm", fake_make)

    def test_roundtrip_corruption_is_caught(self, monkeypatch):
        self._with_planted(monkeypatch, _CorruptDecompress)
        results = fuzz_roundtrip(
            algorithms=("bdi",), generators=("all_zero",),
            lines_per_generator=4,
        )
        [result] = results
        assert not result.passed
        assert "round-trip mismatch" in result.detail

    def test_size_table_divergence_is_caught(self, monkeypatch):
        self._with_planted(monkeypatch, _CorruptSizeTable)
        results = fuzz_roundtrip(
            algorithms=("bdi",), generators=("all_zero",),
            lines_per_generator=4,
        )
        [result] = results
        assert not result.passed
        assert "size_table" in result.detail

    def test_failure_carries_replay_coordinates(self, monkeypatch):
        self._with_planted(monkeypatch, _CorruptDecompress)
        [result] = fuzz_roundtrip(
            algorithms=("bdi",), generators=("all_zero",),
            lines_per_generator=4, seed=42,
        )
        assert "index" in result.detail
        assert result.name.endswith("bdi.all_zero")
