"""CheckReport aggregation and rendering."""

from repro.verify.report import CheckReport, CheckResult


def _report(*results):
    report = CheckReport()
    report.extend(list(results))
    return report


class TestAggregation:
    def test_empty_report_is_ok(self):
        assert _report().ok

    def test_ok_and_failures(self):
        report = _report(
            CheckResult("roundtrip.bdi.all_zero", True, checked=10),
            CheckResult("invariant.mshr.PVC", False, detail="off by 1"),
        )
        assert not report.ok
        assert [r.name for r in report.failures] == ["invariant.mshr.PVC"]
        assert report.checked == 10


class TestRendering:
    def test_pass_summary(self):
        text = _report(
            CheckResult("roundtrip.bdi.all_zero", True, checked=10),
            CheckResult("roundtrip.fpc.all_zero", True, checked=10),
        ).render()
        assert "roundtrip" in text
        assert "2/2 checks" in text
        assert "all 2 checks passed" in text

    def test_failures_named_with_detail(self):
        text = _report(
            CheckResult("roundtrip.bdi.all_zero", True, checked=10),
            CheckResult("invariant.mshr.PVC", False, detail="off by 1"),
        ).render()
        assert "invariant.mshr.PVC" in text
        assert "off by 1" in text
        assert "FAILED" in text
        # Passing checks stay silent unless verbose.
        assert "pass roundtrip.bdi.all_zero" not in text

    def test_verbose_lists_passes(self):
        text = _report(
            CheckResult("roundtrip.bdi.all_zero", True, checked=10),
        ).render(verbose=True)
        assert "pass roundtrip.bdi.all_zero" in text
