"""Global test configuration.

Points the persistent run cache at a session-scoped temporary directory
so tests never read from or write to the user's real cache (and never
see entries from earlier sessions), keeping every caching assertion
hermetic.
"""

import os

import pytest

from repro.harness.runner import clear_caches


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("run-cache"))
    clear_caches()  # drop any handle built against the old directory
    yield
