"""Global test configuration.

Points the persistent run cache at a session-scoped temporary directory
so tests never read from or write to the user's real cache (and never
see entries from earlier sessions), keeping every caching assertion
hermetic. An ambient ``REPRO_SAMPLE`` is likewise stripped per test:
golden values, conservation checks and cross-mode diffs assert
*exact-mode* behaviour, and must not silently flip to approximate
sampled runs because the knob was exported in the developer's (or a CI
lane's) shell. Tests that exercise sampling opt in explicitly — via
``run_app(..., sample=...)`` or by setting the variable inside the
test body.
"""

import os

import pytest

from repro.harness.runner import clear_caches


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("run-cache"))
    clear_caches()  # drop any handle built against the old directory
    yield


@pytest.fixture(autouse=True)
def _exact_mode_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
