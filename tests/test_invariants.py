"""Cross-design and cross-run invariants of the whole system.

These catch a class of bug no unit test sees: a design point that
silently changes *how much work* runs (rather than how fast it runs),
non-deterministic simulation, or accounting that leaks between levels.
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import run_app

APPS = ("PVC", "bfs", "RAY")

ALL_DESIGNS = (
    designs.base(),
    designs.hw_mem(),
    designs.hw(),
    designs.caba(),
    designs.caba_l2_uncompressed(),
    designs.ideal(),
)


@pytest.fixture(scope="module", params=APPS)
def app_runs(request):
    app = request.param
    return app, [run_app(app, d) for d in ALL_DESIGNS]


class TestWorkConservation:
    def test_parent_instruction_count_identical_across_designs(self, app_runs):
        """Compression changes *when* instructions issue, never *which*:
        the application's dynamic instruction count is design-invariant."""
        app, runs = app_runs
        counts = {r.design: r.instructions - r.assist_instructions
                  for r in runs}
        assert len(set(counts.values())) == 1, (app, counts)

    def test_no_run_truncates(self, app_runs):
        app, runs = app_runs
        assert not any(r.truncated for r in runs), app

    def test_dram_reads_never_increase_with_compression(self, app_runs):
        """Compression shrinks bursts, not the number of line reads
        (modulo RMW partial-write reads, excluded via read counts of
        demand lines)."""
        app, runs = app_runs
        by_design = {r.design: r for r in runs}
        base_bursts = by_design["Base"].dram_bursts["read"]
        for r in runs:
            if r.design == "Base":
                continue
            assert r.dram_bursts["read"] <= base_bursts * 1.05, (
                app, r.design
            )


class TestDeterminism:
    def test_identical_reruns(self):
        a = run_app("MM", designs.caba(), use_cache=False)
        b = run_app("MM", designs.caba(), use_cache=False)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.dram_bursts == b.dram_bursts
        assert a.energy.total == pytest.approx(b.energy.total)


class TestMetricSanity:
    def test_utilizations_in_range(self, app_runs):
        app, runs = app_runs
        for r in runs:
            assert 0.0 <= r.bandwidth_utilization <= 1.0, (app, r.design)

    def test_compression_ratio_at_least_one(self, app_runs):
        app, runs = app_runs
        for r in runs:
            assert r.compression_ratio >= 1.0, (app, r.design)

    def test_slot_breakdowns_normalized(self, app_runs):
        app, runs = app_runs
        for r in runs:
            assert sum(r.slot_breakdown.values()) == pytest.approx(1.0)

    def test_energy_components_nonnegative(self, app_runs):
        app, runs = app_runs
        for r in runs:
            for key, value in r.energy.as_dict().items():
                assert value >= 0.0, (app, r.design, key)

    def test_only_assist_designs_issue_assist_instructions(self, app_runs):
        app, runs = app_runs
        for r in runs:
            uses_assist = "CABA" in r.design
            if not uses_assist:
                assert r.assist_instructions == 0, (app, r.design)
            else:
                assert r.assist_instructions > 0, (app, r.design)
