"""Tests for the per-figure harnesses (small subsets for speed)."""

import pytest

from repro.harness import figures
from repro.harness.report import render_table


class TestFig5:
    def test_matches_paper_numbers(self):
        result = figures.fig5_bdi_example()
        row = result.rows[0]
        assert row["encoding"] == "B8D1"
        assert row["compressed_bytes"] == 17
        assert row["saved_bytes"] == 47
        assert row["round_trip"] is True


class TestFig2:
    def test_average_near_paper(self):
        result = figures.fig2_unallocated_registers()
        avg = result.summary["average_unallocated"]
        # Paper: 24% on average.
        assert 0.15 <= avg <= 0.35

    def test_every_app_has_a_row(self):
        result = figures.fig2_unallocated_registers()
        assert len(result.rows) == 27
        for row in result.rows:
            assert 0.0 <= row["unallocated"] < 1.0


class TestFig11:
    APPS = ("PVC", "MM", "LPS", "JPEG", "MUM", "nw")

    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig11_compression_ratio(
            apps=self.APPS, sample_lines=120
        )

    def test_bdi_wins_on_mm_and_pvc(self, result):
        by_app = {row["app"]: row for row in result.rows}
        for app in ("MM", "PVC"):
            assert by_app[app]["BDI"] > by_app[app]["FPC"]

    def test_fpc_or_cpack_win_on_their_apps(self, result):
        """Paper: LPS, JPEG, MUM, nw compress better with FPC/C-Pack."""
        by_app = {row["app"]: row for row in result.rows}
        for app in ("JPEG", "MUM", "nw"):
            best_other = max(by_app[app]["FPC"], by_app[app]["CPACK"])
            assert best_other > by_app[app]["BDI"]

    def test_bestofall_is_upper_envelope(self, result):
        for row in result.rows:
            assert row["BESTOFALL"] >= max(
                row["BDI"], row["FPC"], row["CPACK"]
            ) - 1e-9

    def test_everything_compressible_at_least_somewhat(self, result):
        for row in result.rows:
            assert row["BESTOFALL"] > 1.2


class TestTab1:
    def test_parameters_echoed(self):
        result = figures.tab1_system_config()
        values = {row["parameter"]: row["value"] for row in result.rows}
        assert values["SMs"] == 15
        assert values["memory channels"] == 6
        assert values["peak bandwidth (GB/s)"] == 177.4
        assert values["tCL/tRP/tRC/tRAS"] == "12/12/40/28"


class TestReport:
    def test_render_table_contains_rows_and_summary(self):
        result = figures.fig5_bdi_example()
        text = render_table(result)
        assert "BDI compression" in text
        assert "17" in text
        assert "summary:" in text

    def test_row_truncation(self):
        result = figures.fig2_unallocated_registers()
        text = render_table(result, max_rows=5)
        assert "more rows" in text

    def test_sampled_sweep_is_annotated(self, monkeypatch):
        from repro.harness.figures import FigureResult

        exact = FigureResult(figure="x", title="Demo", columns=["app"])
        assert exact.sampled == ""
        monkeypatch.setenv("REPRO_SAMPLE", "1")
        sampled = FigureResult(figure="x", title="Demo", columns=["app"])
        assert "500:1000:13500" in sampled.sampled
        text = render_table(sampled)
        assert "extrapolated" in text
        assert "sampling:" in text


class TestBarChart:
    def test_render_bars(self):
        from repro.harness.figures import FigureResult
        from repro.harness.report import render_bars

        result = FigureResult(
            figure="x", title="Demo", columns=["app", "speedup"],
            rows=[{"app": "A", "speedup": 2.0},
                  {"app": "B", "speedup": 1.0}],
        )
        text = render_bars(result, "speedup", reference=1.0)
        assert "A" in text and "B" in text
        # A's bar is twice B's.
        a_bar = text.splitlines()[1].count("#")
        b_bar = text.splitlines()[2].count("#")
        assert a_bar >= 2 * b_bar - 2

    def test_render_bars_missing_column(self):
        from repro.harness.figures import FigureResult
        from repro.harness.report import render_bars

        result = FigureResult(figure="x", title="Demo",
                              columns=["app"], rows=[{"app": "A"}])
        assert "no data" in render_bars(result, "speedup")
