"""Tests for the extension/ablation harnesses (fast subsets)."""

import pytest

from repro.harness.extensions import (
    ablation_study,
    scheduler_study,
)


class TestSchedulerStudy:
    def test_both_policies_work_and_caba_helps(self):
        result = scheduler_study(apps=("PVC", "RAY"))
        assert {row["scheduler"] for row in result.rows} == {"gto", "lrr"}
        for row in result.rows:
            assert row["geomean_base_ipc"] > 0
            assert row["geomean_caba_speedup"] > 1.0


class TestAblationStudy:
    SUBSET = ("default", "no_throttling", "decomp_low_priority",
              "l2_uncompressed")

    @pytest.fixture(scope="class")
    def result(self):
        return ablation_study(apps=("PVC",), only=self.SUBSET)

    def test_all_variants_present(self, result):
        variants = {row["variant"] for row in result.rows}
        assert set(self.SUBSET) == variants

    def test_every_variant_beats_base(self, result):
        for row in result.rows:
            assert row["geomean_speedup"] > 1.0, row["variant"]

    def test_compressed_store_fraction_in_range(self, result):
        for row in result.rows:
            assert 0.0 <= row["compressed_store_fraction"] <= 1.0
