"""Compression-plane integration tests.

The acceptance bar for the plane layer is *exact* equality: every stat a
plane-enabled run reports must be byte-identical to the scalar
per-access path, for multiple apps and design points. Also covers the
in-memory/persistent plane caches and the Fig. 11 plane fast path.
"""

from __future__ import annotations

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness import figures, runner
from repro.harness.cache import RunCache
from repro.harness.runner import (
    RunSpec,
    clear_caches,
    plane_for_app,
    planes_enabled,
    run_spec,
)
from repro.workloads.tracegen import TraceScale

APPS = ("PVC", "MM", "CONS")
SCALE = TraceScale(work=0.25, waves=0.25)


def _design_points():
    return (
        designs.caba("bdi"),
        designs.caba("bestofall"),
        designs.hw_mem("fpc"),
    )


def _fingerprint(result):
    return (
        result.cycles,
        result.ipc,
        result.instructions,
        result.assist_instructions,
        result.bandwidth_utilization,
        result.compression_ratio,
        result.energy.total,
        tuple(sorted((str(k), v) for k, v in result.slot_breakdown.items())),
        result.md_cache_hit_rate,
        tuple(sorted(result.dram_bursts.items())),
        result.l2_hit_rate,
        result.truncated,
        result.occupancy_blocks,
        result.lines_compressed,
        result.l1_stores,
        result.rmw_reads,
    )


def _sweep(config):
    return {
        (app, point.name): _fingerprint(
            run_spec(RunSpec(app, point, config, SCALE), use_cache=False)
        )
        for app in APPS
        for point in _design_points()
    }


def test_plane_stats_identical_to_scalar(monkeypatch):
    """3 apps x 3 designs: planes on == planes off, every stat."""
    config = GPUConfig.small()

    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    with_planes = _sweep(config)
    assert runner._plane_cache, "planes never engaged"

    monkeypatch.setenv("REPRO_PLANES", "0")
    clear_caches()
    assert not planes_enabled()
    scalar = _sweep(config)
    assert not runner._plane_cache

    assert with_planes == scalar
    clear_caches()


def test_planes_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_PLANES", raising=False)
    assert planes_enabled()


def test_plane_shared_across_designs(monkeypatch):
    """One algorithm plane serves every design that uses the algorithm."""
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    config = GPUConfig.small()
    for point in (designs.caba("bdi"), designs.hw("bdi"),
                  designs.ideal("bdi")):
        run_spec(RunSpec("PVC", point, config, SCALE), use_cache=False)
    # All three designs share one (image, bdi) plane.
    assert len(runner._plane_cache) == 1
    clear_caches()


def test_bestofall_composes_component_planes(monkeypatch):
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    plane = plane_for_app("PVC", "bestofall", 64)
    # bdi/fpc/cpack planes were built as inputs and memoized alongside.
    assert len(runner._plane_cache) == 4
    assert plane.algorithm_name == "bestofall"
    assert all(":" in e or e == "uncompressed" for e in plane.encodings())
    clear_caches()


def test_plane_persistence_round_trip(monkeypatch):
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    built = plane_for_app("MM", "bdi", 96)
    assert len(built) == 96

    cache = RunCache()
    loaded = cache.get_plane(built.key)
    assert loaded is not None
    assert loaded.table == built.table
    assert loaded.assist_cycles == built.assist_cycles
    assert loaded.algorithm_name == built.algorithm_name

    # A second process (simulated by clearing the memo) hits the disk
    # entry instead of rebuilding.
    runner._plane_cache.clear()
    again = plane_for_app("MM", "bdi", 96)
    assert again.table == built.table

    info = cache.info()
    assert info["plane_entries"] >= 1
    assert info["plane_bytes"] > 0
    # Plane entries are reported separately from run entries.
    assert "entries" in info and "stale_plane_entries" in info
    clear_caches()


def test_plane_disabled_returns_none(monkeypatch):
    monkeypatch.setenv("REPRO_PLANES", "0")
    clear_caches()
    assert plane_for_app("PVC", "bdi", 16) is None
    clear_caches()


def test_fig11_identical_with_and_without_planes(monkeypatch):
    apps = ("PVC", "MUM")
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    with_planes = figures.fig11_compression_ratio(apps=apps, sample_lines=64)
    monkeypatch.setenv("REPRO_PLANES", "0")
    clear_caches()
    scalar = figures.fig11_compression_ratio(apps=apps, sample_lines=64)
    assert with_planes.rows == scalar.rows
    assert with_planes.summary == scalar.summary
    clear_caches()


def test_plane_lookup_keeps_touched_set_lazy(monkeypatch):
    """A plane must not eagerly fill the image's stat-bearing cache."""
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    config = GPUConfig.small()
    from repro.harness.runner import build_image
    from repro.workloads.apps import get_app

    image = build_image(get_app("PVC"), designs.caba("bdi"), config, SCALE)
    assert image.plane is not None
    assert len(image.plane) > 0
    assert image.lines_touched() == 0  # nothing consulted yet
    info = image.info(next(iter(image.plane.table)))
    assert image.lines_touched() == 1
    assert (info.size_bytes, info.encoding) == (
        image.plane.table[next(iter(image.plane.table))][0],
        image.plane.table[next(iter(image.plane.table))][2],
    )
    clear_caches()


def test_store_overrides_shadow_plane(monkeypatch):
    """Dirty-store mutations take precedence over the immutable plane."""
    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    config = GPUConfig.small()
    from repro.harness.runner import build_image
    from repro.workloads.apps import get_app

    image = build_image(get_app("PVC"), designs.caba("bdi"), config, SCALE)
    line = next(iter(image.plane.table))
    baseline = image.info(line)
    stored = image.record_store(line, compressed=False)
    assert stored.encoding == "uncompressed"
    assert image.info(line).size_bytes == image.line_size
    # Recompressed stores return to the plane's baseline record.
    assert image.record_store(line, compressed=True) == baseline
    clear_caches()


@pytest.mark.parametrize("algorithm", ["bdi", "fpc", "cpack", "bestofall"])
def test_plane_matches_scalar_sizes(monkeypatch, algorithm):
    """Plane table contents equal scalar compression of the same lines."""
    from repro.compression import make_algorithm
    from repro.workloads.apps import get_app
    from repro.workloads.data_patterns import make_line_generator

    monkeypatch.setenv("REPRO_PLANES", "1")
    clear_caches()
    app = get_app("CONS")
    plane = plane_for_app(app, algorithm, 48)
    algo = make_algorithm(algorithm, 128)
    gen = make_line_generator(app.data, 128, seed=app.seed)
    for line_addr in range(48):
        compressed = algo.compress(gen(line_addr))
        assert plane.table[line_addr][:1] + plane.table[line_addr][2:] == (
            compressed.size_bytes, compressed.encoding,
        )
    clear_caches()
