"""Golden-stats regression suite.

Pins the scalar statistics of representative runs byte-exactly against
``tests/fixtures/golden_stats.json``. The simulator is deterministic, so
any drift here means a behavioural change — which is either a bug, or an
intentional change that must regenerate the fixture:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/harness/test_golden_stats.py -q

Floats are stored via ``repr`` so the comparison is exact, not
tolerance-based.
"""

import json
import os
from pathlib import Path

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import clear_caches, run_app
from repro.workloads.tracegen import TraceScale

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_stats.json"
SCALE = TraceScale(work=0.25, waves=0.25)

APPS = ("PVC", "MM", "CONS")
ALGORITHMS = ("none", "bdi", "fpc", "cpack", "bestofall")


def _design_for(algorithm):
    if algorithm == "none":
        return designs.base()
    return designs.caba(algorithm)


def _snapshot(run):
    """Byte-exact scalar summary of a run (floats via repr)."""
    return {
        "design": run.design,
        "cycles": run.cycles,
        "ipc": repr(run.ipc),
        "instructions": run.instructions,
        "assist_instructions": run.assist_instructions,
        "bandwidth_utilization": repr(run.bandwidth_utilization),
        "compression_ratio": repr(run.compression_ratio),
        "energy_total": repr(run.energy.total),
        "slot_breakdown": {slot.name: repr(value)
                           for slot, value in run.slot_breakdown.items()},
        "dram_bursts": dict(run.dram_bursts),
        "l2_hit_rate": repr(run.l2_hit_rate),
        "lines_compressed": run.lines_compressed,
        "occupancy_blocks": run.occupancy_blocks,
    }


def _load_golden():
    if not FIXTURE.exists():
        pytest.fail(f"missing fixture {FIXTURE}; regenerate with "
                    "REPRO_REGEN_GOLDEN=1")
    return json.loads(FIXTURE.read_text())


_regen: dict = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("app", APPS)
def test_golden_stats(app, algorithm):
    # The observed compression ratio is an aggregate over the shared
    # per-process line-info cache, so snapshots must come from a cold
    # run to be independent of test order.
    clear_caches()
    run = run_app(app, _design_for(algorithm), GPUConfig.small(),
                  scale=SCALE, use_cache=False)
    snapshot = _snapshot(run)
    key = f"{app}/{algorithm}"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        _regen[key] = snapshot
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        golden = json.loads(FIXTURE.read_text()) if FIXTURE.exists() else {}
        golden[key] = snapshot
        FIXTURE.write_text(json.dumps(golden, indent=2, sort_keys=True)
                           + "\n")
        return
    golden = _load_golden()
    assert key in golden, f"fixture has no entry for {key}; regenerate"
    assert snapshot == golden[key]


def test_fixture_covers_full_matrix():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating")
    golden = _load_golden()
    expected = {f"{app}/{alg}" for app in APPS for alg in ALGORITHMS}
    assert set(golden) == expected
