"""Golden-stats regression suite.

Pins the scalar statistics of representative runs byte-exactly against
``tests/fixtures/golden_stats.json``. The simulator is deterministic, so
any drift here means a behavioural change — which is either a bug, or an
intentional change that must regenerate the fixture:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/harness/test_golden_stats.py -q

Floats are stored via ``repr`` so the comparison is exact, not
tolerance-based.

The matrix covers four run families, keyed as:

* ``APP/ALGORITHM`` — the bandwidth-mode app x design matrix (the
  original golden trio plus the DL/HPC profiles ATTN and ST3D),
* ``capacity:APP/ALGORITHM`` — capacity-mode runs with a device budget
  of 25 % of the footprint, pinning spill placement and host traffic,
* ``scenario:KIND/{assist,base}`` — prefetch/memoization scenario runs
  with and without the assist-warp controller.

A subset of keys is additionally replayed with ``REPRO_SOA=0`` against
the *same* fixture entries: the vectorized and pure-Python cores must
agree byte-exactly, so one fixture serves both backends.
"""

import json
import os
from pathlib import Path

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import (
    clear_caches,
    run_app,
    run_spec,
    scenario_spec,
)
from repro.memory.hostlink import CapacityConfig
from repro.workloads import get_app
from repro.workloads.tracegen import TraceScale, footprint_extents

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_stats.json"
SCALE = TraceScale(work=0.25, waves=0.25)

APPS = ("PVC", "MM", "CONS", "ATTN", "ST3D")
ALGORITHMS = ("none", "bdi", "fpc", "cpack", "bestofall")

#: Capacity-mode entries: the baseline spills hard at a 25 % budget;
#: CABA-BDI still spills (the budget undercuts even the compressed
#: footprint), pinning the compressed-DRAM spill path too.
CAPACITY_KEYS = ("capacity:PVC/none", "capacity:PVC/bdi")
CAPACITY_BUDGET_FRACTION = 0.25

SCENARIO_KEYS = (
    "scenario:prefetch/assist",
    "scenario:prefetch/base",
    "scenario:memoization/assist",
    "scenario:memoization/base",
)

ALL_KEYS = tuple(
    f"{app}/{algorithm}" for app in APPS for algorithm in ALGORITHMS
) + CAPACITY_KEYS + SCENARIO_KEYS

#: Keys replayed under ``REPRO_SOA=0`` against the same fixture entries
#: (one representative per run family).
PURE_BACKEND_KEYS = (
    "ATTN/cpack",
    "ST3D/bestofall",
    "capacity:PVC/bdi",
    "scenario:prefetch/assist",
    "scenario:memoization/assist",
)


def _design_for(algorithm):
    if algorithm == "none":
        return designs.base()
    return designs.caba(algorithm)


def _stat_dict(payload):
    """Byte-exact rendering of a capacity/scenario stats dict."""
    return {
        key: (repr(value) if isinstance(value, float) else value)
        for key, value in sorted(payload.items())
    }


def _snapshot(run):
    """Byte-exact scalar summary of a run (floats via repr)."""
    snap = {
        "design": run.design,
        "cycles": run.cycles,
        "ipc": repr(run.ipc),
        "instructions": run.instructions,
        "assist_instructions": run.assist_instructions,
        "bandwidth_utilization": repr(run.bandwidth_utilization),
        "compression_ratio": repr(run.compression_ratio),
        "energy_total": repr(run.energy.total),
        "slot_breakdown": {slot.name: repr(value)
                           for slot, value in run.slot_breakdown.items()},
        "dram_bursts": dict(run.dram_bursts),
        "l2_hit_rate": repr(run.l2_hit_rate),
        "lines_compressed": run.lines_compressed,
        "occupancy_blocks": run.occupancy_blocks,
    }
    if run.capacity is not None:
        snap["capacity"] = _stat_dict(run.capacity)
    if run.scenario is not None:
        snap["scenario"] = _stat_dict(run.scenario)
    return snap


def _capacity_budget(app, config):
    extents = footprint_extents(get_app(app), config, SCALE)
    total_lines = sum(lines for _, lines in extents)
    return max(
        config.line_size,
        int(total_lines * config.line_size * CAPACITY_BUDGET_FRACTION),
    )


def _run_for_key(key):
    """Replay the run a fixture key names, from a cold cache."""
    # The observed compression ratio is an aggregate over the shared
    # per-process line-info cache, so snapshots must come from a cold
    # run to be independent of test order.
    clear_caches()
    config = GPUConfig.small()
    if key.startswith("capacity:"):
        app, algorithm = key[len("capacity:"):].split("/")
        return run_app(
            app, _design_for(algorithm), config, scale=SCALE,
            use_cache=False,
            capacity=CapacityConfig(
                device_bytes=_capacity_budget(app, config)
            ),
        )
    if key.startswith("scenario:"):
        kind, variant = key[len("scenario:"):].split("/")
        spec = scenario_spec(kind, config, assist=(variant == "assist"))
        return run_spec(spec, use_cache=False)
    app, algorithm = key.split("/")
    return run_app(app, _design_for(algorithm), config, scale=SCALE,
                   use_cache=False)


def _load_golden():
    if not FIXTURE.exists():
        pytest.fail(f"missing fixture {FIXTURE}; regenerate with "
                    "REPRO_REGEN_GOLDEN=1")
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("key", ALL_KEYS)
def test_golden_stats(key):
    snapshot = _snapshot(_run_for_key(key))
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        golden = json.loads(FIXTURE.read_text()) if FIXTURE.exists() else {}
        golden[key] = snapshot
        FIXTURE.write_text(json.dumps(golden, indent=2, sort_keys=True)
                           + "\n")
        return
    golden = _load_golden()
    assert key in golden, f"fixture has no entry for {key}; regenerate"
    assert snapshot == golden[key]


@pytest.mark.parametrize("key", PURE_BACKEND_KEYS)
def test_golden_stats_pure_backend(key, monkeypatch):
    """The pure-Python core reproduces the same fixture byte-exactly."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating")
    monkeypatch.setenv("REPRO_SOA", "0")
    golden = _load_golden()
    assert key in golden, f"fixture has no entry for {key}; regenerate"
    assert _snapshot(_run_for_key(key)) == golden[key]


def test_fixture_covers_full_matrix():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating")
    golden = _load_golden()
    assert set(golden) == set(ALL_KEYS)
