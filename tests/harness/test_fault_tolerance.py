"""Fault-tolerance tests for the parallel experiment engine.

The contract under test: a worker crash, a killed worker process
(``BrokenProcessPool``) or a hung worker must never discard completed
sibling results — surviving specs all complete, transient failures
retry to success, results produced through any failure path stay
byte-identical to a clean serial run, and exhausted specs surface as
structured :class:`RunFailure` records naming the right spec and
attempt. Faults are injected deterministically through the
``REPRO_FAULT_SPEC`` hook (see :func:`repro.harness.parallel.
maybe_inject_fault`), which runs inside the worker processes.
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness import parallel
from repro.harness.cache import RunCache
from repro.harness.parallel import (
    BatchResult,
    ExperimentEngine,
    ExperimentFailure,
    RunFailure,
    _Fault,
    _fault_for,
    _parse_faults,
    render_failures,
)
from repro.harness.runner import RunSpec, clear_caches, run_spec
from repro.workloads.tracegen import TraceScale

#: Shrunk workload so each simulation stays well under a second.
SCALE = TraceScale(work=0.25)

#: The fault target plus two innocent-bystander specs.
FAULTED_APP = "PVC"


def _specs():
    config = GPUConfig.small()
    return [
        RunSpec(FAULTED_APP, designs.caba(), config, scale=SCALE),
        RunSpec("MM", designs.base(), config, scale=SCALE),
        RunSpec("CONS", designs.caba(), config, scale=SCALE),
    ]


def _metrics(run):
    return (run.cycles, run.ipc, run.compression_ratio, run.energy.total,
            tuple(sorted(run.slot_breakdown.items())))


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    """Private cache dir, zero backoff, and no inherited fault knobs."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    for var in ("REPRO_FAULT_SPEC", "REPRO_FAULT_HANG",
                "REPRO_RUN_TIMEOUT", "REPRO_RETRIES"):
        monkeypatch.delenv(var, raising=False)
    clear_caches()
    yield
    clear_caches()


class TestFaultParsing:
    def test_single_entry_defaults_to_first_attempt(self):
        (fault,) = _parse_faults("PVC:raise")
        assert fault == _Fault("PVC", None, "raise", 1)

    def test_design_attempt_and_wildcard(self):
        faults = _parse_faults("PVC@CABA-BDI:kill:2; MM:hang:*")
        assert faults[0] == _Fault("PVC", "CABA-BDI", "kill", 2)
        assert faults[1] == _Fault("MM", None, "hang", None)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            _parse_faults("PVC:explode")

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            _parse_faults("PVC")

    def test_fault_for_matches_spec_and_attempt(self, monkeypatch):
        target, innocent, _ = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           f"{FAULTED_APP}@{target.design.name}:raise:1")
        assert _fault_for(target, 1) == "raise"
        assert _fault_for(target, 2) is None
        assert _fault_for(innocent, 1) is None

    def test_no_env_is_a_noop(self):
        assert _fault_for(_specs()[0], 1) is None


class TestSerialRetry:
    """jobs=1 shares the retry/failure contract (minus timeouts)."""

    def test_single_shot_crash_retries_to_success(self, monkeypatch):
        specs = _specs()
        clean = [run_spec(s, use_cache=False) for s in specs]
        clear_caches()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:1")
        with ExperimentEngine(jobs=1, retries=1) as engine:
            out = engine.run_many(specs)
        assert [_metrics(a) for a in out] == [_metrics(b) for b in clean]

    def test_exhausted_retries_raise_with_spec_and_attempt(
            self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*")
        with ExperimentEngine(jobs=1, retries=1) as engine:
            with pytest.raises(ExperimentFailure) as excinfo:
                engine.run_many(specs, label="unit")
        failure = excinfo.value.failures[0]
        assert failure.spec == specs[0]
        assert failure.kind == "error"
        assert failure.attempts == 2  # initial try + one retry
        assert "InjectedFault" in failure.exception
        assert "injected fault" in failure.traceback
        # The siblings completed despite the failure.
        assert set(excinfo.value.completed) == set(specs[1:])
        assert "[unit]" in str(excinfo.value)

    def test_strict_false_returns_partial_results(self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*")
        with ExperimentEngine(jobs=1, retries=0) as engine:
            batch = engine.run_many(specs, strict=False)
        assert isinstance(batch, BatchResult)
        assert not batch.ok
        assert batch.results[0] is None
        assert batch.results[1] is not None
        assert batch.results[2] is not None
        assert len(batch.completed()) == 2
        (failure,) = batch.failures
        assert failure.spec == specs[0]
        assert failure.attempts == 1


class TestPoolCrash:
    def test_single_shot_crash_retries_and_matches_serial(
            self, monkeypatch):
        specs = _specs()
        clean = [run_spec(s, use_cache=False) for s in specs]
        clear_caches()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:1")
        with ExperimentEngine(jobs=2, retries=1) as engine:
            out = engine.run_many(specs)
            assert engine.pool_respawns == 0  # exception, not a kill
        assert [_metrics(a) for a in out] == [_metrics(b) for b in clean]

    def test_persistent_crash_spares_survivors(self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*")
        with ExperimentEngine(jobs=2, retries=1) as engine:
            batch = engine.run_many(specs, strict=False)
        assert batch.results[0] is None
        assert all(run is not None for run in batch.results[1:])
        (failure,) = batch.failures
        assert failure.spec == specs[0]
        assert failure.attempts == 2
        assert failure.worker_pid is not None
        assert "InjectedFault" in failure.traceback
        assert "PVC" in render_failures(batch.failures)

    def test_worker_failures_report_distinct_specs(self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv(
            "REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*;CONS:raise:*"
        )
        with ExperimentEngine(jobs=2, retries=0) as engine:
            batch = engine.run_many(specs, strict=False)
        assert {f.spec for f in batch.failures} == {specs[0], specs[2]}
        assert batch.results[1] is not None


class TestBrokenPool:
    def test_killed_worker_respawns_pool_and_recovers(self, monkeypatch):
        specs = _specs()
        clean = [run_spec(s, use_cache=False) for s in specs]
        clear_caches()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:kill:1")
        with ExperimentEngine(jobs=2, retries=1) as engine:
            out = engine.run_many(specs)
            assert engine.pool_respawns >= 1
        assert [_metrics(a) for a in out] == [_metrics(b) for b in clean]

    def test_kill_without_retries_reports_pool_broken(self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:kill:*")
        with ExperimentEngine(jobs=2, retries=0) as engine:
            batch = engine.run_many(specs, strict=False)
        assert batch.results[0] is None
        # The culprit is unattributable inside a broken pool, so the
        # faulted spec fails as pool-broken; innocent in-flight specs
        # may have burned an attempt but must still complete.
        faulted = [f for f in batch.failures if f.spec == specs[0]]
        assert faulted and faulted[0].kind == "pool-broken"
        assert all(run is not None for run in batch.results[1:])


class TestTimeout:
    def test_hung_worker_is_cancelled_and_retried(self, monkeypatch):
        specs = _specs()
        clean = [run_spec(s, use_cache=False) for s in specs]
        clear_caches()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:hang:1")
        monkeypatch.setenv("REPRO_FAULT_HANG", "60")
        with ExperimentEngine(jobs=2, retries=1, timeout=1.5) as engine:
            out = engine.run_many(specs)
            assert engine.pool_respawns >= 1
        assert [_metrics(a) for a in out] == [_metrics(b) for b in clean]

    def test_persistent_hang_reports_timeout(self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:hang:*")
        monkeypatch.setenv("REPRO_FAULT_HANG", "60")
        with ExperimentEngine(jobs=2, retries=0, timeout=1.5) as engine:
            batch = engine.run_many(specs, strict=False)
        (failure,) = batch.failures
        assert failure.spec == specs[0]
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert all(run is not None for run in batch.results[1:])

    def test_env_timeout_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        assert ExperimentEngine(jobs=2).timeout == 2.5
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "0")
        assert ExperimentEngine(jobs=2).timeout is None
        # An explicit constructor argument wins over the environment.
        assert ExperimentEngine(jobs=2, timeout=1.0).timeout == 1.0


class TestCombinedFaults:
    def test_crash_plus_hang_in_one_sweep(self, monkeypatch):
        """The acceptance scenario: one spec's worker crashed AND
        another hung past the timeout, single-shot each — every spec
        still completes, byte-identical to serial."""
        specs = _specs()
        clean = [run_spec(s, use_cache=False) for s in specs]
        clear_caches()
        monkeypatch.setenv(
            "REPRO_FAULT_SPEC",
            f"{FAULTED_APP}:raise:1;CONS:hang:1",
        )
        monkeypatch.setenv("REPRO_FAULT_HANG", "60")
        with ExperimentEngine(jobs=2, retries=1, timeout=1.5) as engine:
            out = engine.run_many(specs)
        assert [_metrics(a) for a in out] == [_metrics(b) for b in clean]


class TestCheckpointing:
    def test_completed_siblings_survive_a_strict_failure(
            self, tmp_path, monkeypatch):
        """A failed batch must not discard its completed runs: they are
        checkpointed to the persistent cache as they land."""
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*")
        with ExperimentEngine(jobs=2, retries=0) as engine:
            with pytest.raises(ExperimentFailure) as excinfo:
                engine.run_many(specs)
        assert set(excinfo.value.completed) == set(specs[1:])
        disk = RunCache(root=tmp_path / "cache")
        for spec in specs[1:]:
            assert disk.get(spec) is not None, spec.app
        assert disk.get(specs[0]) is None

    def test_rerun_after_failure_only_redoes_the_failure(
            self, monkeypatch):
        specs = _specs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"{FAULTED_APP}:raise:*")
        with ExperimentEngine(jobs=2, retries=0) as engine:
            engine.run_many(specs, strict=False)
        # Clear the fault; the rerun resolves the siblings from cache
        # and only simulates the previously failed spec.
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        clear_caches()  # drop the in-process memo, keep the disk cache
        with ExperimentEngine(jobs=2, retries=0) as engine:
            out = engine.run_many(specs)
        assert all(run is not None for run in out)


class TestDefaults:
    def test_retry_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        assert ExperimentEngine(jobs=1).retries == 3
        monkeypatch.setenv("REPRO_RETRIES", "bogus")
        assert ExperimentEngine(jobs=1).retries == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=1, retries=-1)

    def test_run_specs_passthrough(self, monkeypatch):
        spec = _specs()[1]
        monkeypatch.setenv("REPRO_FAULT_SPEC", "MM:raise:*")
        parallel.shutdown()
        try:
            batch = parallel.run_specs([spec], strict=False, label="x")
            assert isinstance(batch, BatchResult)
            assert batch.failures and batch.failures[0].spec == spec
        finally:
            parallel.shutdown()

    def test_failure_describe_names_spec(self):
        spec = _specs()[0]
        failure = RunFailure(spec=spec, kind="error", attempts=2,
                             exception="ValueError('x')", worker_pid=42)
        text = failure.describe()
        assert "PVC" in text and "2 attempt" in text and "42" in text
