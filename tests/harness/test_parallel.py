"""Determinism and cache-correctness tests for the parallel engine.

The contract under test: one :class:`RunSpec` produces byte-identical
metrics no matter how it is executed — serially in-process, through the
worker pool, or recalled from a cold/warm persistent cache — and the
persistent cache invalidates itself when the source stamp changes.
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness import parallel
from repro.harness import runner as runner_mod
from repro.harness.cache import RunCache
from repro.harness.runner import RunSpec, clear_caches, run_spec
from repro.workloads.tracegen import TraceScale

#: Shrunk workload so each simulation stays well under a second.
SCALE = TraceScale(work=0.25)


def _specs():
    config = GPUConfig.small()
    return [
        RunSpec("PVC", designs.caba(), config, scale=SCALE),
        RunSpec("MM", designs.base(), config, scale=SCALE),
    ]


def _metrics(run):
    return (run.cycles, run.ipc, run.compression_ratio, run.energy.total)


class TestPoolDeterminism:
    def test_pool_matches_serial(self):
        specs = _specs()
        clear_caches()
        serial = [run_spec(spec, use_cache=False) for spec in specs]
        clear_caches()
        with parallel.ExperimentEngine(jobs=2) as engine:
            pooled = engine.run_many(specs)
        assert len(pooled) == len(serial)
        for a, b in zip(serial, pooled):
            assert _metrics(a) == _metrics(b)
            assert a.slot_breakdown == b.slot_breakdown

    def test_run_many_preserves_order_and_dedupes(self):
        first, second = _specs()
        with parallel.ExperimentEngine(jobs=1) as engine:
            out = engine.run_many([first, second, first])
        assert [run.app for run in out] == [first.app, second.app, first.app]
        assert out[0] is out[2]

    def test_serial_engine_matches_run_spec(self):
        spec = _specs()[1]
        with parallel.ExperimentEngine(jobs=1) as engine:
            assert engine.run(spec) is run_spec(spec)

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            parallel.ExperimentEngine(jobs=0)


class TestPersistentCache:
    def test_cold_then_warm_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        spec = _specs()[1]
        cold = run_spec(spec)
        assert RunCache(root=tmp_path).get(spec) is not None

        # Drop the in-process memo; the warm path must come from disk —
        # prove it by making simulation impossible.
        clear_caches()

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm lookup re-simulated")

        monkeypatch.setattr(runner_mod, "_simulate", boom)
        warm = run_spec(spec)
        assert warm is not cold
        assert _metrics(warm) == _metrics(cold)

    def test_stamp_change_invalidates(self, tmp_path):
        spec = _specs()[1]
        result = run_spec(spec, use_cache=False)
        old = RunCache(root=tmp_path, stamp="aaaaaaaaaaaaaaaa")
        new = RunCache(root=tmp_path, stamp="bbbbbbbbbbbbbbbb")
        old.put(spec, result)
        assert old.get(spec) is not None
        # A new source stamp never looks the old entry up again.
        assert new.get(spec) is None
        info = new.info()
        assert info["entries"] == 0
        assert info["stale_entries"] == 1
        assert new.clear() == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        spec = _specs()[1]
        result = run_spec(spec, use_cache=False)
        cache = RunCache(root=tmp_path)
        cache.put(spec, result)
        path = cache._path(cache.key(spec))
        # 'g' is a valid pickle opcode with an int argument, so this
        # raises ValueError (not PickleError) from a naive load.
        path.write_bytes(b"garbage\n")
        assert cache.get(spec) is None

    def test_put_refuses_raw_state(self, tmp_path):
        spec = _specs()[1]
        heavy = run_spec(spec, use_cache=False, keep_raw=True)
        assert heavy.raw is not None
        with pytest.raises(ValueError):
            RunCache(root=tmp_path).put(spec, heavy)

    def test_disabled_cache_returns_no_handle(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        clear_caches()
        from repro.harness.cache import get_cache

        assert get_cache() is None
        monkeypatch.delenv("REPRO_CACHE")
        clear_caches()
