"""Simulation-backed figure harness tests on tiny app subsets.

The benchmarks run the representative subsets; these tests pin the
harness plumbing itself (row/summary structure, normalization, design
coverage) with just two applications so the suite stays fast.
"""

import pytest

from repro.harness import figures

APPS = ("PVC", "RAY")


class TestFig7Structure:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig7_performance(apps=APPS)

    def test_columns_cover_five_designs(self, result):
        assert result.columns == [
            "app", "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI"
        ]

    def test_base_normalized_to_one(self, result):
        for row in result.rows:
            assert row["Base"] == pytest.approx(1.0)

    def test_geomeans_present(self, result):
        assert "geomean_CABA-BDI" in result.summary
        assert result.summary["geomean_CABA-BDI"] > 1.0


class TestFig8Structure:
    def test_utilizations_for_every_design(self):
        result = figures.fig8_bandwidth(apps=APPS)
        for row in result.rows:
            for design in ("Base", "CABA-BDI", "Ideal-BDI"):
                assert 0.0 <= row[design] <= 1.0


class TestFig9Structure:
    def test_base_energy_normalized(self):
        result = figures.fig9_energy(apps=APPS)
        for row in result.rows:
            assert row["Base"] == pytest.approx(1.0)
            assert row["CABA-BDI"] < 1.05

    def test_dram_reduction_summary(self):
        result = figures.fig9_energy(apps=APPS)
        assert result.summary["avg_dram_energy_reduction"] > 0.0


class TestFig12Structure:
    def test_normalized_against_1x_base(self):
        result = figures.fig12_bw_sensitivity(apps=("PVC",))
        row = result.rows[0]
        assert row["1x-Base"] == pytest.approx(1.0)
        assert row["2x-Base"] > row["1x-Base"]
        assert row["1x-CABA"] > row["1x-Base"]


class TestFig13Structure:
    def test_relative_to_plain_caba(self):
        result = figures.fig13_cache_compression(apps=("PVC",))
        row = result.rows[0]
        assert row["CABA-BDI"] == pytest.approx(1.0)
        for key in ("CABA-L1-2x", "CABA-L1-4x", "CABA-L2-2x", "CABA-L2-4x"):
            assert row[key] > 0.0


class TestFig1Structure:
    def test_three_bandwidths_per_app(self):
        result = figures.fig1_cycle_breakdown(apps=("PVC", "NQU"))
        assert len(result.rows) == 6
        for row in result.rows:
            total = sum(
                row[label] for label in result.columns[3:]
            )
            assert total == pytest.approx(1.0)

    def test_memory_summary_only_for_memory_apps(self):
        result = figures.fig1_cycle_breakdown(apps=("NQU",))
        # NQU is compute-bound: no memory-stall averages recorded.
        assert all(v == 0 or True for v in result.summary.values())


class TestMdCacheStudy:
    def test_reports_rates(self):
        result = figures.md_cache_study(apps=("PVC",))
        assert result.rows
        assert 0.0 <= result.rows[0]["md_hit_rate"] <= 1.0
