"""CacheBackend conformance: one contract, three implementations.

Every backend (local-dir, shared-FS, HTTP-through-the-sweep-server) is
run through the same suite: per-kind round-trips, overwrite semantics,
corrupt-entry-as-miss at the RunCache layer, and concurrent same-key
writers. The HTTP leg drives a real server over real sockets, so the
``/v1/cache`` endpoints are covered by the identical assertions.
"""

import pickle
import threading
from dataclasses import dataclass

import pytest

from repro.harness import runner
from repro.harness.cache import (
    CACHE_KINDS,
    HTTPCacheBackend,
    LocalDirBackend,
    RunCache,
    SharedFSBackend,
    backend_from_env,
    valid_cache_key,
)


@dataclass(frozen=True)
class _Spec:
    """Duck-typed stand-in for RunSpec (the cache only calls
    ``canonical``)."""

    name: str

    def canonical(self) -> str:
        return f"spec:{self.name}"


@dataclass
class _Result:
    payload: str
    raw: object = None


class _NullEngine:
    """Engine stub for the HTTP leg's server: the cache endpoints never
    touch it, but the JobStore wants something closeable."""

    def run_many(self, specs, strict=True, label=None,
                 on_result=None, on_failure=None):
        return None

    def close(self) -> None:
        pass


@pytest.fixture(params=["local", "shared-fs", "http"])
def backend(request, tmp_path, monkeypatch):
    if request.param == "local":
        yield LocalDirBackend(tmp_path / "cache", "stampA")
        return
    if request.param == "shared-fs":
        yield SharedFSBackend(tmp_path / "cache", "stampA")
        return
    # HTTP: a real sweep server whose process-global cache lives in
    # this test's tmp dir (reset the memoized handle both ways).
    from repro.service.jobs import JobStore
    from repro.service.server import ServiceConfig, SweepServer

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "server-cache"))
    monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    runner.clear_caches()
    store = JobStore(engine=_NullEngine())
    server = SweepServer(store, ServiceConfig(host="127.0.0.1", port=0))
    host, port = server.start_background()
    try:
        yield HTTPCacheBackend(f"http://{host}:{port}")
    finally:
        server.stop()
        store.close()
        runner.clear_caches()


class TestConformance:
    @pytest.mark.parametrize("kind,key", [
        ("runs", "a" * 64),
        ("planes", "b" * 64),
        ("traces", "MM-CABA-BDI.json"),
    ])
    def test_round_trip_per_kind(self, backend, kind, key):
        assert backend.get(kind, key) is None
        assert not backend.has(kind, key)
        backend.put(kind, key, b"payload-bytes")
        assert backend.get(kind, key) == b"payload-bytes"
        assert backend.has(kind, key)
        assert key in backend.list(kind)

    def test_kinds_are_independent_namespaces(self, backend):
        backend.put("runs", "deadbeef", b"a run")
        assert backend.get("planes", "deadbeef") is None
        assert backend.get("traces", "deadbeef") is None
        assert backend.list("planes") == []

    def test_put_keeps_existing_unless_overwrite(self, backend):
        backend.put("runs", "k1", b"first")
        backend.put("runs", "k1", b"second")
        assert backend.get("runs", "k1") == b"first"
        backend.put("runs", "k1", b"third", overwrite=True)
        assert backend.get("runs", "k1") == b"third"

    def test_list_returns_keys_not_paths(self, backend):
        for key in ("k1", "k2", "k3"):
            backend.put("runs", key, b"x")
        assert backend.list("runs") == ["k1", "k2", "k3"]

    def test_corrupt_entry_reads_as_miss_through_runcache(
            self, backend, tmp_path):
        """Garbage bytes in the store must surface as a miss from
        RunCache.get — for every backend, not just file ones."""
        cache = RunCache(root=tmp_path / "unused", stamp="stampA",
                         backend=backend)
        spec = _Spec("corrupt")
        backend.put("runs", cache.key(spec), b"\x80not a pickle")
        assert cache.get(spec) is None

    def test_runcache_round_trip_over_backend(self, backend, tmp_path):
        cache = RunCache(root=tmp_path / "unused", stamp="stampA",
                         backend=backend)
        spec = _Spec("rt")
        cache.put(spec, _Result("hello"))
        assert cache.get(spec).payload == "hello"
        cache.put_plane("feedf00d", {"plane": 1})
        assert cache.get_plane("feedf00d") == {"plane": 1}

    def test_concurrent_writers_same_key_keep_entry_valid(self, backend):
        """N racing writers (atomic replace / last-writer-wins): the
        surviving entry must be one of the complete payloads, never an
        interleaving."""
        payloads = [f"writer-{i}".encode() * 64 for i in range(4)]
        errors = []

        def write(data: bytes) -> None:
            try:
                for _ in range(10):
                    backend.put("runs", "contested", data, overwrite=True)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(p,))
                   for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert backend.get("runs", "contested") in payloads


class TestLocalLayout:
    """The default path must stay byte-identical to the historical
    on-disk format — REPRO_CACHE_BACKEND unset changes nothing."""

    def test_default_backend_is_local_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        cache = RunCache(root=tmp_path, stamp="stampA")
        assert type(cache.backend) is LocalDirBackend
        assert cache.info()["backend"] == "local"

    def test_layout_and_bytes_unchanged(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        cache = RunCache(root=tmp_path, stamp="stampA")
        spec = _Spec("layout")
        result = _Result("payload")
        cache.put(spec, result)
        path = cache._path(cache.key(spec))
        assert path == tmp_path / "stampA" / f"{cache.key(spec)}.pkl"
        assert path.read_bytes() == pickle.dumps(
            result, protocol=pickle.HIGHEST_PROTOCOL)
        cache.put_plane("cafe", {"p": 2})
        assert cache._plane_path("cafe").exists()

    def test_shared_fs_layout_matches_local(self, tmp_path):
        local = RunCache(root=tmp_path / "a", stamp="s",
                         backend=LocalDirBackend(tmp_path / "a", "s"))
        shared = RunCache(root=tmp_path / "b", stamp="s",
                          backend=SharedFSBackend(tmp_path / "b", "s"))
        spec = _Spec("same")
        local.put(spec, _Result("x"))
        shared.put(spec, _Result("x"))
        rel_local = local._path(local.key(spec)).relative_to(tmp_path / "a")
        rel_shared = shared._path(shared.key(spec)).relative_to(
            tmp_path / "b")
        assert rel_local == rel_shared
        assert local._path(local.key(spec)).read_bytes() == \
            shared._path(shared.key(spec)).read_bytes()

    def test_sweep_removes_only_old_tmp(self, tmp_path):
        import os
        import time

        backend = SharedFSBackend(tmp_path, "s")
        backend.put("runs", "keep", b"data")
        stale = tmp_path / "s" / "orphan.tmp"
        stale.write_bytes(b"half a write")
        ancient = time.time() - 7200
        os.utime(stale, (ancient, ancient))
        young = tmp_path / "s" / "inflight.tmp"
        young.write_bytes(b"mid write")
        assert backend.sweep(max_age=3600) == 1
        assert not stale.exists()
        assert young.exists()
        assert backend.get("runs", "keep") == b"data"


class TestBackendSelection:
    def test_env_selects_shared_fs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "shared-fs")
        backend = backend_from_env(tmp_path, "s")
        assert type(backend) is SharedFSBackend
        assert backend.durable

    def test_env_selects_http(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "http://127.0.0.1:9")
        backend = backend_from_env(tmp_path, "s")
        assert isinstance(backend, HTTPCacheBackend)
        assert (backend.host, backend.port) == ("127.0.0.1", 9)

    def test_unknown_backend_is_an_error(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "carrier-pigeon")
        with pytest.raises(ValueError):
            backend_from_env(tmp_path, "s")

    def test_unreachable_http_reads_as_miss_writes_raise(self):
        from repro.harness.cache import CacheBackendError

        backend = HTTPCacheBackend("http://127.0.0.1:9", timeout=0.2)
        assert backend.get("runs", "k") is None
        assert not backend.has("runs", "k")
        assert backend.list("runs") == []
        with pytest.raises(CacheBackendError):
            backend.put("runs", "k", b"data")


class TestKeyValidation:
    @pytest.mark.parametrize("kind,key,ok", [
        ("runs", "a" * 64, True),
        ("traces", "MM-CABA.chrome.json", True),
        ("runs", "../escape", False),
        ("runs", "a/b", False),
        ("runs", "", False),
        ("runs", ".hidden", False),
        ("bogus", "aaaa", False),
        ("runs", "a" * 300, False),
    ])
    def test_valid_cache_key(self, kind, key, ok):
        assert valid_cache_key(kind, key) is ok

    def test_all_kinds_enumerated(self):
        assert CACHE_KINDS == ("runs", "planes", "traces")
