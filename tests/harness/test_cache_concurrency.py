"""Concurrent access to the persistent run cache.

The cache's contract under concurrency is *graceful degradation*: a
reader racing a writer, a sweeper, or a ``clear`` must see either a
valid entry or a miss — never an exception, never garbage. These tests
drive the races with real threads and real processes (the parallel
engine's workers share one cache directory exactly this way).
"""

import os
import pickle
import subprocess
import sys
import threading

from repro import design as designs
from repro.energy.model import EnergyBreakdown
from repro.gpu.config import GPUConfig
from repro.gpu.stats import Slot
from repro.harness.cache import RunCache
from repro.harness.runner import RunResult, RunSpec


def make_result(app: str = "MM", cycles: int = 1234) -> RunResult:
    """A minimal raw-free RunResult (also imported by the cross-process
    worker below, so it pickles with a stable class identity)."""
    return RunResult(
        app=app, design="Base", cycles=cycles, ipc=1.0,
        instructions=cycles, assist_instructions=0,
        bandwidth_utilization=0.5, compression_ratio=1.0,
        energy=EnergyBreakdown(),
        slot_breakdown={slot: 0.2 for slot in Slot},
        md_cache_hit_rate=None, dram_bursts={}, l2_hit_rate=0.0,
        truncated=False, occupancy_blocks=1,
    )


def _spec(app: str = "MM") -> RunSpec:
    return RunSpec(app, designs.base(), GPUConfig.small(), sample=None)


def _put(cache: RunCache, spec: RunSpec) -> RunResult:
    result = make_result(app=spec.app)
    cache.put(spec, result)
    return result


class TestCorruptEntries:
    def test_truncated_pickle_reads_as_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        spec = _spec()
        _put(cache, spec)
        path = cache._path(cache.key(spec))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(spec) is None

    def test_garbage_bytes_read_as_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        spec = _spec()
        _put(cache, spec)
        cache._path(cache.key(spec)).write_bytes(b"not a pickle at all")
        assert cache.get(spec) is None

    def test_entry_deleted_before_read_is_a_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        spec = _spec()
        _put(cache, spec)
        cache._path(cache.key(spec)).unlink()
        assert cache.get(spec) is None

    def test_corrupt_plane_reads_as_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        cache._plane_path("deadbeef").parent.mkdir(parents=True)
        cache._plane_path("deadbeef").write_bytes(b"\x80garbage")
        assert cache.get_plane("deadbeef") is None


class TestThreadRaces:
    """Reader threads racing destructive maintenance: every get() must
    return a valid result or None; any exception fails the test."""

    ROUNDS = 200

    def _race(self, tmp_path, disrupt) -> None:
        cache = RunCache(root=tmp_path)
        specs = [_spec(app) for app in ("MM", "PVC", "CONS")]
        expected = {spec: _put(cache, spec).cycles for spec in specs}
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    for spec in specs:
                        hit = cache.get(spec)
                        assert hit is None or \
                            hit.cycles == expected[spec]
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(self.ROUNDS):
                disrupt(cache, specs)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not errors, f"reader crashed: {errors[0]!r}"

    def test_get_races_clear(self, tmp_path):
        def disrupt(cache, specs):
            cache.clear()
            for spec in specs:
                _put(cache, spec)

        self._race(tmp_path, disrupt)

    def test_get_races_sweep_tmp(self, tmp_path):
        def disrupt(cache, specs):
            # Strew tmp leftovers among live entries, then sweep with a
            # zero age threshold (maximally aggressive).
            stamp_dir = cache.root / cache.stamp
            for index in range(3):
                (stamp_dir / f"left{index}.tmp").write_bytes(b"x")
            cache.sweep_tmp(max_age=0.0)

        self._race(tmp_path, disrupt)

    def test_concurrent_writers_same_key_keep_entry_valid(self, tmp_path):
        cache = RunCache(root=tmp_path)
        spec = _spec()
        expected = make_result(app=spec.app)
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                for _ in range(100):
                    cache.put(spec, expected, overwrite=True)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        hit = cache.get(spec)
        assert hit is not None and hit.cycles == expected.cycles


_WORKER_SCRIPT = r"""
import sys

sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.cache import RunCache
from repro.harness.runner import RunSpec
from harness.test_cache_concurrency import make_result

cache = RunCache(root={root!r})
specs = [RunSpec(app, designs.base(), GPUConfig.small(), sample=None)
         for app in ("MM", "PVC", "CONS")]
for _ in range(50):
    for spec in specs:
        cache.put(spec, make_result(app=spec.app), overwrite=True)
        hit = cache.get(spec)
        assert hit is None or hit.app == spec.app, hit
print("worker-ok")
"""


class TestCrossProcess:
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        """Two real processes hammer the same keys in one directory —
        the atomic-write protocol must keep every read valid in both,
        and must leave no torn entries or tmp leftovers behind."""
        here = os.path.dirname(__file__)
        script = _WORKER_SCRIPT.format(
            src=os.path.abspath(os.path.join(here, "..", "..", "src")),
            tests=os.path.abspath(os.path.join(here, "..")),
            root=str(tmp_path),
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script],
                             stdout=subprocess.PIPE,
                             stderr=subprocess.PIPE)
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            assert b"worker-ok" in out
        # Every entry left behind is a complete, valid pickle.
        cache = RunCache(root=tmp_path)
        entries = list((tmp_path / cache.stamp).glob("*.pkl"))
        assert len(entries) == 3
        for path in entries:
            with open(path, "rb") as fh:
                pickle.load(fh)
        assert cache.info()["tmp_entries"] == 0
