"""Scenario runs (prefetch/memoization) and capacity-mode equivalence.

Covers the two new run families end-to-end through the RunSpec engine:
spec validation and content addressing, assist-on vs assist-off
behaviour, sampled-mode support, and — critically — the equivalence
guarantees: bandwidth-mode results carry no capacity payload and are
untouched by the new plumbing, and a capacity run whose budget covers
the whole footprint times identically to bandwidth mode.
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.harness.runner import (
    RunSpec,
    clear_caches,
    run_app,
    run_spec,
    scenario_spec,
)
from repro.harness.scenarios import (
    SCENARIO_KINDS,
    ScenarioSpec,
    build_scenario,
    collect_scenario_stats,
)
from repro.memory.hostlink import CapacityConfig
from repro.workloads import get_app
from repro.workloads.tracegen import TraceScale, footprint_extents

CONFIG = GPUConfig.small()
SCALE = TraceScale(work=0.25, waves=0.25)


def _footprint_bytes(app):
    extents = footprint_extents(get_app(app), CONFIG, SCALE)
    return sum(lines for _, lines in extents) * CONFIG.line_size


class TestScenarioSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            ScenarioSpec(kind="teleport")

    @pytest.mark.parametrize("knobs", [
        {"redundancy": -0.1},
        {"redundancy": 1.5},
        {"distance": 0},
        {"degree": 0},
        {"region_len": 0},
    ])
    def test_rejects_bad_knobs(self, knobs):
        with pytest.raises(ValueError):
            ScenarioSpec(kind="prefetch", **knobs)

    def test_distinct_knobs_distinct_addresses(self):
        a = scenario_spec("prefetch", CONFIG, distance=1)
        b = scenario_spec("prefetch", CONFIG, distance=4)
        assert a.canonical() != b.canonical()

    def test_same_knobs_same_address(self):
        a = scenario_spec("memoization", CONFIG, redundancy=0.5)
        b = scenario_spec("memoization", CONFIG, redundancy=0.5)
        assert a.canonical() == b.canonical()

    def test_scenario_requires_baseline_design(self):
        spec = RunSpec(
            app="latency_stream",
            design=designs.caba("bdi"),
            config=CONFIG,
            scenario=ScenarioSpec(kind="prefetch"),
        )
        with pytest.raises(ValueError, match="baseline design"):
            run_spec(spec, use_cache=False)

    def test_assist_off_builds_no_factory(self):
        kernel, factory, controllers = build_scenario(
            ScenarioSpec(kind="prefetch", assist=False), CONFIG
        )
        assert factory is None
        assert controllers == []
        assert kernel.name == "latency_stream"


class TestScenarioRuns:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_assist_stats_populated(self, kind):
        clear_caches()
        run = run_spec(scenario_spec(kind, CONFIG), use_cache=False)
        assert run.scenario is not None
        assert run.scenario["kind"] == kind
        assert run.scenario["assist"] is True
        assert run.capacity is None
        if kind == "prefetch":
            assert run.scenario["prefetches_issued"] > 0
        else:
            assert run.scenario["lookups"] > 0
            assert 0.0 <= run.scenario["lut_hit_rate"] <= 1.0

    def test_prefetch_assist_beats_baseline(self):
        clear_caches()
        base = run_spec(
            scenario_spec("prefetch", CONFIG, assist=False),
            use_cache=False,
        )
        assisted = run_spec(
            scenario_spec("prefetch", CONFIG), use_cache=False
        )
        assert assisted.cycles < base.cycles
        assert base.scenario == {
            "kind": "prefetch", "assist": False,
            "l1_load_hits": base.scenario["l1_load_hits"],
        }

    def test_memoization_tracks_redundancy(self):
        clear_caches()
        low = run_spec(
            scenario_spec("memoization", CONFIG, redundancy=0.05),
            use_cache=False,
        )
        high = run_spec(
            scenario_spec("memoization", CONFIG, redundancy=0.95),
            use_cache=False,
        )
        assert high.scenario["lut_hit_rate"] > low.scenario["lut_hit_rate"]
        assert high.scenario["skipped_instrs"] > low.scenario["skipped_instrs"]
        assert high.cycles < low.cycles

    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_sampled_scenario_runs(self, kind):
        clear_caches()
        # Windows sized to the scenario kernels' short runs (~3k cycles).
        sample = SampleConfig(warmup=200, measure=800, skip=2000)
        exact = run_spec(scenario_spec(kind, CONFIG), use_cache=False)
        sampled = run_spec(
            scenario_spec(kind, CONFIG, sample=sample), use_cache=False
        )
        assert sampled.scenario is not None
        assert sampled.scenario["kind"] == kind
        # Sampling trades exactness for speed, but not by much.
        assert sampled.ipc == pytest.approx(exact.ipc, rel=0.2)

    def test_scenario_results_cache_round_trip(self):
        clear_caches()
        spec = scenario_spec("memoization", CONFIG, redundancy=0.75)
        first = run_spec(spec)
        again = run_spec(spec)
        assert again.scenario == first.scenario
        assert again.cycles == first.cycles

    def test_collect_stats_assist_off(self):
        scenario = ScenarioSpec(kind="memoization", assist=False)
        assert collect_scenario_stats(scenario, []) == {
            "kind": "memoization", "assist": False,
        }


class TestCapacityEquivalence:
    def test_bandwidth_mode_carries_no_capacity_payload(self):
        clear_caches()
        run = run_app("PVC", designs.base(), CONFIG, scale=SCALE,
                      use_cache=False)
        assert run.capacity is None
        assert "host" not in run.dram_bursts

    def test_generous_budget_times_like_bandwidth_mode(self):
        """Capacity mode with no spills must not perturb timing."""
        clear_caches()
        bandwidth = run_app("PVC", designs.base(), CONFIG, scale=SCALE,
                            use_cache=False)
        clear_caches()
        roomy = run_app(
            "PVC", designs.base(), CONFIG, scale=SCALE, use_cache=False,
            capacity=CapacityConfig(
                device_bytes=10 * _footprint_bytes("PVC")
            ),
        )
        assert roomy.capacity["spill_lines"] == 0
        assert roomy.capacity["host_bursts"] == 0
        assert roomy.cycles == bandwidth.cycles
        assert roomy.ipc == bandwidth.ipc
        assert roomy.slot_breakdown == bandwidth.slot_breakdown

    def test_tight_budget_spills_and_slows(self):
        clear_caches()
        footprint = _footprint_bytes("PVC")
        bandwidth = run_app("PVC", designs.base(), CONFIG, scale=SCALE,
                            use_cache=False)
        clear_caches()
        tight = run_app(
            "PVC", designs.base(), CONFIG, scale=SCALE, use_cache=False,
            capacity=CapacityConfig(device_bytes=footprint // 4),
        )
        assert tight.capacity["spill_lines"] > 0
        assert tight.capacity["host_bursts"] > 0
        assert tight.capacity["host_bus_utilization"] > 0.0
        assert tight.cycles > bandwidth.cycles

    def test_compression_recovers_capacity(self):
        """CABA-BDI fits more of the footprint on-device than base."""
        clear_caches()
        budget = CapacityConfig(device_bytes=_footprint_bytes("PVC") // 2)
        base = run_app("PVC", designs.base(), CONFIG, scale=SCALE,
                       use_cache=False, capacity=budget)
        caba = run_app("PVC", designs.caba("bdi"), CONFIG, scale=SCALE,
                       use_cache=False, capacity=budget)
        assert caba.capacity["spill_lines"] < base.capacity["spill_lines"]
        assert (caba.capacity["effective_capacity_ratio"]
                > base.capacity["effective_capacity_ratio"])

    def test_capacity_in_content_address(self):
        plain = RunSpec("PVC", designs.base(), CONFIG, scale=SCALE)
        capped = RunSpec(
            "PVC", designs.base(), CONFIG, scale=SCALE,
            capacity=CapacityConfig(device_bytes=1 << 20),
        )
        assert plain.canonical() != capped.canonical()
