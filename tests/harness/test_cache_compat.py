"""Compatibility and robustness tests for the persistent run cache.

``repro cache info`` must work on whatever it finds on disk: cache
directories written before the planes/traces layout existed, leftover
temp files from killed workers, and plain garbage a user dropped in the
directory. It must also report trace artifacts, and ``put`` must honour
its overwrite contract (traced recomputes upgrade untraced entries).
"""

import pickle

import pytest

from repro.cli import main
from repro.harness.cache import RunCache


@pytest.fixture
def cache(tmp_path):
    return RunCache(root=tmp_path / "cache", stamp="stampA")


class TestInfoTolerance:
    def test_empty_root(self, cache):
        info = cache.info()
        assert info["entries"] == 0
        assert info["trace_entries"] == 0

    def test_pre_planes_layout(self, cache):
        """Old caches stored run pickles without planes/ or traces/
        subdirectories — and the oldest stored them directly in root."""
        legacy_stamp = cache.root / "oldstamp"
        legacy_stamp.mkdir(parents=True)
        (legacy_stamp / ("a" * 64)).with_suffix(".pkl").write_bytes(
            pickle.dumps({"legacy": True})
        )
        (cache.root / "rootlevel.pkl").write_bytes(pickle.dumps(1))
        info = cache.info()
        assert info["entries"] == 0
        assert info["stale_entries"] == 2
        assert info["trace_entries"] == 0

    def test_unexpected_files_are_ignored_not_fatal(self, cache):
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "leftover.tmp").write_bytes(b"partial write")
        (cache.root / "README.txt").write_text("hands off")
        (stamp_dir / "nested").mkdir()
        info = cache.info()
        assert info["entries"] == 0
        assert info["stale_entries"] == 0

    def test_counts_trace_artifacts(self, cache):
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "PVC-CABA-BDI.json").write_text("{}\n")
        (traces / "PVC-CABA-BDI.csv").write_text("kind,name\n")
        stale = cache.root / "oldstamp" / "traces"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}\n")
        info = cache.info()
        assert info["trace_entries"] == 2
        assert info["stale_trace_entries"] == 1
        assert info["trace_bytes"] > 0

    def test_cli_cache_info_reports_traces(self, cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "t.json").write_text("{}\n")
        monkeypatch.setattr("repro.harness.cache.version_stamp",
                            lambda: cache.stamp)
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "trace files   : 1" in out
        assert "trace size" in out


class TestClear:
    def test_clear_removes_traces_too(self, cache):
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "t.json").write_text("{}\n")
        stamp_dir = cache.root / cache.stamp
        (stamp_dir / "run.pkl").write_bytes(pickle.dumps(1))
        assert cache.clear() == 2
        assert not list(cache.root.rglob("*"))


class TestPutOverwrite:
    class _Spec:
        def canonical(self):
            return "spec"

    class _Result:
        raw = None

        def __init__(self, tag):
            self.tag = tag

    def test_default_put_keeps_existing_entry(self, cache):
        spec = self._Spec()
        cache.put(spec, self._Result("first"))
        cache.put(spec, self._Result("second"))
        assert cache.get(spec).tag == "first"

    def test_overwrite_replaces_entry(self, cache):
        spec = self._Spec()
        cache.put(spec, self._Result("first"))
        cache.put(spec, self._Result("upgraded"), overwrite=True)
        assert cache.get(spec).tag == "upgraded"
