"""Compatibility and robustness tests for the persistent run cache.

``repro cache info`` must work on whatever it finds on disk: cache
directories written before the planes/traces layout existed, leftover
temp files from killed workers, and plain garbage a user dropped in the
directory. It must also report trace artifacts, and ``put`` must honour
its overwrite contract (traced recomputes upgrade untraced entries).
"""

import os
import pickle
import time

import pytest

from repro.cli import main
from repro.harness.cache import RunCache, compute_stamp


@pytest.fixture
def cache(tmp_path):
    return RunCache(root=tmp_path / "cache", stamp="stampA")


class TestInfoTolerance:
    def test_empty_root(self, cache):
        info = cache.info()
        assert info["entries"] == 0
        assert info["trace_entries"] == 0

    def test_pre_planes_layout(self, cache):
        """Old caches stored run pickles without planes/ or traces/
        subdirectories — and the oldest stored them directly in root."""
        legacy_stamp = cache.root / "oldstamp"
        legacy_stamp.mkdir(parents=True)
        (legacy_stamp / ("a" * 64)).with_suffix(".pkl").write_bytes(
            pickle.dumps({"legacy": True})
        )
        (cache.root / "rootlevel.pkl").write_bytes(pickle.dumps(1))
        info = cache.info()
        assert info["entries"] == 0
        assert info["stale_entries"] == 2
        assert info["trace_entries"] == 0

    def test_unexpected_files_are_ignored_not_fatal(self, cache):
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "leftover.tmp").write_bytes(b"partial write")
        (cache.root / "README.txt").write_text("hands off")
        (stamp_dir / "nested").mkdir()
        info = cache.info()
        assert info["entries"] == 0
        assert info["stale_entries"] == 0
        assert info["tmp_entries"] == 1
        assert info["tmp_bytes"] > 0

    def test_tmp_files_never_count_as_plane_or_trace_entries(self, cache):
        """A killed worker's atomic-write leftover in planes/ or traces/
        is a tmp entry, not a plane/trace entry."""
        planes = cache.root / cache.stamp / "planes"
        planes.mkdir(parents=True)
        (planes / "tmpabc123.tmp").write_bytes(b"half a plane")
        (planes / ("b" * 64 + ".pkl")).write_bytes(pickle.dumps(1))
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "tmpdef456.tmp").write_bytes(b"half a trace")
        info = cache.info()
        assert info["plane_entries"] == 1
        assert info["trace_entries"] == 0
        assert info["tmp_entries"] == 2

    def test_counts_trace_artifacts(self, cache):
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "PVC-CABA-BDI.json").write_text("{}\n")
        (traces / "PVC-CABA-BDI.csv").write_text("kind,name\n")
        stale = cache.root / "oldstamp" / "traces"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}\n")
        info = cache.info()
        assert info["trace_entries"] == 2
        assert info["stale_trace_entries"] == 1
        assert info["trace_bytes"] > 0

    def test_cli_cache_info_reports_traces(self, cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "t.json").write_text("{}\n")
        monkeypatch.setattr("repro.harness.cache.version_stamp",
                            lambda: cache.stamp)
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "trace files   : 1" in out
        assert "trace size" in out


class TestClear:
    def test_clear_removes_traces_too(self, cache):
        traces = cache.trace_dir()
        traces.mkdir(parents=True)
        (traces / "t.json").write_text("{}\n")
        stamp_dir = cache.root / cache.stamp
        (stamp_dir / "run.pkl").write_bytes(pickle.dumps(1))
        assert cache.clear() == 2
        assert not list(cache.root.rglob("*"))

    def test_clear_removes_tmp_leftovers(self, cache):
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "tmpzzz.tmp").write_bytes(b"x")
        assert cache.clear() == 1
        assert not list(cache.root.rglob("*"))


class TestSweepTmp:
    def test_sweep_removes_only_tmp_files(self, cache):
        stamp_dir = cache.root / cache.stamp
        planes = stamp_dir / "planes"
        planes.mkdir(parents=True)
        (stamp_dir / "run.pkl").write_bytes(pickle.dumps(1))
        (stamp_dir / "tmpaaa.tmp").write_bytes(b"x")
        (planes / "tmpbbb.tmp").write_bytes(b"y")
        stale = cache.root / "oldstamp"
        stale.mkdir()
        (stale / "tmpccc.tmp").write_bytes(b"z")
        assert cache.sweep_tmp(max_age=0.0) == 3
        assert (stamp_dir / "run.pkl").exists()
        assert cache.info()["tmp_entries"] == 0

    def test_sweep_skips_young_tmp_files_by_default(self, cache):
        """The race regression: a just-created .tmp is an atomic write
        a live worker is about to os.replace — the default sweep must
        leave it alone instead of eating the write."""
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        young = stamp_dir / "tmpinflight.tmp"
        young.write_bytes(b"mid-write")
        assert cache.sweep_tmp() == 0
        assert young.exists()

    def test_sweep_removes_tmp_files_older_than_threshold(self, cache):
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        old = stamp_dir / "tmporphan.tmp"
        old.write_bytes(b"orphaned")
        ancient = time.time() - 7200.0
        os.utime(old, (ancient, ancient))
        young = stamp_dir / "tmpfresh.tmp"
        young.write_bytes(b"mid-write")
        assert cache.sweep_tmp() == 1
        assert not old.exists()
        assert young.exists()

    def test_info_reports_young_tmp_entries(self, cache):
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        old = stamp_dir / "tmporphan.tmp"
        old.write_bytes(b"orphaned")
        ancient = time.time() - 7200.0
        os.utime(old, (ancient, ancient))
        (stamp_dir / "tmpfresh.tmp").write_bytes(b"mid-write")
        info = cache.info()
        assert info["tmp_entries"] == 2
        assert info["tmp_young_entries"] == 1
        assert info["tmp_age_threshold"] == pytest.approx(3600.0)

    def test_tmp_age_env_knob(self, cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_TMP_AGE", "0")
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "tmpq.tmp").write_bytes(b"x")
        assert cache.sweep_tmp() == 1

    def test_sweep_on_missing_root_is_zero(self, tmp_path):
        assert RunCache(root=tmp_path / "nope", stamp="s").sweep_tmp() == 0

    def test_cli_cache_sweep(self, cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        monkeypatch.setenv("REPRO_CACHE_TMP_AGE", "0")
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "tmpq.tmp").write_bytes(b"x")
        assert main(["cache", "sweep"]) == 0
        assert "swept 1" in capsys.readouterr().out
        assert not (stamp_dir / "tmpq.tmp").exists()

    def test_cli_cache_sweep_reports_kept_young_files(self, cache,
                                                      monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "tmpq.tmp").write_bytes(b"x")
        assert main(["cache", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "swept 0" in out
        assert "kept 1 young" in out
        assert (stamp_dir / "tmpq.tmp").exists()

    def test_cli_cache_info_reports_tmp(self, cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.root))
        stamp_dir = cache.root / cache.stamp
        stamp_dir.mkdir(parents=True)
        (stamp_dir / "tmpq.tmp").write_bytes(b"x")
        assert main(["cache", "info"]) == 0
        assert "tmp leftovers : 1" in capsys.readouterr().out


class TestVersionStamp:
    """The stamp must hash package-relative paths: a module moved
    between subpackages with unchanged content is a code change."""

    @staticmethod
    def _tree(root, files):
        pkg = root / "pkg"
        for rel, content in files.items():
            path = pkg / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        return pkg

    def test_identical_trees_share_a_stamp(self, tmp_path):
        files = {"a/__init__.py": "", "a/mod.py": "X = 1\n"}
        one = self._tree(tmp_path / "one", files)
        two = self._tree(tmp_path / "two", files)
        assert compute_stamp(one) == compute_stamp(two)

    def test_moving_a_module_changes_the_stamp(self, tmp_path):
        common = {"a/__init__.py": "", "b/__init__.py": ""}
        one = self._tree(tmp_path / "one", {**common, "a/mod.py": "X = 1\n"})
        two = self._tree(tmp_path / "two", {**common, "b/mod.py": "X = 1\n"})
        assert compute_stamp(one) != compute_stamp(two)

    def test_content_change_changes_the_stamp(self, tmp_path):
        one = self._tree(tmp_path / "one", {"a/mod.py": "X = 1\n"})
        two = self._tree(tmp_path / "two", {"a/mod.py": "X = 2\n"})
        assert compute_stamp(one) != compute_stamp(two)


class TestPutOverwrite:
    class _Spec:
        def canonical(self):
            return "spec"

    class _Result:
        raw = None

        def __init__(self, tag):
            self.tag = tag

    def test_default_put_keeps_existing_entry(self, cache):
        spec = self._Spec()
        cache.put(spec, self._Result("first"))
        cache.put(spec, self._Result("second"))
        assert cache.get(spec).tag == "first"

    def test_overwrite_replaces_entry(self, cache):
        spec = self._Spec()
        cache.put(spec, self._Result("first"))
        cache.put(spec, self._Result("upgraded"), overwrite=True)
        assert cache.get(spec).tag == "upgraded"
