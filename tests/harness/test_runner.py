"""Tests for the experiment runner."""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import (
    build_image,
    clear_caches,
    geomean,
    run_app,
    speedup,
)
from repro.workloads.apps import get_app


class TestRunApp:
    def test_returns_complete_metrics(self):
        run = run_app("PVC", designs.base())
        assert run.app == "PVC"
        assert run.design == "Base"
        assert run.cycles > 0
        assert run.ipc > 0
        assert 0 <= run.bandwidth_utilization <= 1
        assert run.energy.total > 0
        assert not run.truncated

    def test_caching_returns_same_object(self):
        a = run_app("PVC", designs.base())
        b = run_app("PVC", designs.base())
        assert a is b

    def test_cache_bypass(self):
        a = run_app("PVC", designs.base())
        b = run_app("PVC", designs.base(), use_cache=False)
        assert a is not b
        assert a.cycles == b.cycles  # still deterministic

    def test_clear_caches(self):
        a = run_app("PVC", designs.base())
        clear_caches()
        b = run_app("PVC", designs.base())
        assert a is not b

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            run_app("quake", designs.base())

    def test_profile_object_accepted(self):
        run = run_app(get_app("PVC"), designs.base())
        assert run.app == "PVC"


class TestProfilingGate:
    def test_incompressible_app_runs_baseline_path(self):
        """Section 4.3.1: compression is disabled for apps that would
        not benefit; they must see zero degradation."""
        base = run_app("SCP", designs.base())
        caba = run_app("SCP", designs.caba())
        assert caba.cycles == base.cycles
        assert caba.assist_instructions == 0
        assert caba.compression_ratio == 1.0

    def test_compressible_app_gets_assist_warps(self):
        caba = run_app("PVC", designs.caba())
        assert caba.assist_instructions > 0
        assert caba.compression_ratio > 1.0


class TestImageConstruction:
    def test_base_image_uncompressed(self):
        image = build_image(get_app("PVC"), designs.base(), GPUConfig.small())
        assert not image.compression_enabled

    def test_caba_image_uses_algorithm(self):
        image = build_image(get_app("PVC"), designs.caba(), GPUConfig.small())
        assert image.algorithm is not None
        assert image.algorithm.name == "bdi"

    def test_incompressible_app_gets_plain_image(self):
        image = build_image(get_app("SCP"), designs.caba(), GPUConfig.small())
        assert not image.compression_enabled


class TestHelpers:
    def test_speedup(self):
        base = run_app("PVC", designs.base())
        fast = run_app("PVC", designs.ideal())
        assert speedup(fast, base) == pytest.approx(fast.ipc / base.ipc)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_order_invariant(self):
        assert geomean([2.0, 8.0, 1.0]) == pytest.approx(geomean([8.0, 1.0, 2.0]))
