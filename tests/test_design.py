"""Unit tests for design-point definitions."""

import pytest

from repro import design as designs
from repro.design import DesignPoint


class TestFactories:
    def test_base(self):
        d = designs.base()
        assert not d.compression_enabled
        assert not d.uses_assist_warps
        assert not d.needs_metadata

    def test_hw_mem(self):
        d = designs.hw_mem()
        assert d.compress_dram and not d.compress_interconnect
        assert d.decompress_at == "mc"
        assert d.needs_metadata

    def test_hw(self):
        d = designs.hw()
        assert d.compress_dram and d.compress_interconnect
        assert d.decompress_at == "core_hw"
        assert not d.uses_assist_warps

    def test_caba(self):
        d = designs.caba()
        assert d.uses_assist_warps
        assert d.decompress_at == "core_assist"
        assert d.compress_at == "core_assist"

    def test_ideal(self):
        d = designs.ideal()
        assert d.ideal
        assert not d.needs_metadata  # zero-overhead metadata path

    def test_names_follow_algorithm(self):
        assert designs.caba("fpc").name == "CABA-FPC"
        assert designs.caba("cpack").name == "CABA-CPack"
        assert designs.caba("bestofall").name == "CABA-BestOfAll"

    def test_figure7_designs_order(self):
        names = [d.name for d in designs.figure7_designs()]
        assert names == [
            "Base", "HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI"
        ]

    def test_cache_variants(self):
        d = designs.caba_cache("l1", 2)
        assert d.l1_tag_mult == 2 and d.l2_tag_mult == 1
        assert d.l1_compressed
        d = designs.caba_cache("l2", 4)
        assert d.l2_tag_mult == 4 and d.l1_tag_mult == 1
        assert not d.l1_compressed

    def test_bad_cache_level(self):
        with pytest.raises(ValueError):
            designs.caba_cache("l3", 2)


class TestValidation:
    def test_compression_requires_algorithm(self):
        with pytest.raises(ValueError):
            DesignPoint(name="broken", compress_dram=True)

    def test_bad_decompress_site(self):
        with pytest.raises(ValueError):
            DesignPoint(name="broken", decompress_at="cloud")

    def test_bad_compress_site(self):
        with pytest.raises(ValueError):
            DesignPoint(name="broken", compress_at="cloud")

    def test_bad_tag_mult(self):
        with pytest.raises(ValueError):
            DesignPoint(name="broken", l1_tag_mult=0)

    def test_hashable_for_memoization(self):
        assert hash(designs.caba()) == hash(designs.caba())


class TestSelectiveL2Compression:
    """Section 6.5's uncompressed-L2 option."""

    def test_factory(self):
        d = designs.caba_l2_uncompressed()
        assert d.l2_store_uncompressed
        assert d.compress_dram
        assert d.name == "CABA-BDI-L2U"

    def test_l2_hits_need_no_assist(self):
        from repro.gpu.config import GPUConfig
        from repro.harness.runner import run_app

        base = run_app("RAY", designs.base())
        l2u = run_app("RAY", designs.caba_l2_uncompressed())
        # The option must be at least competitive on an L2-resident app.
        assert l2u.ipc >= 0.95 * base.ipc
