"""End-to-end reproduction shape tests.

These assert the *qualitative* results of the paper's evaluation on a
small representative workload subset at test scale: who wins, in what
order, and in which direction the metrics move. Absolute magnitudes are
checked loosely (the full-scale numbers live in EXPERIMENTS.md).
"""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import geomean, run_app

#: Bandwidth-sensitive, compressible apps with distinct characters:
#: BDI-friendly streaming (PVC, MM), irregular/interconnect (bfs),
#: L2-resident (RAY).
APPS = ("PVC", "MM", "bfs", "RAY")


@pytest.fixture(scope="module")
def five_design_runs():
    points = designs.figure7_designs()
    return {
        app: {p.name: run_app(app, p) for p in points} for app in APPS
    }


def geomean_speedup(runs, design):
    return geomean(
        runs[app][design].ipc / runs[app]["Base"].ipc for app in APPS
    )


class TestFigure7Shapes:
    def test_all_compressed_designs_beat_base(self, five_design_runs):
        for design in ("HW-BDI-Mem", "HW-BDI", "CABA-BDI", "Ideal-BDI"):
            assert geomean_speedup(five_design_runs, design) > 1.05, design

    def test_caba_close_to_ideal(self, five_design_runs):
        """Paper: CABA-BDI within ~3% of Ideal-BDI on average."""
        caba = geomean_speedup(five_design_runs, "CABA-BDI")
        ideal = geomean_speedup(five_design_runs, "Ideal-BDI")
        assert caba >= 0.85 * ideal

    def test_caba_beats_memory_only_compression(self, five_design_runs):
        """Paper: CABA-BDI ~10% over HW-BDI-Mem (interconnect benefit)."""
        caba = geomean_speedup(five_design_runs, "CABA-BDI")
        hw_mem = geomean_speedup(five_design_runs, "HW-BDI-Mem")
        assert caba > hw_mem

    def test_caba_near_hw_design(self, five_design_runs):
        """Paper: CABA within ~2% of the dedicated-hardware design."""
        caba = geomean_speedup(five_design_runs, "CABA-BDI")
        hw = geomean_speedup(five_design_runs, "HW-BDI")
        assert abs(caba - hw) / hw < 0.15

    def test_meaningful_average_speedup(self, five_design_runs):
        """Paper: +41.7% average on the compressible pool."""
        caba = geomean_speedup(five_design_runs, "CABA-BDI")
        assert caba > 1.15


class TestFigure8Shapes:
    def test_compression_reduces_bandwidth_utilization(self, five_design_runs):
        for app in APPS:
            base = five_design_runs[app]["Base"].bandwidth_utilization
            caba = five_design_runs[app]["CABA-BDI"].bandwidth_utilization
            assert caba < base, app

    def test_bandwidth_reduction_substantial(self, five_design_runs):
        """Paper: average utilization falls (53.6% -> 35.6% at paper
        scale). The scaled test pool is more uniformly saturated, so the
        drop is smaller here but must be clearly present; strongly
        compressible apps must shed >= 10% of their utilization."""
        base_avg = sum(
            five_design_runs[a]["Base"].bandwidth_utilization for a in APPS
        ) / len(APPS)
        caba_avg = sum(
            five_design_runs[a]["CABA-BDI"].bandwidth_utilization
            for a in APPS
        ) / len(APPS)
        assert caba_avg < base_avg - 0.02
        mm_base = five_design_runs["MM"]["Base"].bandwidth_utilization
        mm_caba = five_design_runs["MM"]["CABA-BDI"].bandwidth_utilization
        assert mm_caba < 0.9 * mm_base


class TestFigure9Shapes:
    def test_caba_saves_energy(self, five_design_runs):
        for app in ("PVC", "MM"):
            base = five_design_runs[app]["Base"].energy.total
            caba = five_design_runs[app]["CABA-BDI"].energy.total
            assert caba < base, app

    def test_energy_ordering_vs_hw_and_ideal(self, five_design_runs):
        """Paper: CABA a few percent above HW-BDI and Ideal-BDI."""
        caba = sum(
            five_design_runs[a]["CABA-BDI"].energy.total for a in APPS
        )
        ideal = sum(
            five_design_runs[a]["Ideal-BDI"].energy.total for a in APPS
        )
        assert caba >= ideal
        assert caba <= 1.5 * ideal

    def test_dram_power_drops(self, five_design_runs):
        base = sum(
            five_design_runs[a]["Base"].energy.dram_dynamic for a in APPS
        )
        caba = sum(
            five_design_runs[a]["CABA-BDI"].energy.dram_dynamic for a in APPS
        )
        assert caba < 0.75 * base


class TestComputeBoundApps:
    def test_compute_bound_apps_unaffected(self):
        """Paper: apps without compressible bandwidth see no change."""
        for app in ("dmr", "NQU"):
            base = run_app(app, designs.base())
            caba = run_app(app, designs.caba())
            assert caba.cycles == base.cycles, app

    def test_compute_bound_apps_ignore_bandwidth(self):
        """Figure 1: compute-bound apps barely react to 2x bandwidth."""
        config = GPUConfig.small()
        base = run_app("NQU", designs.base(), config)
        double = run_app(
            "NQU", designs.base(), config.with_bandwidth_scale(2.0)
        )
        assert abs(double.ipc - base.ipc) / base.ipc < 0.05

    def test_memory_bound_apps_track_bandwidth(self):
        config = GPUConfig.small()
        base = run_app("PVC", designs.base(), config)
        double = run_app(
            "PVC", designs.base(), config.with_bandwidth_scale(2.0)
        )
        assert double.ipc > 1.3 * base.ipc


class TestFigure12Shapes:
    def test_caba_outperforms_matching_baseline_at_every_bw(self):
        config = GPUConfig.small()
        for scale in (0.5, 1.0, 2.0):
            scaled = config.with_bandwidth_scale(scale)
            base = run_app("PVC", designs.base(), scaled)
            caba = run_app("PVC", designs.caba(), scaled)
            assert caba.ipc > base.ipc, scale

    def test_caba_roughly_doubles_effective_bandwidth(self):
        """Paper: 1x-CABA ~ 2x-Base."""
        config = GPUConfig.small()
        caba_1x = run_app("PVC", designs.caba(), config)
        base_2x = run_app(
            "PVC", designs.base(), config.with_bandwidth_scale(2.0)
        )
        assert caba_1x.ipc > 0.75 * base_2x.ipc


class TestMetadataCache:
    def test_md_hit_rate_high(self, five_design_runs):
        """Paper: 85% average hit rate, >99% for many apps."""
        rates = [
            five_design_runs[a]["CABA-BDI"].md_cache_hit_rate
            for a in APPS
            if five_design_runs[a]["CABA-BDI"].md_cache_hit_rate is not None
        ]
        assert rates
        assert sum(rates) / len(rates) > 0.75


class TestFigure10Shapes:
    def test_every_algorithm_helps(self):
        base = run_app("PVC", designs.base())
        for algo in ("bdi", "fpc", "cpack"):
            run = run_app("PVC", designs.caba(algo))
            assert run.ipc > base.ipc, algo

    def test_compression_ratio_reported(self):
        run = run_app("PVC", designs.caba("bdi"))
        assert run.compression_ratio > 1.4
