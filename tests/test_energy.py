"""Tests for the activity-based energy model."""

import pytest

from repro import design as designs, run_app
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.gpu.config import GPUConfig


class TestBreakdown:
    def test_total_sums_components(self):
        b = EnergyBreakdown(core_dynamic=1.0, l1=2.0, dram_dynamic=3.0,
                            static=4.0)
        assert b.total == 10.0

    def test_dram_power_share(self):
        b = EnergyBreakdown(core_dynamic=5.0, dram_dynamic=3.0,
                            dram_static=2.0)
        assert b.dram_power_share == 0.5

    def test_as_dict_keys(self):
        keys = set(EnergyBreakdown().as_dict())
        assert "total" in keys and "dram_dynamic" in keys


class TestModelOnRuns:
    def test_energy_positive_and_composed(self):
        run = run_app("PVC", designs.base())
        energy = run.energy
        assert energy.total > 0
        assert energy.dram_dynamic > 0
        assert energy.static > 0
        assert energy.compression == 0  # no compression in Base

    def test_hw_design_pays_compression_unit_energy(self):
        run = run_app("PVC", designs.hw())
        assert run.energy.compression > 0

    def test_ideal_pays_no_compression_energy(self):
        run = run_app("PVC", designs.ideal())
        assert run.energy.compression == 0
        assert run.energy.metadata == 0

    def test_caba_charges_through_instructions(self):
        """CABA's overhead appears as extra core energy, not as a
        dedicated-unit charge."""
        run = run_app("PVC", designs.caba())
        assert run.energy.compression == 0
        assert run.assist_instructions > 0

    def test_compression_reduces_dram_energy(self):
        base = run_app("PVC", designs.base())
        caba = run_app("PVC", designs.caba())
        assert caba.energy.dram_dynamic < base.energy.dram_dynamic

    def test_compression_reduces_total_energy(self):
        """Figure 9's headline: less traffic + less runtime = less energy."""
        base = run_app("PVC", designs.base())
        caba = run_app("PVC", designs.caba())
        assert caba.energy.total < base.energy.total

    def test_caba_energy_close_to_but_above_ideal(self):
        caba = run_app("PVC", designs.caba())
        ideal = run_app("PVC", designs.ideal())
        assert caba.energy.total >= ideal.energy.total

    def test_static_energy_scales_with_time(self):
        base = run_app("PVC", designs.base())
        caba = run_app("PVC", designs.caba())
        # CABA runs fewer cycles here, so less leakage.
        if caba.cycles < base.cycles:
            assert caba.energy.static < base.energy.static


class TestParams:
    def test_custom_params_change_results(self):
        run = run_app("PVC", designs.base(), keep_raw=True)
        cheap = EnergyModel(EnergyParams(dram_burst_pj=1.0))
        expensive = EnergyModel(EnergyParams(dram_burst_pj=5000.0))
        config = GPUConfig.small()
        from repro.design import base as base_design

        low = cheap.evaluate(run.raw, config, base_design())
        high = expensive.evaluate(run.raw, config, base_design())
        assert high.dram_dynamic > low.dram_dynamic
