"""Unit tests for Frequent Pattern Compression."""

import pytest

from repro.compression import CompressionError, FpcCompressor
from repro.compression.fpc import FPC_REDUCED_PATTERNS, MAX_ZERO_RUN


def words_to_line(words, line_size=64):
    data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
    assert len(data) == line_size
    return data


class TestPatterns:
    def test_zero_line_is_tiny(self):
        fpc = FpcCompressor(line_size=128)
        line = fpc.compress(bytes(128))
        # 32 zero words -> 4 max-length runs of 8 -> 4 * 6 bits = 3 bytes.
        assert line.size_bytes == 3
        assert fpc.decompress(line) == bytes(128)

    def test_zero_run_capped(self):
        fpc = FpcCompressor(line_size=64)
        line = fpc.compress(bytes(64))
        runs = [s for s in line.state if s.pattern.name == "zero_run"]
        assert all(s.payload <= MAX_ZERO_RUN for s in runs)
        assert sum(s.payload for s in runs) == 16

    def test_small_signed_values(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([1, -1, 7, -8] * 4)
        line = fpc.compress(data)
        assert all(s.pattern.name == "signed_4bit" for s in line.state)
        assert fpc.decompress(line) == data

    def test_byte_values(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([100, -100, 127, -128] * 4)
        line = fpc.compress(data)
        assert all(s.pattern.name == "signed_1byte" for s in line.state)
        assert fpc.decompress(line) == data

    def test_halfword_values(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([30000, -30000, 1000, -1000] * 4)
        line = fpc.compress(data)
        assert all(s.pattern.name == "signed_halfword" for s in line.state)
        assert fpc.decompress(line) == data

    def test_zero_padded_halfword(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([0x7FFF0000, 0x12340000] * 8)
        line = fpc.compress(data)
        assert all(s.pattern.name == "zero_padded_halfword" for s in line.state)
        assert fpc.decompress(line) == data

    def test_two_signed_bytes(self):
        fpc = FpcCompressor(line_size=64)
        # Each halfword is a sign-extended byte: 0x0042 and 0xFF80.
        data = words_to_line([0xFF800042] * 16)
        line = fpc.compress(data)
        assert all(s.pattern.name == "two_signed_bytes" for s in line.state)
        assert fpc.decompress(line) == data

    def test_repeated_bytes(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([0xABABABAB] * 16)
        line = fpc.compress(data)
        assert all(s.pattern.name == "repeated_bytes" for s in line.state)
        assert fpc.decompress(line) == data

    def test_incompressible_words_stay_verbatim(self):
        import random

        rng = random.Random(3)
        words = [rng.getrandbits(32) | 0x01020304 for _ in range(16)]
        # Force words outside every pattern by giving distinct high bytes.
        words = [(i + 9) << 24 | 0x654321 for i in range(16)]
        fpc = FpcCompressor(line_size=64)
        data = words_to_line(words)
        line = fpc.compress(data)
        assert fpc.decompress(line) == data


class TestSizeAccounting:
    def test_size_is_bits_rounded_up(self):
        fpc = FpcCompressor(line_size=64)
        data = words_to_line([1] * 16)  # 16 signed_4bit symbols
        line = fpc.compress(data)
        assert line.size_bytes == -(-16 * (3 + 4) // 8)

    def test_incompressible_line_reports_full_size(self):
        import random

        rng = random.Random(11)
        data = bytes(rng.getrandbits(8) | 0x80 for _ in range(64))
        fpc = FpcCompressor(line_size=64)
        line = fpc.compress(data)
        assert line.size_bytes <= 64
        assert fpc.decompress(line) == data


class TestReducedPatternSet:
    def test_reduced_set_still_round_trips(self):
        fpc = FpcCompressor(line_size=64, patterns=FPC_REDUCED_PATTERNS)
        data = words_to_line([0, 5, 300, 0x7FFF0000, 0xABABABAB] * 3 + [9])
        line = fpc.compress(data)
        assert fpc.decompress(line) == data

    def test_reduced_set_never_beats_full_set(self):
        full = FpcCompressor(line_size=64)
        reduced = FpcCompressor(line_size=64, patterns=FPC_REDUCED_PATTERNS)
        data = words_to_line([1, -2, 0x00340000, 0, 0, 0, 7, -8] * 2)
        assert reduced.compress(data).size_bytes >= full.compress(data).size_bytes


class TestValidation:
    def test_wrong_size_rejected(self):
        with pytest.raises(CompressionError):
            FpcCompressor(line_size=64).compress(bytes(32))
