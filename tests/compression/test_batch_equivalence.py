"""Differential tests: batch size tables vs. scalar ``compress()``.

The batch kernels (``size_table`` / ``compress_lines``) must produce
exactly the scalar reference results for every algorithm, on both the
pure-Python backend and the numpy backend, across randomized lines from
real app mixtures, all-zero lines, narrow-delta lines and adversarial
boundary cases.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.compression import ALGORITHMS, make_algorithm
from repro.compression import batch
from repro.compression.base import CompressionError
from repro.workloads.apps import APPLICATIONS
from repro.workloads.data_patterns import make_line_generator

LINE_SIZE = 128
N_WORDS = LINE_SIZE // 4


def _w(values):
    return b"".join(struct.pack("<I", v & 0xFFFFFFFF) for v in values)


def _line_families() -> list[bytes]:
    rng = random.Random(20150613)
    lines: list[bytes] = []

    # Randomized lines from real application data mixtures.
    for app in ("PVC", "MUM", "bh", "MM", "CONS", "SCAN", "TRA"):
        profile = APPLICATIONS.get(app)
        if profile is None:
            continue
        gen = make_line_generator(profile.data, LINE_SIZE, profile.seed)
        lines += [gen(i) for i in range(80)]

    # All-zero and repeated lines (BDI special encodings).
    lines.append(bytes(LINE_SIZE))
    lines.append(bytes([7]) * LINE_SIZE)
    lines.append(b"\x01\x02\x03\x04\x05\x06\x07\x08" * (LINE_SIZE // 8))

    # Narrow-delta lines (classic BDI material).
    base = 0x12345678
    lines.append(_w([base + d for d in range(N_WORDS)]))
    lines.append(_w([base + rng.randrange(-120, 120) for _ in range(N_WORDS)]))

    # Adversarial boundary cases: values at the exact signed-delta
    # bounds, wraparound candidates, FPC pattern edges, zero runs at
    # and around the MAX_ZERO_RUN boundary, dictionary churn for C-Pack.
    lines.append(_w([0x7F, 0x80, 0x81, 0xFF, 0x100, 0x7FFF, 0x8000,
                     0xFFFF, 0x10000, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
                     0xFFFF8000, 0xFFFF7FFF, 0xFFFFFF80, 0xFFFFFF7F]
                    * (N_WORDS // 16)))
    lines.append(_w([0x80000000] * N_WORDS))
    lines.append(_w([0, 0x80000000] * (N_WORDS // 2)))
    for run in (7, 8, 9, 16, 17, N_WORDS - 1):
        lines.append(_w([0] * run + [5] * (N_WORDS - run)))
        lines.append(_w([3] + [0] * run + [9] * (N_WORDS - run - 1)))
    lines.append(_w(list(range(0x1000, 0x1000 + N_WORDS))))  # >16 distinct
    lines.append(_w([0x11223344 + (i % 20) for i in range(N_WORDS)]))
    lines.append(_w([(i % 3) * 0x01010101 for i in range(N_WORDS)]))

    # Pure noise.
    for _ in range(40):
        lines.append(bytes(rng.getrandbits(8) for _ in range(LINE_SIZE)))
    return lines


LINES = _line_families()


@pytest.fixture(params=["pure", "numpy"])
def backend(request, monkeypatch):
    """Run the test body under each batch backend."""
    if request.param == "pure":
        monkeypatch.setattr(batch, "np", None)
    elif batch.np is None:
        pytest.skip("numpy not installed")
    return request.param


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_size_table_matches_scalar(name, backend):
    algo = make_algorithm(name, LINE_SIZE)
    scalar = [
        (line.size_bytes, line.encoding)
        for line in map(algo.compress, LINES)
    ]
    assert algo.size_table(LINES) == scalar


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_compress_lines_matches_scalar(name, backend):
    algo = make_algorithm(name, LINE_SIZE)
    batched = algo.compress_lines(LINES[:32])
    for data, line in zip(LINES[:32], batched):
        scalar = algo.compress(data)
        assert (line.size_bytes, line.encoding) == (
            scalar.size_bytes, scalar.encoding,
        )
        assert algo.decompress(line) == data


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_empty_batch(name, backend):
    algo = make_algorithm(name, LINE_SIZE)
    assert algo.size_table([]) == []
    assert algo.compress_lines([]) == []


def test_batch_validation_catches_bad_line():
    algo = make_algorithm("bdi", LINE_SIZE)
    bad = [bytes(LINE_SIZE), bytes(LINE_SIZE - 1)]
    with pytest.raises(CompressionError, match="line 1"):
        algo.size_table(bad)
    with pytest.raises(CompressionError, match="line 1"):
        algo.compress_lines(bad)


def test_fpc_reduced_pattern_set(backend):
    """The batch kernels must honor a restricted pattern set too."""
    from repro.compression.fpc import FPC_REDUCED_PATTERNS, FpcCompressor

    algo = FpcCompressor(LINE_SIZE, patterns=FPC_REDUCED_PATTERNS)
    scalar = [
        (line.size_bytes, line.encoding)
        for line in map(algo.compress, LINES)
    ]
    assert algo.size_table(LINES) == scalar


def test_fvc_trained_table(backend):
    """Batch kernels follow a trained (non-default) FVC table."""
    algo = make_algorithm("fvc", LINE_SIZE).train(LINES[:50])
    scalar = [
        (line.size_bytes, line.encoding)
        for line in map(algo.compress, LINES)
    ]
    assert algo.size_table(LINES) == scalar
