"""Unit tests for Frequent Value Compression."""

import pytest

from repro.compression import CompressionError, FvcCompressor
from repro.compression.fvc import DEFAULT_TABLE


def words_to_line(words, line_size=64):
    data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
    assert len(data) == line_size
    return data


class TestDefaultTable:
    def test_frequent_values_compress_hard(self):
        fvc = FvcCompressor(line_size=64)
        data = words_to_line([0, 1, 0xFFFFFFFF, 0] * 4)
        line = fvc.compress(data)
        # 16 words * (1 + 3) bits = 8 bytes.
        assert line.size_bytes == 8
        assert fvc.decompress(line) == data

    def test_infrequent_values_stay_verbatim(self):
        fvc = FvcCompressor(line_size=64)
        data = words_to_line([0xDEADBEE0 + i for i in range(16)])
        line = fvc.compress(data)
        # 16 * 33 bits = 66 bytes > 64 -> passthrough.
        assert line.encoding == "uncompressed"
        assert fvc.decompress(line) == data

    def test_mixed_line(self):
        fvc = FvcCompressor(line_size=64)
        data = words_to_line([0, 0xDEADBEEF] * 8)
        line = fvc.compress(data)
        assert line.is_compressed
        assert fvc.decompress(line) == data

    def test_index_width_tracks_table_size(self):
        assert FvcCompressor(table=[0, 1]).index_bits == 1
        assert FvcCompressor(table=list(range(8))).index_bits == 3
        assert FvcCompressor(table=list(range(16))).index_bits == 4


class TestTraining:
    def test_trained_table_captures_hot_values(self):
        fvc = FvcCompressor(line_size=64)
        hot = 0xCAFEBABE
        sample = [words_to_line([hot] * 16) for _ in range(4)]
        trained = fvc.train(sample)
        assert hot in trained.table
        line = trained.compress(words_to_line([hot] * 16))
        assert line.size_bytes <= 8
        assert trained.decompress(line) == words_to_line([hot] * 16)

    def test_training_beats_default_on_skewed_data(self):
        fvc = FvcCompressor(line_size=64)
        words = [0x11110000 + (i % 4) for i in range(16)]
        data = words_to_line(words)
        trained = fvc.train([data])
        assert trained.compress(data).size_bytes < fvc.compress(data).size_bytes

    def test_training_pads_small_vocabularies(self):
        fvc = FvcCompressor(line_size=64)
        trained = fvc.train([words_to_line([7] * 16)])
        assert len(trained.table) == len(fvc.table)
        assert len(set(trained.table)) == len(trained.table)

    def test_training_validates_line_size(self):
        with pytest.raises(CompressionError):
            FvcCompressor(line_size=64).train([bytes(32)])


class TestValidation:
    def test_empty_table_rejected(self):
        with pytest.raises(CompressionError):
            FvcCompressor(table=[])

    def test_duplicate_table_rejected(self):
        with pytest.raises(CompressionError):
            FvcCompressor(table=[1, 1])

    def test_default_table_is_distinct(self):
        assert len(set(DEFAULT_TABLE)) == len(DEFAULT_TABLE)
