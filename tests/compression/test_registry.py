"""Tests for the algorithm registry and shared base behaviours."""

import pytest

from repro.compression import (
    ALGORITHMS,
    CompressionError,
    bursts_for,
    make_algorithm,
)
from repro.compression.base import CompressedLine


class TestRegistry:
    def test_all_five_algorithms_registered(self):
        assert set(ALGORITHMS) == {"bdi", "fpc", "cpack", "fvc",
                                   "bestofall"}

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_make_algorithm(self, name):
        algo = make_algorithm(name, line_size=64)
        assert algo.name == name
        assert algo.line_size == 64

    def test_unknown_name(self):
        with pytest.raises(CompressionError):
            make_algorithm("gzip")

    def test_hw_latencies_ordered(self):
        """BDI is the fastest dedicated-hardware design; FPC and C-Pack
        pay more (Section 6.3's latency discussion)."""
        bdi = make_algorithm("bdi")
        fpc = make_algorithm("fpc")
        cpack = make_algorithm("cpack")
        assert bdi.hw_decompression_latency == 1
        assert bdi.hw_compression_latency == 5
        assert fpc.hw_decompression_latency > bdi.hw_decompression_latency
        assert cpack.hw_decompression_latency > bdi.hw_decompression_latency


class TestBursts:
    def test_bursts_for(self):
        assert bursts_for(1) == 1
        assert bursts_for(32) == 1
        assert bursts_for(33) == 2
        assert bursts_for(128) == 4

    def test_bad_size(self):
        with pytest.raises(CompressionError):
            bursts_for(0)

    def test_line_bursts_and_ratio(self):
        line = CompressedLine("bdi", "B8D1", size_bytes=17, line_size=64)
        assert line.bursts() == 1
        assert line.burst_ratio() == 2.0
        assert line.compression_ratio == pytest.approx(64 / 17)
        assert line.is_compressed

    def test_uncompressed_flag(self):
        line = CompressedLine("bdi", "uncompressed", 64, 64)
        assert not line.is_compressed


class TestLineSizeValidation:
    def test_bad_line_sizes(self):
        for bad in (0, -8, 12):
            with pytest.raises(CompressionError):
                make_algorithm("bdi", line_size=bad)
