"""Unit tests for C-Pack dictionary compression."""

import random

import pytest

from repro.compression import CompressionError, CPackCompressor
from repro.compression.cpack import DICTIONARY_ENTRIES, _PATTERN_BITS


def words_to_line(words, line_size=64):
    data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
    assert len(data) == line_size
    return data


class TestPatterns:
    def test_zero_line(self):
        cpack = CPackCompressor(line_size=128)
        line = cpack.compress(bytes(128))
        # 32 words * 2 bits = 8 bytes.
        assert line.size_bytes == 8
        assert cpack.decompress(line) == bytes(128)

    def test_full_dictionary_match(self):
        cpack = CPackCompressor(line_size=64)
        data = words_to_line([0xDEADBEEF] * 16)
        line = cpack.compress(data)
        patterns = [s.pattern for s in line.state]
        assert patterns[0] == "xxxx"
        assert all(p == "mmmm" for p in patterns[1:])
        assert cpack.decompress(line) == data

    def test_partial_match_high_three_bytes(self):
        cpack = CPackCompressor(line_size=64)
        words = [0xAABBCC00 + i for i in range(16)]
        data = words_to_line(words)
        line = cpack.compress(data)
        patterns = [s.pattern for s in line.state]
        assert patterns[0] == "xxxx"
        assert all(p == "mmmx" for p in patterns[1:])
        assert cpack.decompress(line) == data

    def test_partial_match_high_two_bytes(self):
        cpack = CPackCompressor(line_size=64)
        words = [0xAABB0000 + i * 0x1234 for i in range(1, 17)]
        data = words_to_line(words)
        line = cpack.compress(data)
        assert any(s.pattern == "mmxx" for s in line.state)
        assert cpack.decompress(line) == data

    def test_zzzx_single_byte_words(self):
        cpack = CPackCompressor(line_size=64)
        data = words_to_line(list(range(1, 17)))
        line = cpack.compress(data)
        assert all(s.pattern == "zzzx" for s in line.state)
        assert cpack.decompress(line) == data

    def test_dictionary_is_fifo_bounded(self):
        cpack = CPackCompressor(line_size=128)
        # 32 distinct verbatim words overflow the 16-entry dictionary.
        words = [(i + 1) * 0x01010000 + 0xAB for i in range(32)]
        data = words_to_line(words, line_size=128)
        line = cpack.compress(data)
        assert cpack.decompress(line) == data
        assert DICTIONARY_ENTRIES == 16


class TestSizeAccounting:
    def test_pattern_bit_widths_match_original_paper(self):
        assert _PATTERN_BITS == {
            "zzzz": 2,
            "xxxx": 34,
            "mmmm": 6,
            "mmxx": 24,
            "mmmx": 16,
            "zzzx": 12,
        }

    def test_all_verbatim_line_falls_back_uncompressed(self):
        rng = random.Random(5)
        words = [rng.getrandbits(32) | 0x80808080 for _ in range(16)]
        # Ensure no two words share their high bytes.
        words = [(0x10 + 7 * i) << 24 | (0x30 + 5 * i) << 16
                 | rng.getrandbits(16) | 0x0101 for i in range(16)]
        cpack = CPackCompressor(line_size=64)
        data = words_to_line(words)
        line = cpack.compress(data)
        # 16 * 34 bits = 68 bytes > 64 -> uncompressed passthrough.
        assert line.encoding == "uncompressed"
        assert line.size_bytes == 64
        assert cpack.decompress(line) == data


class TestValidation:
    def test_wrong_size_rejected(self):
        with pytest.raises(CompressionError):
            CPackCompressor(line_size=64).compress(bytes(63))
