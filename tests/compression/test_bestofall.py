"""Unit tests for the BestOfAll per-line oracle selector."""

import itertools

import pytest

from repro.compression import (
    BdiCompressor,
    BestOfAllCompressor,
    CompressionError,
    CPackCompressor,
    FpcCompressor,
)
from repro.compression.bestofall import (
    COMPONENT_PRIORITY,
    compose_size_tables,
)

# A line where FPC and C-Pack tie at 63 bytes (BDI fails at 64): the
# selector must break the tie by COMPONENT_PRIORITY, not by whatever
# order the caller listed the components in.
TIE_LINE = bytes.fromhex(
    "0001340009091a0e2e4e0000080000030b000201060047020c84010202cb0002"
    "070207010f0e030405cd290a050bf00401010000f60201000100000035010100"
)


class TestSelection:
    def test_picks_minimum_size(self):
        best = BestOfAllCompressor(line_size=64)
        data = bytes(64)
        line = best.compress(data)
        sizes = [c.compress(data).size_bytes for c in best.components]
        assert line.size_bytes == min(sizes)

    def test_encoding_names_winner(self):
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(bytes(64))
        assert line.encoding.split(":")[0] in ("bdi", "fpc", "cpack")

    def test_bdi_wins_on_low_dynamic_range(self):
        base = 0x11223344556600
        data = b"".join((base + i).to_bytes(8, "little") for i in range(8))
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(data)
        assert line.encoding.startswith("bdi:")

    def test_never_worse_than_any_component(self):
        import random

        rng = random.Random(42)
        best = BestOfAllCompressor(line_size=64)
        for _ in range(25):
            data = bytes(rng.getrandbits(8) >> rng.choice([0, 0, 4, 6])
                         for _ in range(64))
            line = best.compress(data)
            for component in best.components:
                assert line.size_bytes <= component.compress(data).size_bytes

    def test_round_trip(self):
        import random

        rng = random.Random(17)
        best = BestOfAllCompressor(line_size=128)
        for _ in range(25):
            data = bytes(rng.getrandbits(8) >> rng.choice([0, 4, 7])
                         for _ in range(128))
            assert best.decompress(best.compress(data)) == data


class TestTieBreaking:
    """Regressions: equal-size winners are chosen by COMPONENT_PRIORITY
    identically on the scalar, batch and plane-composition paths."""

    def test_tie_line_really_ties(self):
        sizes = {
            c.name: c.compress(TIE_LINE).size_bytes
            for c in BestOfAllCompressor(line_size=64).components
        }
        assert sizes["fpc"] == sizes["cpack"] < sizes["bdi"]

    def test_components_stored_in_priority_order(self):
        best = BestOfAllCompressor(
            line_size=64,
            components=[
                CPackCompressor(64), FpcCompressor(64), BdiCompressor(64),
            ],
        )
        assert [c.name for c in best.components] == ["bdi", "fpc", "cpack"]

    @pytest.mark.parametrize(
        "order", list(itertools.permutations(("bdi", "fpc", "cpack")))
    )
    def test_scalar_winner_ignores_constructor_order(self, order):
        makers = {
            "bdi": BdiCompressor, "fpc": FpcCompressor,
            "cpack": CPackCompressor,
        }
        best = BestOfAllCompressor(
            line_size=64, components=[makers[n](64) for n in order]
        )
        line = best.compress(TIE_LINE)
        assert line.encoding.startswith("fpc:")
        assert best.decompress(line) == TIE_LINE

    @pytest.mark.parametrize(
        "order", list(itertools.permutations(("bdi", "fpc", "cpack")))
    )
    def test_compose_winner_ignores_table_order(self, order):
        makers = {
            "bdi": BdiCompressor, "fpc": FpcCompressor,
            "cpack": CPackCompressor,
        }
        tables = [
            (name, makers[name](64)._size_table([TIE_LINE]))
            for name in order
        ]
        (size, encoding), = compose_size_tables(tables, 64)
        assert encoding.startswith("fpc:")
        assert size == 63

    def test_batch_matches_scalar_on_tie(self):
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(TIE_LINE)
        [(size, encoding)] = best.size_table([TIE_LINE])
        assert (size, encoding) == (line.size_bytes, line.encoding)

    def test_priority_covers_all_registered_components(self):
        assert set(COMPONENT_PRIORITY) >= {"bdi", "fpc", "cpack", "fvc"}


class TestValidation:
    def test_component_line_size_mismatch(self):
        with pytest.raises(CompressionError):
            BestOfAllCompressor(
                line_size=64, components=[BdiCompressor(line_size=128)]
            )

    def test_empty_components(self):
        with pytest.raises(CompressionError):
            BestOfAllCompressor(line_size=64, components=[])

    def test_custom_component_subset(self):
        best = BestOfAllCompressor(
            line_size=64,
            components=[FpcCompressor(64), CPackCompressor(64)],
        )
        line = best.compress(bytes(64))
        assert line.encoding.split(":")[0] in ("fpc", "cpack")


class TestIncompressibleLines:
    def test_uncompressed_result_uses_plain_encoding(self):
        """Regression: incompressible lines must not carry a component
        prefix ('bdi:uncompressed'); the memory system keys compression
        state off the plain 'uncompressed' tag."""
        import random

        rng = random.Random(99)
        data = bytes(rng.getrandbits(8) for _ in range(64))
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(data)
        if line.size_bytes == 64:
            assert line.encoding == "uncompressed"
            assert not line.is_compressed
        assert best.decompress(line) == data
