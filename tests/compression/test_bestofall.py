"""Unit tests for the BestOfAll per-line oracle selector."""

import pytest

from repro.compression import (
    BdiCompressor,
    BestOfAllCompressor,
    CompressionError,
    CPackCompressor,
    FpcCompressor,
)


class TestSelection:
    def test_picks_minimum_size(self):
        best = BestOfAllCompressor(line_size=64)
        data = bytes(64)
        line = best.compress(data)
        sizes = [c.compress(data).size_bytes for c in best.components]
        assert line.size_bytes == min(sizes)

    def test_encoding_names_winner(self):
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(bytes(64))
        assert line.encoding.split(":")[0] in ("bdi", "fpc", "cpack")

    def test_bdi_wins_on_low_dynamic_range(self):
        base = 0x11223344556600
        data = b"".join((base + i).to_bytes(8, "little") for i in range(8))
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(data)
        assert line.encoding.startswith("bdi:")

    def test_never_worse_than_any_component(self):
        import random

        rng = random.Random(42)
        best = BestOfAllCompressor(line_size=64)
        for _ in range(25):
            data = bytes(rng.getrandbits(8) >> rng.choice([0, 0, 4, 6])
                         for _ in range(64))
            line = best.compress(data)
            for component in best.components:
                assert line.size_bytes <= component.compress(data).size_bytes

    def test_round_trip(self):
        import random

        rng = random.Random(17)
        best = BestOfAllCompressor(line_size=128)
        for _ in range(25):
            data = bytes(rng.getrandbits(8) >> rng.choice([0, 4, 7])
                         for _ in range(128))
            assert best.decompress(best.compress(data)) == data


class TestValidation:
    def test_component_line_size_mismatch(self):
        with pytest.raises(CompressionError):
            BestOfAllCompressor(
                line_size=64, components=[BdiCompressor(line_size=128)]
            )

    def test_empty_components(self):
        with pytest.raises(CompressionError):
            BestOfAllCompressor(line_size=64, components=[])

    def test_custom_component_subset(self):
        best = BestOfAllCompressor(
            line_size=64,
            components=[FpcCompressor(64), CPackCompressor(64)],
        )
        line = best.compress(bytes(64))
        assert line.encoding.split(":")[0] in ("fpc", "cpack")


class TestIncompressibleLines:
    def test_uncompressed_result_uses_plain_encoding(self):
        """Regression: incompressible lines must not carry a component
        prefix ('bdi:uncompressed'); the memory system keys compression
        state off the plain 'uncompressed' tag."""
        import random

        rng = random.Random(99)
        data = bytes(rng.getrandbits(8) for _ in range(64))
        best = BestOfAllCompressor(line_size=64)
        line = best.compress(data)
        if line.size_bytes == 64:
            assert line.encoding == "uncompressed"
            assert not line.is_compressed
        assert best.decompress(line) == data
