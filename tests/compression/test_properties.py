"""Property-based tests: round-trip and size invariants for every algorithm.

These are the core guarantees the rest of the system builds on: whatever
bytes enter a compressor come back out bit-exact, and the reported size
never exceeds the uncompressed line (so compression can only reduce the
number of DRAM bursts, never inflate it).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    BdiCompressor,
    BestOfAllCompressor,
    CPackCompressor,
    FpcCompressor,
    FvcCompressor,
    bursts_for,
)

LINE_SIZES = (32, 64, 128)

ALGOS = {
    "bdi": BdiCompressor,
    "fpc": FpcCompressor,
    "cpack": CPackCompressor,
    "fvc": FvcCompressor,
    "bestofall": BestOfAllCompressor,
}


def lines(line_size):
    """Byte strategies biased towards compressible patterns.

    Pure random bytes almost never compress, which would leave the
    interesting code paths untested; mix in structured generators.
    """
    random_line = st.binary(min_size=line_size, max_size=line_size)
    narrow = st.builds(
        lambda base, deltas: b"".join(
            ((base + d) % (1 << 32)).to_bytes(4, "little") for d in deltas
        ),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.lists(
            st.integers(min_value=-128, max_value=127),
            min_size=line_size // 4,
            max_size=line_size // 4,
        ),
    )
    sparse = st.builds(
        lambda words: b"".join(w.to_bytes(4, "little") for w in words),
        st.lists(
            st.sampled_from([0, 1, 0xFF, 0xABABABAB, 0x12340000]),
            min_size=line_size // 4,
            max_size=line_size // 4,
        ),
    )
    return st.one_of(random_line, narrow, sparse)


@pytest.mark.parametrize("algo_name", sorted(ALGOS))
@pytest.mark.parametrize("line_size", LINE_SIZES)
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_decompress_inverts_compress(self, algo_name, line_size, data):
        algo = ALGOS[algo_name](line_size)
        raw = data.draw(lines(line_size))
        assert algo.decompress(algo.compress(raw)) == raw

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_size_never_exceeds_line(self, algo_name, line_size, data):
        algo = ALGOS[algo_name](line_size)
        raw = data.draw(lines(line_size))
        line = algo.compress(raw)
        assert 1 <= line.size_bytes <= line_size
        assert 1 <= line.bursts() <= bursts_for(line_size)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_compress_is_deterministic(self, algo_name, line_size, data):
        algo = ALGOS[algo_name](line_size)
        raw = data.draw(lines(line_size))
        first = algo.compress(raw)
        second = algo.compress(raw)
        assert first.size_bytes == second.size_bytes
        assert first.encoding == second.encoding


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_bestofall_is_lower_envelope(data):
    best = BestOfAllCompressor(64)
    raw = data.draw(lines(64))
    size = best.compress(raw).size_bytes
    assert size == min(c.compress(raw).size_bytes for c in best.components)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=64, max_size=64))
def test_zero_prefix_lines_compress(data):
    """Any line whose second half is zeros must compress under FPC."""
    raw = data[:32] + bytes(32)
    line = FpcCompressor(64).compress(raw)
    assert FpcCompressor(64).decompress(line) == raw
