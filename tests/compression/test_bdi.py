"""Unit tests for Base-Delta-Immediate compression."""

import pytest

from repro.compression import BdiCompressor, CompressionError
from repro.compression.bdi import BDI_ENCODINGS, BdiEncoding


def line_from_words(words, word_bytes, line_size=64):
    """Build a little-endian line from integer words."""
    data = b"".join(w.to_bytes(word_bytes, "little") for w in words)
    assert len(data) == line_size
    return data


class TestFigure5Example:
    """The paper's worked example: a 64-byte PVC line -> 17 bytes."""

    # Figure 5: eight 8-byte values around base 0x80001D000 mixed with
    # small immediates near zero.
    WORDS = [
        0x00, 0x80001D000, 0x10, 0x80001D008,
        0x20, 0x80001D010, 0x30, 0x80001D018,
    ]

    def test_compresses_to_17_bytes(self):
        bdi = BdiCompressor(line_size=64)
        line = bdi.compress(line_from_words(self.WORDS, 8))
        assert line.encoding == "B8D1"
        assert line.size_bytes == 17

    def test_saves_47_bytes(self):
        bdi = BdiCompressor(line_size=64)
        line = bdi.compress(line_from_words(self.WORDS, 8))
        assert line.line_size - line.size_bytes == 47

    def test_round_trip(self):
        bdi = BdiCompressor(line_size=64)
        data = line_from_words(self.WORDS, 8)
        assert bdi.decompress(bdi.compress(data)) == data

    def test_single_burst(self):
        bdi = BdiCompressor(line_size=64)
        line = bdi.compress(line_from_words(self.WORDS, 8))
        assert line.bursts() == 1
        assert line.burst_ratio() == 2.0


class TestSpecialEncodings:
    def test_all_zeros(self):
        bdi = BdiCompressor(line_size=128)
        line = bdi.compress(bytes(128))
        assert line.encoding == "ZEROS"
        assert line.size_bytes == 1
        assert bdi.decompress(line) == bytes(128)

    def test_repeated_value(self):
        bdi = BdiCompressor(line_size=128)
        data = (0xDEADBEEFCAFEF00D).to_bytes(8, "little") * 16
        line = bdi.compress(data)
        assert line.encoding == "REPEAT"
        assert line.size_bytes == 8
        assert bdi.decompress(line) == data

    def test_repeated_zero_prefers_zeros(self):
        bdi = BdiCompressor(line_size=64)
        line = bdi.compress(bytes(64))
        assert line.encoding == "ZEROS"


class TestEncodingSelection:
    def test_picks_smallest_fitting_encoding(self):
        # 4-byte words with 1-byte deltas -> B4D1 beats B8D* here.
        bdi = BdiCompressor(line_size=64)
        words = [0x12345600 + i for i in range(16)]
        line = bdi.compress(line_from_words(words, 4))
        assert line.encoding == "B4D1"
        assert line.size_bytes == 4 + 16 * 1 + 2

    def test_wide_deltas_need_wider_encoding(self):
        bdi = BdiCompressor(line_size=64)
        words = [0x8877665544332211 + i * 0x1000000 for i in range(8)]
        line = bdi.compress(line_from_words(words, 8))
        assert line.encoding == "B8D4"

    def test_incompressible_random_line(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.getrandbits(8) for _ in range(128))
        bdi = BdiCompressor(line_size=128)
        line = bdi.compress(data)
        assert line.encoding == "uncompressed"
        assert line.size_bytes == 128
        assert bdi.decompress(line) == data

    def test_immediate_zero_base_words(self):
        # Mixture of a large base cluster and small immediates.
        bdi = BdiCompressor(line_size=64)
        words = [5, 0xAABBCCDD0000, 7, 0xAABBCCDD0004] * 2
        data = line_from_words(words, 8)
        line = bdi.compress(data)
        assert line.is_compressed
        assert bdi.decompress(line) == data

    def test_restricted_encoding_set(self):
        only_b8d1 = BdiCompressor(line_size=64, encodings=[BDI_ENCODINGS[0]])
        words = [0x12345600 + i for i in range(16)]
        line = only_b8d1.compress(line_from_words(words, 4))
        # B4D1 unavailable; these words do not fit B8D1 deltas from the
        # packed 8-byte view, so the line stays uncompressed.
        assert line.encoding in ("B8D1", "uncompressed")


class TestSizeAccounting:
    @pytest.mark.parametrize("encoding", BDI_ENCODINGS, ids=lambda e: e.name)
    def test_compressed_size_formula(self, encoding):
        n_words = 128 // encoding.base_bytes
        expected = (
            encoding.base_bytes
            + n_words * encoding.delta_bytes
            + -(-n_words // 8)
        )
        assert encoding.compressed_size(128) == expected

    def test_b8d1_on_64b_matches_paper(self):
        assert BdiEncoding("B8D1", 8, 1).compressed_size(64) == 17


class TestValidation:
    def test_wrong_line_size_rejected(self):
        with pytest.raises(CompressionError):
            BdiCompressor(line_size=64).compress(bytes(65))

    def test_bad_line_size_rejected(self):
        with pytest.raises(CompressionError):
            BdiCompressor(line_size=63)

    def test_cross_algorithm_decompress_rejected(self):
        from repro.compression import FpcCompressor

        bdi = BdiCompressor(line_size=64)
        fpc_line = FpcCompressor(line_size=64).compress(bytes(64))
        with pytest.raises(CompressionError):
            bdi.decompress(fpc_line)

    def test_unknown_encoding_lookup(self):
        with pytest.raises(CompressionError):
            BdiCompressor().encoding_for("B16D8")

    def test_encoding_must_divide_line(self):
        with pytest.raises(CompressionError):
            BdiCompressor(line_size=24, encodings=[BdiEncoding("B16D1", 16, 1)])
