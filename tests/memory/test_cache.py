"""Unit tests for the set-associative cache tag model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache


def same_set_lines(cache: Cache, count: int, start: int = 0):
    """Generate ``count`` distinct lines mapping to the same set."""
    lines = []
    target = None
    line = start
    while len(lines) < count:
        s = cache._set_for(line)
        if target is None:
            target = id(s)
        if id(s) == target:
            lines.append(line)
        line += 1
    return lines


class TestBasics:
    def test_miss_then_hit(self):
        cache = Cache(n_sets=4, assoc=2)
        assert not cache.access(5).hit
        assert cache.access(5).hit

    def test_probe_has_no_side_effects(self):
        cache = Cache(n_sets=4, assoc=2)
        assert not cache.probe(5)
        assert not cache.probe(5)
        cache.access(5)
        assert cache.probe(5)

    def test_non_allocating_miss(self):
        cache = Cache(n_sets=4, assoc=2)
        result = cache.access(5, allocate=False)
        assert not result.hit
        assert not cache.probe(5)

    def test_invalidate(self):
        cache = Cache(n_sets=4, assoc=2)
        cache.access(5)
        assert cache.invalidate(5)
        assert not cache.probe(5)
        assert not cache.invalidate(5)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(n_sets=0, assoc=2)
        with pytest.raises(ValueError):
            Cache(n_sets=2, assoc=0)


class TestLru:
    def test_lru_eviction_order(self):
        cache = Cache(n_sets=1, assoc=2)
        a, b, c = same_set_lines(cache, 3)
        cache.access(a)
        cache.access(b)
        result = cache.access(c)
        assert result.evicted_line == a

    def test_access_refreshes_lru(self):
        cache = Cache(n_sets=1, assoc=2)
        a, b, c = same_set_lines(cache, 3)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b becomes LRU
        result = cache.access(c)
        assert result.evicted_line == b


class TestDirty:
    def test_write_marks_dirty(self):
        cache = Cache(n_sets=1, assoc=1)
        a, b = same_set_lines(cache, 2)
        cache.access(a, is_write=True)
        result = cache.access(b)
        assert result.evicted_line == a
        assert result.evicted_dirty

    def test_clean_eviction(self):
        cache = Cache(n_sets=1, assoc=1)
        a, b = same_set_lines(cache, 2)
        cache.access(a)
        result = cache.access(b)
        assert not result.evicted_dirty

    def test_read_hit_preserves_dirty(self):
        cache = Cache(n_sets=1, assoc=1)
        a, b = same_set_lines(cache, 2)
        cache.access(a, is_write=True)
        cache.access(a)  # read hit must not clear the dirty bit
        result = cache.access(b)
        assert result.evicted_dirty

    def test_fill_merges_dirty(self):
        cache = Cache(n_sets=1, assoc=2)
        cache.fill(7, dirty=False)
        cache.fill(7, dirty=True)
        a = [l for l in same_set_lines(cache, 4) if l != 7]
        cache.access(a[0])
        result = cache.access(a[1])
        evicted = {result.evicted_line}
        # Keep evicting until 7 leaves; it must be dirty.
        while 7 not in evicted:
            result = cache.access(a.pop())
            evicted.add(result.evicted_line)
            if result.evicted_line == 7:
                assert result.evicted_dirty
                return
        assert result.evicted_dirty


class TestStats:
    def test_hit_rate(self):
        cache = Cache(n_sets=4, assoc=2)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_eviction_counters(self):
        cache = Cache(n_sets=1, assoc=1)
        a, b = same_set_lines(cache, 2)
        cache.access(a, is_write=True)
        cache.access(b)
        assert cache.stats.evictions == 1
        assert cache.stats.dirty_evictions == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300)
)
def test_resident_lines_bounded_by_capacity(lines):
    cache = Cache(n_sets=4, assoc=2)
    for line in lines:
        cache.access(line)
    assert cache.resident_lines() <= 8


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200)
)
def test_small_working_set_eventually_all_hits(lines):
    """A working set within one set's capacity cannot self-evict."""
    cache = Cache(n_sets=8, assoc=4)
    per_set: dict[int, set[int]] = {}
    for line in lines:
        per_set.setdefault(id(cache._set_for(line)), set()).add(line)
    if any(len(s) > 4 for s in per_set.values()):
        return  # working set exceeds a set; no guarantee
    for line in lines:
        cache.access(line)
    for line in set(lines):
        assert cache.probe(line)
