"""Unit tests for the crossbar interconnect."""

import pytest

from repro.memory.interconnect import CONTROL_BYTES, Crossbar


class TestRequests:
    def test_request_latency(self):
        xbar = Crossbar(n_mcs=2, latency=16, flit_bytes=32)
        arrival = xbar.send_request(0, at=0.0)
        assert arrival == pytest.approx(0.0 + 1 + 16)

    def test_write_data_takes_multiple_flits(self):
        xbar = Crossbar(n_mcs=2, latency=16, flit_bytes=32)
        arrival = xbar.send_request(0, at=0.0, n_bytes=128)
        assert arrival == pytest.approx(0.0 + 4 + 16)

    def test_ports_are_independent(self):
        xbar = Crossbar(n_mcs=2, latency=0, flit_bytes=32)
        a = xbar.send_request(0, 0.0, 128)
        b = xbar.send_request(1, 0.0, 128)
        assert a == b  # different ports do not contend

    def test_same_port_contends(self):
        xbar = Crossbar(n_mcs=1, latency=0, flit_bytes=32)
        first = xbar.send_request(0, 0.0, 128)
        second = xbar.send_request(0, 0.0, 128)
        assert second == first + 4


class TestReplies:
    def test_compressed_reply_is_faster_under_contention(self):
        xbar = Crossbar(n_mcs=1, latency=16, flit_bytes=32)
        xbar.send_reply(0, 0.0, 128)
        full = xbar.send_reply(0, 0.0, 128)
        xbar2 = Crossbar(n_mcs=1, latency=16, flit_bytes=32)
        xbar2.send_reply(0, 0.0, 32)
        compressed = xbar2.send_reply(0, 0.0, 32)
        assert compressed < full

    def test_flit_accounting(self):
        xbar = Crossbar(n_mcs=1, latency=0, flit_bytes=32)
        xbar.send_request(0, 0.0, CONTROL_BYTES)
        xbar.send_reply(0, 0.0, 128)
        assert xbar.request_flits == 1
        assert xbar.reply_flits == 4
        assert xbar.total_flits() == 5

    def test_reply_utilization(self):
        xbar = Crossbar(n_mcs=2, latency=0, flit_bytes=32)
        xbar.send_reply(0, 0.0, 128)
        assert xbar.reply_utilization(8.0) == pytest.approx(0.25)

    def test_minimum_one_flit(self):
        xbar = Crossbar(n_mcs=1, latency=0)
        xbar.send_reply(0, 0.0, 1)
        assert xbar.reply_flits == 1

    def test_bad_mc_count(self):
        with pytest.raises(ValueError):
            Crossbar(n_mcs=0)
