"""Unit tests for the compressed memory image."""

import pytest

from repro.compression import BdiCompressor
from repro.memory.image import LineInfo, MemoryImage


def narrow_line(line: int) -> bytes:
    """A BDI-friendly line: one base + tiny deltas."""
    base = 0x1122334455660000 + line
    return b"".join((base + i).to_bytes(8, "little") for i in range(16))


class TestBaseline:
    def test_uncompressed_when_no_algorithm(self):
        image = MemoryImage(narrow_line, None, 128)
        assert image.size_of(0) == 128
        assert image.bursts_of(0) == 4
        assert not image.compression_enabled

    def test_compressed_sizes_come_from_algorithm(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        assert image.size_of(0) < 128
        assert image.bursts_of(0) < 4
        assert image.info(0).is_compressed

    def test_sizes_are_cached_and_deterministic(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        assert image.size_of(7) == image.size_of(7)

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryImage(narrow_line, BdiCompressor(64), 128)


class TestStoreOverrides:
    def test_uncompressed_store_overrides(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        before = image.size_of(3)
        assert before < 128
        image.record_store(3, compressed=False)
        assert image.size_of(3) == 128
        assert image.bursts_of(3) == 4

    def test_compressed_store_restores_algorithmic_size(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        original = image.size_of(3)
        image.record_store(3, compressed=False)
        image.record_store(3, compressed=True)
        assert image.size_of(3) == original

    def test_overrides_do_not_touch_other_lines(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        a = image.size_of(1)
        image.record_store(2, compressed=False)
        assert image.size_of(1) == a


class TestSharedCache:
    def test_shared_cache_reuses_computation(self):
        calls = []

        def counted(line):
            calls.append(line)
            return narrow_line(line)

        shared: dict[int, LineInfo] = {}
        first = MemoryImage(counted, BdiCompressor(128), 128,
                            shared_cache=shared)
        first.size_of(5)
        second = MemoryImage(counted, BdiCompressor(128), 128,
                             shared_cache=shared)
        second.size_of(5)
        assert calls == [5]

    def test_overrides_stay_private(self):
        shared: dict[int, LineInfo] = {}
        first = MemoryImage(narrow_line, BdiCompressor(128), 128,
                            shared_cache=shared)
        second = MemoryImage(narrow_line, BdiCompressor(128), 128,
                             shared_cache=shared)
        first.record_store(5, compressed=False)
        assert first.size_of(5) == 128
        assert second.size_of(5) < 128


class TestAggregates:
    def test_observed_compression_ratio(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        for line in range(10):
            image.size_of(line)
        assert image.observed_compression_ratio() > 1.0
        assert image.lines_touched() == 10

    def test_ratio_of_untouched_image_is_one(self):
        image = MemoryImage(narrow_line, BdiCompressor(128), 128)
        assert image.observed_compression_ratio() == 1.0
