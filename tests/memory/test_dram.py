"""Unit tests for the GDDR5 memory-controller model."""

import pytest

from repro.gpu.config import DramTiming
from repro.memory.dram import LINES_PER_ROW, MemoryController
from repro.memory.metadata import MetadataCache


def make_mc(md=False, burst_cycles=1.5):
    return MemoryController(
        mc_id=0,
        burst_cycles=burst_cycles,
        timing=DramTiming(),
        n_banks=16,
        metadata_cache=MetadataCache() if md else None,
    )


class TestTiming:
    def test_first_access_pays_activate(self):
        mc = make_mc()
        done = mc.access(0.0, local_line=0, bursts=4, is_write=False)
        t = DramTiming()
        assert done == pytest.approx(4 * 1.5 + t.row_empty_latency)

    def test_row_hit_is_cheaper(self):
        mc = make_mc()
        first = mc.access(0.0, 0, 4, False)
        second = mc.access(first, 1, 4, False) - first
        t = DramTiming()
        assert second < t.row_miss_latency + 4 * 1.5 + 1

    def test_row_hit_counted(self):
        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        mc.access(10.0, 1, 4, False)  # same row (consecutive lines)
        assert mc.stats.row_hits == 1
        assert mc.stats.row_misses == 1

    def test_distant_lines_miss_row(self):
        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        mc.access(10.0, LINES_PER_ROW * 16 * 50, 4, False)
        assert mc.stats.row_hits == 0

    def test_bad_burst_count(self):
        with pytest.raises(ValueError):
            make_mc().access(0.0, 0, 0, False)


class TestBandwidth:
    def test_bus_serializes_transfers(self):
        mc = make_mc()
        # Saturate with many requests to different banks.
        for i in range(50):
            mc.access(0.0, i * LINES_PER_ROW, 4, False)
        # 50 transfers * 4 bursts * 1.5 cycles = 300 busy cycles.
        assert mc.bus.busy_time == pytest.approx(300.0)

    def test_compressed_lines_use_fewer_bus_cycles(self):
        full = make_mc()
        compressed = make_mc()
        for i in range(20):
            full.access(0.0, i, 4, False)
            compressed.access(0.0, i, 1, False)
        assert compressed.bus.busy_time == pytest.approx(
            full.bus.busy_time / 4
        )

    def test_utilization(self):
        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        assert mc.utilization(60.0) == pytest.approx(4 * 1.5 / 60.0)

    def test_read_write_counters(self):
        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        mc.access(0.0, 1, 2, True)
        assert mc.stats.reads == 1
        assert mc.stats.writes == 1
        assert mc.stats.read_bursts == 4
        assert mc.stats.write_bursts == 2


class TestMetadataPath:
    def test_md_miss_adds_bursts(self):
        mc = make_mc(md=True)
        mc.access(0.0, 0, 4, False)
        assert mc.stats.metadata_bursts > 0

    def test_md_hit_adds_nothing(self):
        mc = make_mc(md=True)
        mc.access(0.0, 0, 4, False)
        before = mc.stats.metadata_bursts
        mc.access(50.0, 1, 4, False)  # same metadata entry
        assert mc.stats.metadata_bursts == before

    def test_md_miss_delays_data(self):
        with_md = make_mc(md=True)
        without = make_mc(md=False)
        t_md = with_md.access(0.0, 0, 4, False)
        t_plain = without.access(0.0, 0, 4, False)
        assert t_md > t_plain

    def test_no_md_cache_no_metadata_traffic(self):
        mc = make_mc(md=False)
        for i in range(10):
            mc.access(0.0, i * 200, 4, False)
        assert mc.stats.metadata_bursts == 0


class TestRowWindow:
    """The FR-FCFS approximation: row hits within a time window."""

    def test_hit_within_window(self):
        from repro.memory.dram import ROW_HIT_WINDOW

        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        mc.access(ROW_HIT_WINDOW - 50, 1, 4, False)  # same row, in window
        assert mc.stats.row_hits == 1

    def test_miss_after_window_expires(self):
        from repro.memory.dram import ROW_HIT_WINDOW

        mc = make_mc()
        mc.access(0.0, 0, 4, False)
        mc.access(ROW_HIT_WINDOW * 3, 1, 4, False)
        assert mc.stats.row_hits == 0

    def test_interleaved_streams_both_hit(self):
        """Two streams on the same bank (different rows) must both keep
        row locality — the effect real FR-FCFS reordering provides."""
        mc = make_mc()
        rows_apart = 16 * 16 * 100  # far apart rows, same bank index
        t = 0.0
        for i in range(8):
            mc.access(t, i, 4, False)
            mc.access(t + 1, rows_apart + i, 4, False)
            t += 20
        # First access of each stream misses; the rest hit.
        assert mc.stats.row_misses == 2
        assert mc.stats.row_hits == 14

    def test_tracked_rows_bounded(self):
        from repro.memory.dram import MAX_TRACKED_ROWS

        mc = make_mc()
        # Many distinct rows on one bank inside the window.
        for k in range(MAX_TRACKED_ROWS * 3):
            mc.access(k * 2.0, k * 16 * 16, 4, False)
        bank = mc.banks[0]
        assert len(bank.rows) <= MAX_TRACKED_ROWS

    def test_write_recovery_holds_bank_longer(self):
        read_mc, write_mc = make_mc(), make_mc()
        read_mc.access(0.0, 0, 4, False)
        write_mc.access(0.0, 0, 4, True)
        assert write_mc.banks[0].ready_at > read_mc.banks[0].ready_at
