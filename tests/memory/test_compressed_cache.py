"""Unit tests for the tag-extended compressed cache (Fig. 13 model)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.compressed_cache import CompressedCache


def same_set_lines(cache: CompressedCache, count: int, start: int = 0):
    lines, target, line = [], None, start
    while len(lines) < count:
        s = cache._set_for(line)
        if target is None:
            target = id(s)
        if id(s) == target:
            lines.append(line)
        line += 1
    return lines


class TestCapacity:
    def test_more_tags_than_data_ways(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=2)
        lines = same_set_lines(cache, 4)
        # Four half-size lines fit in two data ways with 4 tags.
        for line in lines:
            result = cache.access(line, size=64)
            assert result.evicted == ()
        assert cache.resident_lines() == 4

    def test_tag_limit_still_applies(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=2)
        lines = same_set_lines(cache, 5)
        for line in lines[:4]:
            cache.access(line, size=16)
        result = cache.access(lines[4], size=16)
        assert len(result.evicted) == 1  # 5th tag exceeds 2 * 2

    def test_byte_budget_enforced(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=4)
        lines = same_set_lines(cache, 3)
        cache.access(lines[0], size=128)
        cache.access(lines[1], size=128)
        result = cache.access(lines[2], size=64)
        assert len(result.evicted) >= 1

    def test_uncompressed_lines_behave_like_plain_cache(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=4)
        lines = same_set_lines(cache, 3)
        cache.access(lines[0], size=128)
        cache.access(lines[1], size=128)
        result = cache.access(lines[2], size=128)
        assert len(result.evicted) == 1
        assert result.evicted[0][0] == lines[0]

    def test_big_insert_can_evict_multiple(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=4)
        lines = same_set_lines(cache, 5)
        for line in lines[:4]:
            cache.access(line, size=64)
        result = cache.access(lines[4], size=128)
        assert len(result.evicted) >= 2


class TestDirtyAndSizes:
    def test_dirty_eviction_reported(self):
        cache = CompressedCache(n_sets=1, assoc=1, line_size=128, tag_mult=1)
        a, b = same_set_lines(cache, 2)
        cache.access(a, size=64, is_write=True)
        result = cache.access(b, size=64)
        assert result.evicted == ((a, True),)

    def test_stored_size_updates_on_hit(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=2)
        cache.access(3, size=64)
        cache.access(3, size=17)
        assert cache.stored_size(3) == 17

    def test_stored_size_absent(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128)
        assert cache.stored_size(42) is None

    def test_bad_size_rejected(self):
        cache = CompressedCache(n_sets=1, assoc=2, line_size=128)
        with pytest.raises(ValueError):
            cache.access(1, size=0)
        with pytest.raises(ValueError):
            cache.access(1, size=200)

    def test_bad_tag_mult_rejected(self):
        with pytest.raises(ValueError):
            CompressedCache(n_sets=1, assoc=2, line_size=128, tag_mult=0)


class TestOccupancy:
    def test_occupancy_reflects_compression(self):
        cache = CompressedCache(n_sets=1, assoc=4, line_size=128, tag_mult=2)
        lines = same_set_lines(cache, 4)
        for line in lines:
            cache.access(line, size=32)
        assert cache.occupancy() == pytest.approx(4 * 32 / (4 * 128))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=1, max_value=128),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_budget_invariant(accesses):
    """Per-set bytes never exceed the data budget; tags never exceed
    assoc * tag_mult."""
    cache = CompressedCache(n_sets=4, assoc=2, line_size=128, tag_mult=4)
    for line, size in accesses:
        cache.access(line, size=size)
    for s in cache._sets:
        assert sum(e.size for e in s.values()) <= cache.data_budget
        assert len(s) <= cache.max_tags
