"""Unit tests for the compression metadata (MD) cache."""

from repro.memory.metadata import MetadataCache


class TestLookup:
    def test_first_lookup_misses(self):
        md = MetadataCache()
        result = md.lookup(0)
        assert not result.hit
        assert result.extra_bursts >= 1

    def test_spatial_locality_hits(self):
        md = MetadataCache(lines_per_entry=128)
        md.lookup(0)
        for line in range(1, 128):
            assert md.lookup(line).hit

    def test_entry_boundary_misses(self):
        md = MetadataCache(lines_per_entry=128)
        md.lookup(0)
        assert not md.lookup(128).hit

    def test_hit_rate_tracking(self):
        md = MetadataCache(lines_per_entry=4)
        md.lookup(0)   # miss
        md.lookup(1)   # hit
        md.lookup(2)   # hit
        md.lookup(100)  # miss
        assert md.accesses == 4
        assert md.misses == 2
        assert md.hit_rate == 0.5

    def test_hit_costs_nothing(self):
        md = MetadataCache()
        md.lookup(0)
        assert md.lookup(1).extra_bursts == 0


class TestCapacity:
    def test_streaming_working_set_fits(self):
        """An 8 KB MD cache covers far more streams than any SM runs."""
        md = MetadataCache(size_bytes=8 * 1024, lines_per_entry=128)
        # 16 concurrent streams, each advancing through its own region.
        misses = 0
        for step in range(1000):
            for stream in range(16):
                line = stream * 1_000_003 + step
                if not md.lookup(line).hit:
                    misses += 1
        # Compulsory misses only: each stream touches ~1000/128 entries.
        assert misses <= 16 * (1000 // 128 + 2)

    def test_tiny_cache_thrashes(self):
        md = MetadataCache(size_bytes=256, entry_bytes=64, lines_per_entry=1)
        for _ in range(3):
            for line in range(64):
                md.lookup(line)
        assert md.hit_rate < 0.5
