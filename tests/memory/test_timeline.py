"""Unit and property tests for reservation timelines."""

from hypothesis import given, settings, strategies as st

from repro.memory.timeline import MAX_FREE_INTERVALS, Timeline


class TestBasicReservation:
    def test_empty_timeline_serves_immediately(self):
        t = Timeline()
        assert t.reserve(10.0, 5.0) == 10.0

    def test_busy_timeline_queues(self):
        t = Timeline()
        t.reserve(0.0, 10.0)
        assert t.reserve(0.0, 5.0) == 10.0

    def test_sequential_requests_pipeline(self):
        t = Timeline()
        starts = [t.reserve(0.0, 2.0) for _ in range(5)]
        assert starts == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_zero_duration_is_free(self):
        t = Timeline()
        assert t.reserve(5.0, 0.0) == 5.0
        assert t.busy_time == 0.0

    def test_busy_time_accumulates(self):
        t = Timeline()
        t.reserve(0.0, 3.0)
        t.reserve(0.0, 4.0)
        assert t.busy_time == 7.0


class TestGapFilling:
    def test_future_reservation_leaves_gap_usable(self):
        t = Timeline()
        # A reservation far in the future must not block earlier time.
        assert t.reserve(100.0, 10.0) == 100.0
        assert t.reserve(0.0, 5.0) == 0.0

    def test_gap_too_small_is_skipped(self):
        t = Timeline()
        t.reserve(4.0, 10.0)  # free gap [0, 4)
        assert t.reserve(0.0, 5.0) == 14.0

    def test_gap_exactly_fits(self):
        t = Timeline()
        t.reserve(5.0, 10.0)  # free gap [0, 5)
        assert t.reserve(0.0, 5.0) == 0.0

    def test_multiple_gaps_first_fit(self):
        t = Timeline()
        t.reserve(10.0, 10.0)  # gap [0,10)
        t.reserve(30.0, 10.0)  # gaps [0,10) [20,30)
        assert t.reserve(0.0, 8.0) == 0.0
        assert t.reserve(0.0, 9.0) == 20.0

    def test_interval_list_is_bounded(self):
        t = Timeline()
        for i in range(200):
            t.reserve(i * 10.0 + 5.0, 1.0)
        assert len(t._free) <= MAX_FREE_INTERVALS + 1


class TestUtilization:
    def test_utilization_fraction(self):
        t = Timeline()
        t.reserve(0.0, 25.0)
        assert t.utilization(100.0) == 0.25

    def test_utilization_clamped_to_one(self):
        t = Timeline()
        t.reserve(0.0, 500.0)
        assert t.utilization(100.0) == 1.0

    def test_zero_elapsed(self):
        assert Timeline().utilization(0.0) == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e5),
            st.floats(min_value=0.1, max_value=50),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_reservations_never_overlap(requests):
    """No two reservations may occupy the same instant."""
    t = Timeline()
    granted: list[tuple[float, float]] = []
    for at, duration in requests:
        start = t.reserve(at, duration)
        assert start >= at
        granted.append((start, start + duration))
    granted.sort()
    for (s1, e1), (s2, e2) in zip(granted, granted[1:]):
        assert e1 <= s2 + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4),
            st.floats(min_value=0.1, max_value=20),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_busy_time_equals_total_duration(requests):
    t = Timeline()
    for at, duration in requests:
        t.reserve(at, duration)
    assert abs(t.busy_time - sum(d for _, d in requests)) < 1e-6
