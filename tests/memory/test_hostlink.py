"""Unit tests for the capacity-mode placement plan and host link."""

import math

import pytest

from repro.memory.hostlink import (
    CapacityConfig,
    CapacityPlan,
    HostLink,
    plan_capacity,
)


class TestCapacityConfig:
    def test_defaults_valid(self):
        config = CapacityConfig(device_bytes=1 << 20)
        assert config.host_latency == 600.0
        assert config.host_bw_scale == 0.25

    @pytest.mark.parametrize("kwargs", [
        {"device_bytes": 0},
        {"device_bytes": -128},
        {"device_bytes": 128, "host_latency": -1.0},
        {"device_bytes": 128, "host_bw_scale": 0.0},
        {"device_bytes": 128, "host_bw_scale": 1.5},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CapacityConfig(**kwargs)


class TestPlanCapacity:
    LINE = 128

    def plan(self, extents, budget, size_of=None):
        return plan_capacity(
            extents, self.LINE,
            size_of or (lambda line: self.LINE),
            CapacityConfig(device_bytes=budget),
        )

    def test_everything_fits(self):
        plan = self.plan([(0, 8)], budget=8 * self.LINE)
        assert plan.spilled == frozenset()
        assert plan.resident_bytes == 8 * self.LINE
        assert plan.spill_fraction == 0.0

    def test_overflow_spills_highest_addresses(self):
        plan = self.plan([(0, 8)], budget=5 * self.LINE)
        assert plan.spilled == frozenset({5, 6, 7})
        assert plan.spill_fraction == pytest.approx(3 / 8)

    def test_extents_place_in_ascending_order(self):
        # Deliberately unsorted extents: placement must still be by
        # address, so the high extent spills first.
        plan = self.plan([(100, 4), (0, 4)], budget=6 * self.LINE)
        assert plan.spilled == frozenset({102, 103})

    def test_compressed_sizes_fit_more_lines(self):
        uncompressed = self.plan([(0, 8)], budget=4 * self.LINE)
        compressed = self.plan(
            [(0, 8)], budget=4 * self.LINE,
            size_of=lambda line: self.LINE // 2,
        )
        assert len(uncompressed.spilled) == 4
        assert compressed.spilled == frozenset()
        assert compressed.stored_bytes == 4 * self.LINE

    def test_effective_capacity_ratio(self):
        # 8 lines fit compressed in a 4-line budget: the budget holds
        # twice its size in uncompressed bytes.
        plan = self.plan(
            [(0, 8)], budget=4 * self.LINE,
            size_of=lambda line: self.LINE // 2,
        )
        assert plan.effective_capacity_ratio == pytest.approx(2.0)
        assert plan.footprint_bytes == 8 * self.LINE

    def test_empty_extents(self):
        plan = self.plan([], budget=self.LINE)
        assert plan.total_lines == 0
        assert plan.spill_fraction == 0.0
        assert plan.effective_capacity_ratio == 0.0

    def test_plan_is_frozen_and_deterministic(self):
        a = self.plan([(0, 16)], budget=9 * self.LINE)
        b = self.plan([(0, 16)], budget=9 * self.LINE)
        assert a == b
        assert isinstance(a, CapacityPlan)
        with pytest.raises(AttributeError):
            a.total_lines = 5


class TestHostLink:
    def make(self, latency=600.0, scale=0.25, dram_burst_cycles=2.0):
        config = CapacityConfig(
            device_bytes=1 << 20, host_latency=latency,
            host_bw_scale=scale,
        )
        return HostLink(config, dram_burst_cycles=dram_burst_cycles)

    def test_bandwidth_scale_stretches_bursts(self):
        link = self.make(scale=0.25, dram_burst_cycles=2.0)
        assert link.burst_cycles == 8

    def test_non_divisor_scale_quantizes_with_ceil(self):
        """The timing regression: 2.0 / 0.3 is 6.67 fractional cycles;
        the link must charge whole cycles (rounded up, never faster
        than the configured fraction)."""
        link = self.make(scale=0.3, dram_burst_cycles=2.0)
        assert link.burst_cycles == 7
        assert isinstance(link.burst_cycles, int)

    def test_non_divisor_scale_conservation_identity_is_exact(self):
        """bursts x burst_cycles == bus.busy_time must hold exactly —
        not approximately — for a non-divisor host_bw_scale, which the
        old float division broke by accumulating fractional cycles."""
        link = self.make(latency=50.0, scale=0.3, dram_burst_cycles=2.0)
        for i in range(100):
            link.transfer(at=float(3 * i), bursts=1 + i % 4,
                          is_write=i % 3 == 0)
        assert link.stats.total_bursts * link.burst_cycles \
            == link.bus.busy_time

    def test_transfer_pays_latency_then_bus(self):
        link = self.make(latency=100.0, scale=1.0, dram_burst_cycles=2.0)
        done = link.transfer(at=0.0, bursts=4, is_write=False)
        assert done == pytest.approx(100.0 + 4 * 2.0)

    def test_serial_bus_queues_transfers(self):
        link = self.make(latency=0.0, scale=1.0, dram_burst_cycles=2.0)
        first = link.transfer(at=0.0, bursts=4, is_write=False)
        second = link.transfer(at=0.0, bursts=4, is_write=True)
        assert second >= first  # one bus: the second transfer waits

    def test_burst_conservation_by_construction(self):
        link = self.make()
        for i in range(20):
            link.transfer(at=float(i), bursts=1 + i % 3, is_write=i % 2 == 0)
        charged = link.stats.total_bursts * link.burst_cycles
        assert math.isclose(charged, link.bus.busy_time,
                            rel_tol=1e-9, abs_tol=1e-6)

    def test_stats_split_reads_and_writes(self):
        link = self.make()
        link.transfer(0.0, 2, is_write=False)
        link.transfer(0.0, 3, is_write=True)
        assert link.stats.reads == 1
        assert link.stats.writes == 1
        assert link.stats.read_bursts == 2
        assert link.stats.write_bursts == 3
        assert link.stats.total_bursts == 5

    def test_utilization(self):
        link = self.make(latency=0.0, scale=1.0, dram_burst_cycles=2.0)
        link.transfer(0.0, 5, is_write=False)
        assert link.utilization(20.0) == pytest.approx(0.5)
        assert link.utilization(0.0) == 0.0
