"""Integration tests for the full memory hierarchy."""

import pytest

from repro import design as designs
from repro.compression import BdiCompressor
from repro.gpu.config import GPUConfig
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage


def narrow_line(line: int) -> bytes:
    base = 0x1122334455660000 + line * 7
    return b"".join((base + i).to_bytes(8, "little") for i in range(16))


def random_line(line: int) -> bytes:
    out = bytearray()
    x = line * 0x9E3779B97F4A7C15 + 1
    for _ in range(16):
        x = (x * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        out += x.to_bytes(8, "little")
    return bytes(out)


def make_system(design, compressible=True, config=None):
    config = config or GPUConfig.small()
    algo = BdiCompressor(config.line_size) if design.compression_enabled else None
    gen = narrow_line if compressible else random_line
    image = MemoryImage(gen, algo, config.line_size)
    return MemorySystem(config, design, image), config


class TestLoadPath:
    def test_l1_hit_after_fill(self):
        ms, cfg = make_system(designs.base())
        miss = ms.load(0, 100, 0.0)
        assert not miss.from_l1
        ms.complete_fill(0, 100)
        hit = ms.load(0, 100, miss.ready_time + 1)
        assert hit.from_l1
        assert hit.ready_time == pytest.approx(
            miss.ready_time + 1 + cfg.l1_latency
        )

    def test_miss_latency_includes_downstream(self):
        ms, cfg = make_system(designs.base())
        fill = ms.load(0, 100, 0.0)
        assert fill.ready_time > cfg.l1_latency + cfg.l2_latency

    def test_inflight_merge(self):
        ms, _ = make_system(designs.base())
        first = ms.load(0, 100, 0.0)
        second = ms.load(0, 100, 1.0)
        assert second.merged
        assert second.ready_time == first.ready_time
        assert ms.stats.dram_reads == 1

    def test_mshr_exhaustion(self):
        cfg = GPUConfig.small()
        ms, _ = make_system(designs.base(), config=cfg)
        for i in range(cfg.l1_mshrs):
            assert ms.load(0, 1000 + i, 0.0) is not None
        assert ms.load(0, 5000, 0.0) is None
        assert ms.stats.mshr_stalls == 1

    def test_complete_fill_frees_mshr(self):
        cfg = GPUConfig.small()
        ms, _ = make_system(designs.base(), config=cfg)
        for i in range(cfg.l1_mshrs):
            ms.load(0, 1000 + i, 0.0)
        ms.complete_fill(0, 1000)
        assert ms.load(0, 5000, 0.0) is not None

    def test_mshrs_are_per_sm(self):
        cfg = GPUConfig.small()
        ms, _ = make_system(designs.base(), config=cfg)
        for i in range(cfg.l1_mshrs):
            ms.load(0, 1000 + i, 0.0)
        assert ms.load(1, 9000, 0.0) is not None

    def test_l2_hit_skips_dram(self):
        ms, _ = make_system(designs.base())
        ms.load(0, 100, 0.0)
        ms.complete_fill(0, 100)
        # A different SM misses its L1 but hits the shared L2.
        ms.load(1, 100, 500.0)
        assert ms.stats.dram_reads == 1
        assert ms.stats.l2_hits == 1


class TestCompressionPlacement:
    def test_base_never_needs_assist(self):
        ms, _ = make_system(designs.base())
        fill = ms.load(0, 100, 0.0)
        assert not fill.needs_assist
        assert fill.size_bytes == 128

    def test_caba_fill_needs_assist(self):
        ms, _ = make_system(designs.caba())
        fill = ms.load(0, 100, 0.0)
        assert fill.needs_assist
        assert fill.size_bytes < 128
        assert fill.ready_time == fill.fill_time

    def test_hw_fill_pays_fixed_latency(self):
        ms, _ = make_system(designs.hw())
        fill = ms.load(0, 100, 0.0)
        assert not fill.needs_assist
        assert fill.ready_time == fill.fill_time + 1

    def test_ideal_fill_is_free(self):
        ms, _ = make_system(designs.ideal())
        fill = ms.load(0, 100, 0.0)
        assert not fill.needs_assist
        assert fill.ready_time == fill.fill_time

    def test_incompressible_line_needs_no_assist(self):
        ms, _ = make_system(designs.caba(), compressible=False)
        fill = ms.load(0, 100, 0.0)
        assert not fill.needs_assist
        assert fill.size_bytes == 128

    def test_hw_mem_replies_uncompressed_over_icnt(self):
        caba, _ = make_system(designs.caba())
        hwmem, _ = make_system(designs.hw_mem())
        caba.load(0, 100, 0.0)
        hwmem.load(0, 100, 0.0)
        assert hwmem.crossbar.reply_flits == 4
        assert caba.crossbar.reply_flits < 4

    def test_compressed_dram_reads_fewer_bursts(self):
        base, _ = make_system(designs.base())
        caba, _ = make_system(designs.caba())
        base.load(0, 100, 0.0)
        caba.load(0, 100, 0.0)
        assert caba.dram_bursts()["read"] < base.dram_bursts()["read"]

    def test_metadata_only_for_compressed_dram(self):
        base, _ = make_system(designs.base())
        ideal, _ = make_system(designs.ideal())
        caba, _ = make_system(designs.caba())
        assert base.md_cache_hit_rate() is None
        assert ideal.md_cache_hit_rate() is None
        caba.load(0, 100, 0.0)
        assert caba.md_cache_hit_rate() is not None


class TestStorePath:
    def test_store_invalidates_l1(self):
        ms, _ = make_system(designs.base())
        ms.load(0, 100, 0.0)
        ms.complete_fill(0, 100)
        assert ms.load(0, 100, 1000.0).from_l1
        ms.store(0, 100, 2000.0)
        assert not ms.load(0, 100, 3000.0).from_l1

    def test_dirty_l2_eviction_writes_dram(self):
        cfg = GPUConfig.small()
        ms, _ = make_system(designs.base(), config=cfg)
        l2_lines = cfg.l2_size // cfg.line_size
        mc0_lines = [l for l in range(l2_lines * 8) if l % cfg.n_mcs == 0]
        ms.store(0, mc0_lines[0], 0.0)
        # Thrash the L2 bank until the dirty line leaves.
        for line in mc0_lines[1 : l2_lines * 3]:
            ms.load(0, line, 10.0)
            ms.complete_fill(0, line)
        assert ms.stats.dram_writes >= 1

    def test_uncompressed_store_downgrades_line(self):
        ms, _ = make_system(designs.caba())
        assert ms.image.size_of(100) < 128
        ms.store(0, 100, 0.0, compressed_by_core=False)
        assert ms.image.size_of(100) == 128

    def test_compressed_store_keeps_size(self):
        ms, _ = make_system(designs.caba())
        ms.store(0, 100, 0.0, compressed_by_core=True)
        assert ms.image.size_of(100) < 128
        assert ms.stats.lines_compressed == 1

    def test_partial_write_into_compressed_line_rmw(self):
        ms, cfg = make_system(designs.caba())
        before = ms.stats.rmw_reads
        ms.store(0, 100, 0.0, full_line=False, compressed_by_core=True)
        assert ms.stats.rmw_reads == before + 1

    def test_full_line_write_no_rmw(self):
        ms, _ = make_system(designs.caba())
        ms.store(0, 100, 0.0, full_line=True, compressed_by_core=True)
        assert ms.stats.rmw_reads == 0

    def test_base_store_never_rmw(self):
        ms, _ = make_system(designs.base())
        ms.store(0, 100, 0.0, full_line=False)
        assert ms.stats.rmw_reads == 0


class TestUtilization:
    def test_bandwidth_utilization_grows_with_traffic(self):
        ms, _ = make_system(designs.base())
        for i in range(50):
            ms.load(0, 2000 + i, 0.0)
        busy = ms.bandwidth_utilization(400.0)
        assert 0.2 < busy <= 1.0

    def test_compression_lowers_utilization(self):
        base, _ = make_system(designs.base())
        ideal, _ = make_system(designs.ideal())
        for i in range(50):
            base.load(0, 2000 + i, 0.0)
            ideal.load(0, 2000 + i, 0.0)
        assert (
            ideal.bandwidth_utilization(400.0)
            < base.bandwidth_utilization(400.0)
        )


class TestFig13Caches:
    def test_l2_tag_mult_increases_effective_capacity(self):
        cfg = GPUConfig.small()
        plain, _ = make_system(designs.caba(), config=cfg)
        big, _ = make_system(
            designs.caba_cache("l2", 4), config=cfg
        )
        l2_lines = cfg.l2_size // cfg.line_size
        lines = [l for l in range(l2_lines * 3 * cfg.n_mcs)]
        for ms in (plain, big):
            for line in lines:
                ms.load(0, line, 0.0)
                ms.complete_fill(0, line)
            # Second pass: refetch everything after L1 trashing.
            for line in lines:
                ms._l1s[0].invalidate(line) if hasattr(
                    ms._l1s[0], "invalidate") else None
                ms.load(0, line, 1e6)
        assert big.stats.l2_hits >= plain.stats.l2_hits

    def test_l1_compressed_hits_need_assist(self):
        ms, _ = make_system(designs.caba_cache("l1", 2))
        miss = ms.load(0, 100, 0.0)
        ms.complete_fill(0, 100)
        hit = ms.load(0, 100, miss.ready_time + 10)
        assert hit.from_l1
        assert hit.needs_assist


class TestL2UncompressedOption:
    """Section 6.5: store the L2 uncompressed, decompress on DRAM fills."""

    def test_dram_fill_needs_assist_l2_hit_does_not(self):
        ms, _ = make_system(designs.caba_l2_uncompressed())
        miss = ms.load(0, 100, 0.0)
        assert miss.needs_assist  # came from compressed DRAM
        ms.complete_fill(0, 100)
        # Another SM hits the (uncompressed) L2 copy: no assist needed.
        other = ms.load(1, 100, 2000.0)
        assert not other.from_l1
        assert not other.needs_assist

    def test_replies_travel_uncompressed(self):
        ms, _ = make_system(designs.caba_l2_uncompressed())
        ms.load(0, 100, 0.0)
        assert ms.crossbar.reply_flits == 4

    def test_dram_still_compressed(self):
        l2u, _ = make_system(designs.caba_l2_uncompressed())
        base, _ = make_system(designs.base())
        l2u.load(0, 100, 0.0)
        base.load(0, 100, 0.0)
        assert l2u.dram_bursts()["read"] < base.dram_bursts()["read"]
