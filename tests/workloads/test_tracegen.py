"""Unit tests for kernel/trace generation."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.isa import MemSpace, OpKind
from repro.workloads.apps import APPLICATIONS, OpSpec, get_app
from repro.workloads.tracegen import (
    REGION_STRIDE,
    TraceScale,
    build_kernel,
    build_program,
)


class TestProgramConstruction:
    def test_body_matches_spec_counts(self):
        app = get_app("PVC")
        program = build_program(app, GPUConfig.small(), total_warps=32)
        loads = sum(1 for i in program.body
                    if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL)
        stores = sum(1 for i in program.body if i.kind is OpKind.STORE)
        spec_loads = sum(s.count for s in app.body if s.kind == "load")
        spec_stores = sum(s.count for s in app.body if s.kind == "store")
        assert loads == spec_loads
        assert stores == spec_stores

    def test_work_scale(self):
        app = get_app("PVC")
        full = build_program(app, GPUConfig.small(), 32)
        half = build_program(app, GPUConfig.small(), 32,
                             TraceScale(work=0.5))
        assert half.iterations == round(app.iterations * 0.5)
        assert full.iterations == app.iterations

    def test_loads_rotate_destination_registers(self):
        app = get_app("MM")  # 4 loads per iteration
        program = build_program(app, GPUConfig.small(), 32)
        load_dsts = [i.dst_mask for i in program.body
                     if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL]
        assert len(set(load_dsts)) == len(load_dsts)

    def test_alu_depends_on_a_load(self):
        app = get_app("PVC")
        program = build_program(app, GPUConfig.small(), 32)
        load_dsts = 0
        for i in program.body:
            if i.kind is OpKind.LOAD:
                load_dsts |= i.dst_mask
        alus = [i for i in program.body
                if i.kind is OpKind.ALU and i.tag == "alu"]
        assert any(i.src_mask & load_dsts for i in alus)


class TestAddressGenerators:
    def config(self):
        return GPUConfig.small()

    def test_stream_is_coalesced_and_unique(self):
        app = get_app("PVC")
        program = build_program(app, self.config(), total_warps=8)
        load = next(i for i in program.body
                    if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL)
        seen = set()
        for w in range(8):
            for it in range(4):
                lines = load.addr_fn(w, it)
                assert len(lines) == 1
                seen.update(lines)
        assert len(seen) == 32  # all distinct while within the region

    def test_stride_touches_two_lines(self):
        app = get_app("LPS")
        program = build_program(app, self.config(), total_warps=8)
        load = next(i for i in program.body
                    if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL)
        assert len(load.addr_fn(0, 0)) == 2

    def test_random_fanout(self):
        app = get_app("BFS")
        program = build_program(app, self.config(), total_warps=8)
        load = next(i for i in program.body
                    if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL)
        assert len(load.addr_fn(0, 0)) == 2

    def test_regions_do_not_overlap(self):
        app = get_app("MM")
        program = build_program(app, self.config(), total_warps=8)
        loads = [i for i in program.body
                 if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL]
        regions = set()
        for load in loads:
            line = load.addr_fn(0, 0)[0]
            regions.add(line // REGION_STRIDE)
        assert len(regions) == len(loads)

    def test_reuse_confined_to_footprint(self):
        app = get_app("RAY")  # reuse pattern, footprint 0.7 x L2
        cfg = self.config()
        program = build_program(app, cfg, total_warps=8)
        load = next(i for i in program.body
                    if i.kind is OpKind.LOAD and i.space is MemSpace.GLOBAL)
        l2_lines = cfg.l2_size // cfg.line_size
        base = REGION_STRIDE
        for w in range(8):
            for it in range(10):
                for line in load.addr_fn(w, it):
                    assert 0 <= line - (line // REGION_STRIDE) * REGION_STRIDE \
                        <= int(0.7 * l2_lines) + 64

    def test_addresses_deterministic(self):
        app = get_app("BFS")
        p1 = build_program(app, self.config(), 8)
        p2 = build_program(app, self.config(), 8)
        l1 = next(i for i in p1.body if i.kind is OpKind.LOAD)
        l2 = next(i for i in p2.body if i.kind is OpKind.LOAD)
        assert l1.addr_fn(3, 7) == l2.addr_fn(3, 7)


class TestKernelConstruction:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_every_app_builds_for_every_config(self, name):
        app = get_app(name)
        for config in (GPUConfig.small(), GPUConfig.medium(), GPUConfig()):
            kernel = build_kernel(app, config)
            assert kernel.n_blocks >= 1
            assert kernel.warps_per_block == app.warps_per_block

    def test_waves_scale_grid(self):
        app = get_app("PVC")
        one = build_kernel(app, GPUConfig.small(), TraceScale(waves=1.0))
        two = build_kernel(app, GPUConfig.small(), TraceScale(waves=2.0))
        assert two.n_blocks == 2 * one.n_blocks

    def test_unknown_pattern_rejected(self):
        from dataclasses import replace

        app = get_app("PVC")
        bad = replace(app, body=(OpSpec("load", pattern="zigzag"),))
        with pytest.raises(ValueError):
            build_kernel(bad, GPUConfig.small())

    def test_unknown_op_rejected(self):
        from dataclasses import replace

        app = get_app("PVC")
        bad = replace(app, body=(OpSpec("dance"),))
        with pytest.raises(ValueError):
            build_kernel(bad, GPUConfig.small())
