"""Property tests for the DL/HPC value generators.

The ``fp32_nearzero`` / ``fp32_weights`` / ``fp32_smooth`` patterns back
the ATTN and ST3D app profiles, so their value-level claims (finite
FP32, bounded magnitudes, quantized vocabularies, smooth drift) and
their compression-ratio profile per algorithm are pinned here with
seeded property tests. The ratio bounds are deliberately loose around
measured values — they catch a generator that stops producing the
intended structure, not ordinary noise across seeds.
"""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import make_algorithm
from repro.workloads.data_patterns import make_line_generator

DLHPC_PATTERNS = ("fp32_nearzero", "fp32_weights", "fp32_smooth")
ALGORITHMS = ("bdi", "fpc", "cpack", "fvc", "bestofall")


def _gen(pattern, line_size=128, seed=12345):
    return make_line_generator({pattern: 1.0}, line_size, seed=seed)


def _words(data):
    return struct.unpack(f"<{len(data) // 4}f", data)


def _ratio(pattern, algorithm, lines=120, line_size=128, seed=12345):
    gen = _gen(pattern, line_size, seed)
    algo = make_algorithm(algorithm, line_size)
    total = sum(algo.compress(gen(i)).size_bytes for i in range(lines))
    return line_size * lines / total


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.sampled_from(DLHPC_PATTERNS),
    line=st.integers(min_value=0, max_value=1 << 40),
    seed=st.integers(min_value=1, max_value=1 << 20),
    size=st.sampled_from([64, 128, 256]),
)
def test_deterministic_sized_finite(pattern, line, seed, size):
    """Same (seed, line) -> same bytes; right length; finite FP32."""
    gen = _gen(pattern, size, seed)
    data = gen(line)
    assert data == gen(line)
    assert len(data) == size
    for value in _words(data):
        assert math.isfinite(value)


@settings(max_examples=25, deadline=None)
@given(
    pattern=st.sampled_from(DLHPC_PATTERNS),
    line=st.integers(min_value=0, max_value=1 << 40),
    seed=st.integers(min_value=1, max_value=1 << 20),
)
def test_magnitude_bounds(pattern, line, seed):
    """Every generator stays inside its documented magnitude band."""
    bounds = {
        "fp32_nearzero": 0.5,   # exponent band tops out below 2^-1
        "fp32_weights": 0.5,    # |w| <= ~0.25 after quantization
        "fp32_smooth": 8.0,     # field magnitude 0.25 .. 4
    }
    for value in _words(_gen(pattern, 128, seed)(line)):
        assert abs(value) < bounds[pattern]


class TestNearzero:
    def test_zero_fraction_near_target(self):
        gen = _gen("fp32_nearzero")
        words = [w for i in range(200) for w in _words(gen(i))]
        zero_fraction = sum(1 for w in words if w == 0.0) / len(words)
        assert 0.45 < zero_fraction < 0.75

    def test_nonzero_words_positive_small(self):
        gen = _gen("fp32_nearzero")
        nonzero = [w for i in range(50) for w in _words(gen(i)) if w]
        assert nonzero, "generator produced only zeros"
        assert all(0.0 < w < 0.5 for w in nonzero)

    def test_compression_profile(self):
        # Measured: fpc 2.05, cpack 2.17, fvc 2.04, bdi 1.0.
        assert _ratio("fp32_nearzero", "fpc") > 1.5
        assert _ratio("fp32_nearzero", "cpack") > 1.5
        assert _ratio("fp32_nearzero", "bestofall") > 1.5


class TestWeights:
    def test_per_line_vocabulary_is_small(self):
        gen = _gen("fp32_weights")
        for i in range(50):
            assert len(set(_words(gen(i)))) <= 8

    def test_quantized_mantissas(self):
        gen = _gen("fp32_weights")
        for i in range(30):
            for (bits,) in struct.iter_unpack("<I", gen(i)):
                assert bits & 0xFFF == 0, "low mantissa bits not zeroed"

    def test_compression_profile(self):
        # Measured: cpack 2.47 (dictionary hits); bdi/fpc ~1.0 — the
        # codebook words differ in high bytes, so delta/prefix schemes
        # see nothing.
        assert _ratio("fp32_weights", "cpack") > 1.8
        assert _ratio("fp32_weights", "bestofall") > 1.8
        assert _ratio("fp32_weights", "bdi") < 1.2


class TestSmooth:
    def test_neighbouring_words_drift_slowly(self):
        gen = _gen("fp32_smooth")
        for i in range(30):
            words = _words(gen(i))
            for a, b in zip(words, words[1:]):
                assert abs(a - b) / max(abs(a), abs(b)) < 0.01

    def test_single_exponent_per_line(self):
        gen = _gen("fp32_smooth")
        for i in range(30):
            exponents = {
                (bits >> 23) & 0xFF
                for (bits,) in struct.iter_unpack("<I", gen(i))
            }
            assert len(exponents) == 1

    def test_compression_profile(self):
        # Measured: bdi 1.78 (B4D1/B4D2), cpack 1.39, fpc 1.0.
        assert _ratio("fp32_smooth", "bdi") > 1.4
        assert _ratio("fp32_smooth", "bestofall") > 1.4
        assert _ratio("fp32_smooth", "fpc") < 1.2


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("pattern", DLHPC_PATTERNS)
def test_round_trips_through_every_algorithm(pattern, algorithm):
    gen = _gen(pattern)
    algo = make_algorithm(algorithm, 128)
    for i in range(40):
        data = gen(i)
        assert algo.decompress(algo.compress(data)) == data
