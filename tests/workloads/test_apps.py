"""Consistency tests for the application profile pool."""

import pytest

from repro.workloads.apps import (
    APPLICATIONS,
    COMPRESSION_APPS,
    FIGURE1_APPS,
    get_app,
)
from repro.workloads.data_patterns import PATTERNS


class TestPoolStructure:
    def test_figure1_has_27_apps(self):
        assert len(FIGURE1_APPS) == 27
        assert len(set(FIGURE1_APPS)) == 27

    def test_compression_study_has_20_apps(self):
        assert len(COMPRESSION_APPS) == 20
        assert len(set(COMPRESSION_APPS)) == 20

    def test_all_named_apps_exist(self):
        for name in FIGURE1_APPS + COMPRESSION_APPS:
            assert name in APPLICATIONS

    def test_figure1_memory_majority(self):
        """Paper: 17 of the 27 studied applications are memory bound."""
        memory = [n for n in FIGURE1_APPS
                  if APPLICATIONS[n].category == "memory"]
        assert len(memory) == 17

    def test_compression_apps_are_flagged_compressible(self):
        for name in COMPRESSION_APPS:
            assert APPLICATIONS[name].compressible, name

    def test_incompressible_apps_exist(self):
        """sc and SCP carry incompressible data (Section 5)."""
        assert not APPLICATIONS["sc"].compressible
        assert not APPLICATIONS["SCP"].compressible

    def test_suites_match_paper(self):
        suites = {APPLICATIONS[n].suite for n in COMPRESSION_APPS}
        assert suites == {"cuda", "rodinia", "mars", "lonestar"}


class TestProfileValidity:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_data_mixture_valid(self, name):
        app = APPLICATIONS[name]
        assert app.data
        assert set(app.data) <= set(PATTERNS)
        assert all(w >= 0 for w in app.data.values())

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_resources_sane(self, name):
        app = APPLICATIONS[name]
        assert 1 <= app.warps_per_block <= 16
        assert 8 <= app.regs_per_thread <= 64
        assert app.iterations >= 1
        assert app.body

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_memory_bound_apps_have_memory_ops(self, name):
        app = APPLICATIONS[name]
        if app.category != "memory":
            return
        kinds = {spec.kind for spec in app.body}
        assert "load" in kinds

    def test_seeds_unique(self):
        seeds = [a.seed for a in APPLICATIONS.values()]
        assert len(seeds) == len(set(seeds))


class TestLookup:
    def test_get_app(self):
        assert get_app("PVC").name == "PVC"

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("doom")
