"""Unit and property tests for synthetic data generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    BdiCompressor,
    CPackCompressor,
    FpcCompressor,
)
from repro.workloads.data_patterns import PATTERNS, make_line_generator


class TestDeterminism:
    def test_same_address_same_bytes(self):
        gen = make_line_generator({"narrow8": 1.0}, 128, seed=3)
        assert gen(42) == gen(42)

    def test_different_addresses_differ(self):
        gen = make_line_generator({"narrow8": 1.0}, 128, seed=3)
        assert gen(1) != gen(2)

    def test_seed_changes_data(self):
        a = make_line_generator({"narrow8": 1.0}, 128, seed=1)
        b = make_line_generator({"narrow8": 1.0}, 128, seed=2)
        assert a(5) != b(5)

    def test_line_size_respected(self):
        for size in (32, 64, 128):
            gen = make_line_generator({"text": 1.0}, size, seed=1)
            assert len(gen(0)) == size


class TestPatternCompressibility:
    """Each pattern must favour the algorithm it is designed for."""

    def gen(self, pattern):
        return make_line_generator({pattern: 1.0}, 128, seed=9)

    def ratios(self, pattern, lines=60):
        gen = self.gen(pattern)
        algos = {
            "bdi": BdiCompressor(128),
            "fpc": FpcCompressor(128),
            "cpack": CPackCompressor(128),
        }
        out = {}
        for name, algo in algos.items():
            total = sum(algo.compress(gen(i)).size_bytes
                        for i in range(lines))
            out[name] = 128 * lines / total
        return out

    def test_zeros_compress_everywhere(self):
        ratios = self.ratios("zeros")
        assert all(r > 4 for r in ratios.values())

    def test_narrow8_favours_bdi(self):
        ratios = self.ratios("narrow8")
        assert ratios["bdi"] > 2.0
        assert ratios["bdi"] > ratios["fpc"]

    def test_small_int_suits_fpc(self):
        ratios = self.ratios("small_int")
        assert ratios["fpc"] > 1.5

    def test_dict_words_favour_cpack(self):
        ratios = self.ratios("dict_words")
        assert ratios["cpack"] > ratios["fpc"]
        assert ratios["cpack"] > 1.5

    def test_float32_suits_cpack_over_fpc(self):
        ratios = self.ratios("float32")
        assert ratios["cpack"] > ratios["fpc"]

    def test_random_is_incompressible(self):
        ratios = self.ratios("random")
        assert all(r < 1.15 for r in ratios.values())


class TestMixtures:
    def test_mixture_draws_multiple_patterns(self):
        gen = make_line_generator(
            {"zeros": 0.5, "random": 0.5}, 128, seed=5
        )
        lines = [gen(i) for i in range(80)]
        zero_lines = sum(1 for l in lines if not any(l))
        assert 10 < zero_lines < 70

    def test_weights_shift_distribution(self):
        mostly_zero = make_line_generator(
            {"zeros": 0.9, "random": 0.1}, 128, seed=5
        )
        mostly_random = make_line_generator(
            {"zeros": 0.1, "random": 0.9}, 128, seed=5
        )
        z1 = sum(1 for i in range(100) if not any(mostly_zero(i)))
        z2 = sum(1 for i in range(100) if not any(mostly_random(i)))
        assert z1 > z2


class TestValidation:
    def test_empty_mixture(self):
        with pytest.raises(ValueError):
            make_line_generator({}, 128)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            make_line_generator({"sparkles": 1.0}, 128)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            make_line_generator({"zeros": -1.0, "random": 2.0}, 128)


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.sampled_from(sorted(PATTERNS)),
    line=st.integers(min_value=0, max_value=1 << 40),
    size=st.sampled_from([32, 64, 128]),
)
def test_every_pattern_round_trips_through_every_algorithm(pattern, line, size):
    gen = make_line_generator({pattern: 1.0}, size, seed=2)
    data = gen(line)
    assert len(data) == size
    for algo in (BdiCompressor(size), FpcCompressor(size),
                 CPackCompressor(size)):
        assert algo.decompress(algo.compress(data)) == data
