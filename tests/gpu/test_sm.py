"""Unit tests for the SM pipeline: issue, hazards, classification."""

import heapq

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.sm import SM
from repro.gpu.stats import Slot
from repro.gpu.warp import BlockContext, WarpContext
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage


class SmHarness:
    """One SM with a manual clock and event queue."""

    def __init__(self, config=None, design=None):
        self.config = config or GPUConfig.small()
        design = design or designs.base()
        image = MemoryImage(
            lambda line: bytes(self.config.line_size), None,
            self.config.line_size,
        )
        self.memory = MemorySystem(self.config, design, image)
        self.events = []
        self.seq = 0
        self.retired = []
        self.sm = SM(
            sm_id=0,
            config=self.config,
            memory=self.memory,
            schedule=self._schedule,
            on_block_retired=self.retired.append,
        )
        self.cycle = 0

    def _schedule(self, cycle, fn):
        self.seq += 1
        heapq.heappush(self.events, (max(self.cycle + 1, int(cycle)),
                                     self.seq, fn))

    def add_block(self, programs):
        block = BlockContext(len(self.retired))
        for i, program in enumerate(programs):
            block.warps.append(WarpContext(i, block, program, age=i))
        self.sm.add_block(block)
        return block

    def run(self, cycles):
        issued = 0
        for _ in range(cycles):
            while self.events and self.events[0][0] <= self.cycle:
                _, _, fn = heapq.heappop(self.events)
                fn()
            issued += self.sm.tick(self.cycle)
            self.cycle += 1
        return issued


def prog(body, iterations=1):
    return Program(body=tuple(body), iterations=iterations)


def alu_i(dst=1, src=0, latency=4):
    return Instr(OpKind.ALU, latency=latency, dst_mask=reg_mask(dst),
                 src_mask=reg_mask(src))


class TestAluIssue:
    def test_independent_alus_issue_back_to_back(self):
        h = SmHarness()
        h.add_block([prog([alu_i(dst=1), alu_i(dst=2)])])
        h.run(2)
        assert h.sm.stats.parent_instructions == 2

    def test_dependent_alu_waits_for_writeback(self):
        h = SmHarness()
        h.add_block([prog([alu_i(dst=1, latency=4), alu_i(dst=2, src=1)])])
        h.run(1)
        assert h.sm.stats.parent_instructions == 1
        h.run(3)  # latency 4: result ready at cycle 4
        assert h.sm.stats.parent_instructions == 1
        h.run(2)
        assert h.sm.stats.parent_instructions == 2

    def test_data_stall_classified(self):
        h = SmHarness()
        h.add_block([prog([alu_i(dst=1, latency=4), alu_i(dst=2, src=1)])])
        h.run(3)
        assert h.sm.stats.slots[Slot.DATA_STALL] > 0

    def test_heavy_alu_structural_hazard(self):
        h = SmHarness()
        heavy = [prog([alu_i(dst=1, latency=12)], iterations=4)
                 for _ in range(4)]
        h.add_block(heavy)
        h.run(6)
        assert h.sm.stats.slots[Slot.COMPUTE_STALL] > 0

    def test_sfu_initiation_interval(self):
        h = SmHarness()
        sfu = Instr(OpKind.SFU, latency=20, dst_mask=reg_mask(2),
                    src_mask=reg_mask(0))
        h.add_block([prog([sfu], iterations=3) for _ in range(4)])
        h.run(4)
        # One SFU op per sfu_initiation_interval cycles SM-wide.
        assert h.sm.stats.sfu_ops == 1


class TestIdleAndActive:
    def test_idle_when_no_warps(self):
        h = SmHarness()
        h.run(3)
        assert h.sm.stats.slots[Slot.IDLE] == 3 * 2

    def test_active_counts_issues(self):
        h = SmHarness()
        h.add_block([prog([alu_i(dst=1), alu_i(dst=2), alu_i(dst=3)])])
        h.run(3)
        assert h.sm.stats.slots[Slot.ACTIVE] == 3


class TestGto:
    def test_greedy_sticks_to_one_warp(self):
        h = SmHarness()
        h.add_block([
            prog([alu_i(dst=1), alu_i(dst=2), alu_i(dst=3)], iterations=2),
            prog([alu_i(dst=1), alu_i(dst=2), alu_i(dst=3)], iterations=2),
        ])
        # Both warps land on scheduler 0 and 1 (round-robin), so give
        # scheduler 0 two warps by adding another block.
        h.add_block([
            prog([alu_i(dst=1), alu_i(dst=2), alu_i(dst=3)], iterations=2),
        ])
        h.run(1)
        current = h.sm._current[0]
        h.run(1)
        assert h.sm._current[0] is current  # stayed greedy


class TestGlobalMemory:
    def load_prog(self, lines, dst=3, consume=True, iterations=1):
        body = [Instr(OpKind.LOAD, dst_mask=reg_mask(dst),
                      src_mask=reg_mask(0), space=MemSpace.GLOBAL,
                      addr_fn=lambda w, i: tuple(lines))]
        if consume:
            body.append(alu_i(dst=1, src=dst))
        return prog(body, iterations=iterations)

    def test_load_blocks_consumer_until_fill(self):
        h = SmHarness()
        h.add_block([self.load_prog([100])])
        h.run(1)
        assert h.sm.stats.parent_instructions == 1
        h.run(40)  # well below the DRAM round trip
        assert h.sm.stats.parent_instructions == 1
        h.run(800)
        assert h.sm.stats.parent_instructions == 2

    def test_memory_stall_when_lsu_busy(self):
        h = SmHarness()
        # Two warps on the same scheduler issuing multi-line loads.
        h.add_block([self.load_prog([100, 200, 300, 400]) for _ in range(4)])
        h.run(2)
        assert h.sm.stats.slots[Slot.MEMORY_STALL] > 0

    def test_uncoalesced_load_occupies_lsu_longer(self):
        h1 = SmHarness()
        h1.add_block([self.load_prog([100]), self.load_prog([500])])
        h1.run(2)
        two_issued = h1.sm.stats.loads
        h2 = SmHarness()
        h2.add_block([self.load_prog([100, 228, 356, 484]),
                      self.load_prog([500])])
        h2.run(2)
        assert h2.sm.stats.loads < two_issued + 1 or \
            h2.sm.stats.slots[Slot.MEMORY_STALL] > 0

    def test_store_retires_without_waiting(self):
        h = SmHarness()
        body = [
            Instr(OpKind.STORE, latency=1, src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL, addr_fn=lambda w, i: (100,)),
            alu_i(dst=1),
        ]
        h.add_block([prog(body)])
        h.run(2)
        assert h.sm.stats.parent_instructions == 2
        assert h.memory.stats.l1_stores == 1

    def test_block_retires_after_drain(self):
        h = SmHarness()
        h.add_block([self.load_prog([100], consume=False)])
        h.run(2)
        assert not h.retired  # load still in flight
        h.run(800)
        assert len(h.retired) == 1


class TestSharedMemory:
    def test_shared_load_fixed_latency(self):
        h = SmHarness()
        body = [
            Instr(OpKind.LOAD, dst_mask=reg_mask(7), src_mask=reg_mask(0),
                  space=MemSpace.SHARED),
            alu_i(dst=1, src=7),
        ]
        h.add_block([prog(body)])
        h.run(h.config.shared_mem_latency + 3)
        assert h.sm.stats.parent_instructions == 2
        assert h.sm.stats.shared_accesses == 1


class TestBarrierExecution:
    def test_sync_blocks_until_all_arrive(self):
        h = SmHarness()
        sync_i = Instr(OpKind.SYNC, latency=1)
        # The slow warp's barrier waits on its in-flight ALU result.
        sync_dep = Instr(OpKind.SYNC, latency=1, src_mask=reg_mask(1))
        slow = prog([alu_i(dst=1, latency=4), sync_dep, alu_i(dst=2)])
        fast = prog([Instr(OpKind.NOP), sync_i, alu_i(dst=2)])
        h.add_block([fast, slow])
        h.run(2)
        # fast warp is at the barrier, slow still in its ALU chain.
        fast_warp = h.sm.resident_blocks[0].warps[0]
        assert fast_warp.at_barrier
        h.run(12)
        assert not fast_warp.at_barrier
        assert h.sm.stats.parent_instructions == 6


class TestFastForwardSupport:
    def test_replay_stall_accumulates(self):
        h = SmHarness()
        h.run(1)
        idle_before = h.sm.stats.slots[Slot.IDLE]
        h.sm.replay_stall(10)
        assert h.sm.stats.slots[Slot.IDLE] == idle_before + 10 * 2

    def test_next_wake_infinite_when_idle(self):
        h = SmHarness()
        h.run(1)
        assert h.sm.next_wake(1) == float("inf")


class TestSchedulerPolicies:
    def test_unknown_policy_rejected(self):
        from dataclasses import replace

        import pytest

        bad = replace(GPUConfig.small(), scheduler="fifo")
        with pytest.raises(ValueError):
            SmHarness(config=bad)

    def test_lrr_rotates_across_warps(self):
        from dataclasses import replace

        h = SmHarness(config=replace(GPUConfig.small(), scheduler="lrr"))
        # Three always-ready warps on scheduler 0 (add via two blocks).
        progs = [prog([alu_i(dst=1), alu_i(dst=2)], iterations=6)
                 for _ in range(4)]
        h.add_block(progs[:2])
        h.add_block(progs[2:])
        # Scheduler 0 hosts two always-ready warps; LRR must alternate
        # between them instead of sticking greedily.
        h.run(1)
        sequence = [h.sm._current[0]]
        for _ in range(3):
            h.run(1)
            sequence.append(h.sm._current[0])
        assert len(set(map(id, sequence))) == 2
        assert sequence[0] is not sequence[1]

    def test_gto_and_lrr_both_complete(self):
        from dataclasses import replace

        for policy in ("gto", "lrr"):
            h = SmHarness(config=replace(GPUConfig.small(),
                                         scheduler=policy))
            h.add_block([prog([alu_i(dst=1), alu_i(dst=2)], iterations=3)
                         for _ in range(4)])
            h.run(30)
            assert h.sm.stats.parent_instructions == 4 * 2 * 3, policy
