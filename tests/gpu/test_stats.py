"""Unit tests for statistics aggregation."""

import pytest

from repro.gpu.stats import SLOT_LABELS, SimStats, Slot, SmStats


class TestSmStats:
    def test_instruction_totals(self):
        sm = SmStats()
        sm.parent_instructions = 10
        sm.assist_instructions = 4
        assert sm.instructions == 14


class TestSimStats:
    def make(self):
        stats = SimStats(cycles=100)
        for k in range(2):
            sm = SmStats()
            sm.parent_instructions = 50
            sm.assist_instructions = 10
            sm.slots[Slot.ACTIVE] = 60
            sm.slots[Slot.MEMORY_STALL] = 80
            sm.slots[Slot.IDLE] = 60
            sm.alu_ops = 30
            stats.sms.append(sm)
        return stats

    def test_ipc_counts_parent_work_only(self):
        stats = self.make()
        assert stats.ipc == pytest.approx(100 / 100)
        assert stats.instructions == 120

    def test_ipc_zero_cycles(self):
        assert SimStats(cycles=0).ipc == 0.0

    def test_slot_breakdown_normalized(self):
        stats = self.make()
        breakdown = stats.slot_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown[Slot.ACTIVE] == pytest.approx(120 / 400)

    def test_empty_breakdown(self):
        assert sum(SimStats().slot_breakdown().values()) == 0.0

    def test_counters_for_energy_model(self):
        counters = self.make().counters()
        assert counters["alu_ops"] == 60
        assert counters["assist_instructions"] == 20
        assert counters["instructions"] == 120

    def test_all_slots_labelled(self):
        assert set(SLOT_LABELS) == set(Slot)
