"""Unit tests for warp and block contexts."""

from repro.gpu.isa import Program, alu, sync
from repro.gpu.warp import BlockContext, WarpContext


def make_warp(iterations=2, body=None, block=None):
    block = block if block is not None else BlockContext(0)
    program = Program(
        body=tuple(body) if body else (alu(), alu(dst=2, src=1)),
        iterations=iterations,
    )
    warp = WarpContext(0, block, program, age=0)
    block.warps.append(warp)
    return warp


class TestAdvance:
    def test_walks_body_and_iterations(self):
        warp = make_warp(iterations=2)
        assert warp.pc == 0 and warp.iteration == 0
        assert not warp.advance()
        assert warp.pc == 1
        assert not warp.advance()
        assert (warp.pc, warp.iteration) == (0, 1)
        assert not warp.advance()
        assert warp.advance()  # final instruction of final iteration
        assert warp.finished

    def test_drained_requires_no_outstanding(self):
        warp = make_warp(iterations=1)
        warp.advance()
        warp.advance()
        assert warp.finished
        warp.outstanding_mem = 1
        assert not warp.drained
        warp.outstanding_mem = 0
        assert warp.drained


class TestConsideration:
    def test_fresh_warp_considered(self):
        assert make_warp().can_consider()

    def test_finished_not_considered(self):
        warp = make_warp()
        warp.finished = True
        assert not warp.can_consider()

    def test_barrier_not_considered(self):
        warp = make_warp()
        warp.at_barrier = True
        assert not warp.can_consider()

    def test_assist_blocked_not_considered(self):
        warp = make_warp()
        warp.assist_block = 1
        assert not warp.can_consider()
        warp.assist_block = 0
        assert warp.can_consider()


class TestBarrier:
    def test_barrier_releases_when_all_arrive(self):
        block = BlockContext(0)
        warps = [make_warp(block=block) for _ in range(3)]
        assert not block.arrive_at_barrier(warps[0])
        assert warps[0].at_barrier
        assert not block.arrive_at_barrier(warps[1])
        assert block.arrive_at_barrier(warps[2])
        assert not any(w.at_barrier for w in warps)

    def test_finished_warps_do_not_block_barrier(self):
        block = BlockContext(0)
        warps = [make_warp(block=block) for _ in range(3)]
        warps[2].finished = True
        block.note_warp_finished()
        block.arrive_at_barrier(warps[0])
        assert block.arrive_at_barrier(warps[1])

    def test_barrier_reusable(self):
        block = BlockContext(0)
        warps = [make_warp(block=block) for _ in range(2)]
        block.arrive_at_barrier(warps[0])
        assert block.arrive_at_barrier(warps[1])
        block.arrive_at_barrier(warps[1])
        assert block.arrive_at_barrier(warps[0])


class TestBlockCompletion:
    def test_block_finishes_when_all_warps_do(self):
        block = BlockContext(0)
        warps = [make_warp(block=block) for _ in range(2)]
        assert not block.note_warp_finished()
        assert block.note_warp_finished()

    def test_drained(self):
        block = BlockContext(0)
        warps = [make_warp(block=block, iterations=1) for _ in range(2)]
        for w in warps:
            w.finished = True
        assert block.drained
        warps[0].outstanding_mem = 2
        assert not block.drained
