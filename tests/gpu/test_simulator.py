"""Integration tests for the top-level simulator."""

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import Simulator
from repro.gpu.stats import Slot
from repro.memory.image import MemoryImage


def plain_image(config):
    return MemoryImage(
        lambda line: bytes(config.line_size), None, config.line_size
    )


def alu_i(dst=1, src=0, latency=4):
    return Instr(OpKind.ALU, latency=latency, dst_mask=reg_mask(dst),
                 src_mask=reg_mask(src))


def make_kernel(body, iterations=4, n_blocks=4, warps_per_block=2, regs=16):
    return Kernel(
        name="test",
        program=Program(body=tuple(body), iterations=iterations),
        n_blocks=n_blocks,
        warps_per_block=warps_per_block,
        regs_per_thread=regs,
    )


def run(kernel, config=None, design=None):
    config = config or GPUConfig.small()
    design = design or designs.base()
    sim = Simulator(config, kernel, design, plain_image(config))
    return sim.run()


class TestCompletion:
    def test_all_instructions_execute(self):
        kernel = make_kernel([alu_i(dst=1), alu_i(dst=2)], iterations=3)
        result = run(kernel)
        expected = kernel.n_blocks * kernel.warps_per_block * 2 * 3
        assert result.stats.parent_instructions == expected
        assert not result.truncated

    def test_memory_kernel_completes(self):
        body = [
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL,
                  addr_fn=lambda w, i: (1000 + w * 64 + i,)),
            alu_i(dst=1, src=3),
        ]
        result = run(make_kernel(body, iterations=6))
        expected = 4 * 2 * 2 * 6
        assert result.stats.parent_instructions == expected
        assert result.memory.stats.dram_reads > 0

    def test_more_blocks_than_resident_capacity(self):
        kernel = make_kernel([alu_i()], iterations=2, n_blocks=40)
        result = run(kernel)
        assert result.stats.parent_instructions == 40 * 2 * 1 * 2
        blocks_done = sum(sm.blocks_finished for sm in result.stats.sms)
        assert blocks_done == 40

    def test_truncation_guard(self):
        config = GPUConfig.small()
        from dataclasses import replace

        tiny = replace(config, max_cycles=10)
        body = [
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL, addr_fn=lambda w, i: (w + i,)),
            alu_i(dst=1, src=3),
        ]
        result = run(make_kernel(body, iterations=50), config=tiny)
        assert result.truncated


class TestMetrics:
    def test_ipc_bounded_by_issue_width(self):
        kernel = make_kernel([alu_i(dst=1), alu_i(dst=2)], iterations=8,
                             n_blocks=12, warps_per_block=4)
        result = run(kernel)
        assert 0 < result.ipc <= GPUConfig.small().schedulers_per_sm * 3

    def test_slot_breakdown_sums_to_one(self):
        kernel = make_kernel([alu_i(dst=1)], iterations=4)
        result = run(kernel)
        total = sum(result.stats.slot_breakdown().values())
        assert total == pytest.approx(1.0)

    def test_compute_kernel_shows_no_memory_stalls(self):
        kernel = make_kernel([alu_i(dst=1), alu_i(dst=2)], iterations=8)
        result = run(kernel)
        breakdown = result.stats.slot_breakdown()
        assert breakdown[Slot.MEMORY_STALL] == 0.0

    def test_bandwidth_utilization_zero_without_memory(self):
        kernel = make_kernel([alu_i(dst=1)], iterations=4)
        result = run(kernel)
        assert result.bandwidth_utilization() == 0.0


class TestDeterminism:
    def test_repeat_runs_identical(self):
        body = [
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL,
                  addr_fn=lambda w, i: (1000 + (w * 37 + i * 11) % 500,)),
            alu_i(dst=1, src=3),
            alu_i(dst=2, src=1),
        ]
        first = run(make_kernel(body, iterations=5))
        second = run(make_kernel(body, iterations=5))
        assert first.cycles == second.cycles
        assert first.stats.parent_instructions == \
            second.stats.parent_instructions
        assert first.memory.stats.dram_reads == second.memory.stats.dram_reads


class TestFastForwardIdentity:
    """Fast-forwarding is an accounting shortcut, not a model change.

    The jump must resume on exactly the cycle the full-tick loop would
    next make progress on — this pins the ``next_wake(cycle - 1)``
    contract in ``Simulator._fast_forward`` (the caller's clock has
    already advanced past the zero-issue tick) against off-by-ones.
    Identity is contractual for designs without a CABA controller; the
    controller's utilization EMA samples *executed* cycles, so CABA
    designs define their semantics with fast-forward on.
    """

    @staticmethod
    def _fingerprint(sim, result):
        return repr(result.stats) + "".join(
            repr(sm.stats.__dict__) for sm in sim.sms
        )

    def _run_synthetic(self, fast_forward):
        body = [
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL,
                  addr_fn=lambda w, i: (1000 + (w * 37 + i * 11) % 500,)),
            alu_i(dst=1, src=3),
            alu_i(dst=2, src=1, latency=12),
        ]
        config = GPUConfig.small()
        sim = Simulator(
            config,
            make_kernel(body, iterations=6),
            designs.base(),
            plain_image(config),
            fast_forward=fast_forward,
        )
        result = sim.run()
        return result, self._fingerprint(sim, result)

    def test_synthetic_memory_kernel(self):
        full, full_key = self._run_synthetic(fast_forward=False)
        jumped, jumped_key = self._run_synthetic(fast_forward=True)
        assert jumped.cycles == full.cycles
        assert jumped_key == full_key

    def _run_workload(self, fast_forward, traced):
        from repro.core.params import CabaParams
        from repro.harness.runner import _make_caba_factory, build_image
        from repro.obs import RunObservation
        from repro.workloads.apps import get_app
        from repro.workloads.tracegen import TraceScale, build_kernel

        config = GPUConfig.small()
        scale = TraceScale(work=0.1)
        point = designs.base()
        profile = get_app("MM")
        image = build_image(profile, point, config, scale)
        kernel = build_kernel(profile, config, scale)
        factory, regs = _make_caba_factory(
            point, config, CabaParams(), plane=image.plane
        )
        obs = RunObservation.for_config(config) if traced else None
        sim = Simulator(
            config, kernel, point, image,
            caba_factory=factory,
            assist_regs_per_thread=regs,
            obs=obs,
            fast_forward=fast_forward,
        )
        result = sim.run()
        payload = obs.export() if traced else None
        return result, self._fingerprint(sim, result), payload

    @pytest.mark.parametrize("traced", [False, True])
    def test_workload_identity(self, traced):
        full, full_key, full_obs = self._run_workload(False, traced)
        jumped, jumped_key, jumped_obs = self._run_workload(True, traced)
        assert jumped.cycles == full.cycles
        assert jumped_key == full_key
        # The stall ledger charges skipped slots during a jump; traced
        # runs must attribute them to the same (category, warp) pairs
        # the full-tick loop would have.
        assert jumped_obs == full_obs
    def test_caba_design_requires_factory(self):
        config = GPUConfig.small()
        with pytest.raises(ValueError):
            Simulator(
                config,
                make_kernel([alu_i()]),
                designs.caba(),
                plain_image(config),
            )
