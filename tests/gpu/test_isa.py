"""Unit tests for the SIMT ISA and program representation."""

import pytest

from repro.gpu.isa import (
    ASSIST_REG_BASE,
    AssistProgram,
    Instr,
    MemSpace,
    OpKind,
    Program,
    alu,
    load,
    reg_mask,
    sfu,
    store,
    sync,
)


class TestRegMask:
    def test_single_register(self):
        assert reg_mask(0) == 1
        assert reg_mask(3) == 8

    def test_multiple_registers(self):
        assert reg_mask(0, 1, 2) == 0b111

    def test_assist_space(self):
        assert reg_mask(ASSIST_REG_BASE) == 1 << 32

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            reg_mask(64)
        with pytest.raises(ValueError):
            reg_mask(-1)


class TestBuilders:
    def test_alu_masks(self):
        i = alu(latency=4, dst=1, src=3)
        assert i.kind is OpKind.ALU
        assert i.dst_mask == reg_mask(1)
        assert i.src_mask == reg_mask(3)
        assert not i.is_memory

    def test_sfu(self):
        i = sfu()
        assert i.kind is OpKind.SFU
        assert i.latency == 20

    def test_load_defaults(self):
        fn = lambda w, i: (w,)
        i = load(fn, dst=4)
        assert i.kind is OpKind.LOAD
        assert i.space is MemSpace.GLOBAL
        assert i.addr_fn is fn
        assert i.is_memory

    def test_store_has_no_dst(self):
        i = store(lambda w, i: (w,), src=3)
        assert i.dst_mask == 0
        assert i.src_mask == reg_mask(3)

    def test_sync(self):
        assert sync().kind is OpKind.SYNC


class TestProgram:
    def test_length(self):
        p = Program(body=(alu(), alu()), iterations=5)
        assert len(p) == 10

    def test_needs_body(self):
        with pytest.raises(ValueError):
            Program(body=(), iterations=1)

    def test_needs_iterations(self):
        with pytest.raises(ValueError):
            Program(body=(alu(),), iterations=0)

    def test_memory_op_counters(self):
        fn = lambda w, i: (w,)
        p = Program(
            body=(load(fn), alu(), store(fn),
                  load(fn, space=MemSpace.SHARED)),
            iterations=1,
        )
        assert p.loads_per_iteration == 1  # shared loads excluded
        assert p.stores_per_iteration == 1


class TestAssistProgram:
    def test_length(self):
        p = AssistProgram(body=(alu(dst=33, src=32),), name="x")
        assert len(p) == 1

    def test_needs_body(self):
        with pytest.raises(ValueError):
            AssistProgram(body=(), name="x")

    def test_lane_bounds(self):
        with pytest.raises(ValueError):
            AssistProgram(body=(alu(),), name="x", lanes=0)
        with pytest.raises(ValueError):
            AssistProgram(body=(alu(),), name="x", lanes=33)
