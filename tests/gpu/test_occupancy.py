"""Unit tests for static occupancy / register allocation (Figure 2)."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.isa import Program, alu
from repro.gpu.kernel import Kernel
from repro.gpu.occupancy import OccupancyError, compute_occupancy


def kernel(warps=8, regs=16, smem=0):
    return Kernel(
        name="k",
        program=Program(body=(alu(),), iterations=1),
        n_blocks=8,
        warps_per_block=warps,
        regs_per_thread=regs,
        smem_per_block=smem,
    )


class TestLimits:
    def test_thread_limit(self):
        occ = compute_occupancy(GPUConfig(), kernel(warps=8, regs=8))
        # 1536 threads / 256 per block = 6 blocks.
        assert occ.blocks_per_sm == 6
        assert occ.limiting_factor == "threads"

    def test_block_limit(self):
        occ = compute_occupancy(GPUConfig(), kernel(warps=4, regs=8))
        # 1536/128 = 12 > 8 hard block limit.
        assert occ.blocks_per_sm == 8
        assert occ.limiting_factor == "blocks"

    def test_register_limit(self):
        occ = compute_occupancy(GPUConfig(), kernel(warps=8, regs=40))
        # 32768 / (40*256) = 3.2 -> 3 blocks.
        assert occ.blocks_per_sm == 3
        assert occ.limiting_factor == "registers"

    def test_shared_memory_limit(self):
        occ = compute_occupancy(
            GPUConfig(), kernel(warps=4, regs=8, smem=16 * 1024)
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "shared_memory"

    def test_unschedulable_kernel(self):
        with pytest.raises(OccupancyError):
            compute_occupancy(GPUConfig(), kernel(warps=8, regs=200))


class TestUnallocatedRegisters:
    def test_fraction_formula(self):
        occ = compute_occupancy(GPUConfig(), kernel(warps=8, regs=16))
        expected = 1 - (6 * 16 * 256) / 32768
        assert occ.unallocated_register_fraction == pytest.approx(expected)

    def test_full_allocation(self):
        occ = compute_occupancy(GPUConfig(), kernel(warps=8, regs=8))
        # 6 blocks * 2048 regs = 12288 of 32768.
        assert 0 < occ.unallocated_register_fraction < 1


class TestAssistRegisterPressure:
    def test_assist_registers_added_to_block_demand(self):
        base = compute_occupancy(GPUConfig(), kernel(warps=8, regs=20))
        with_assist = compute_occupancy(
            GPUConfig(), kernel(warps=8, regs=20), assist_regs_per_thread=8
        )
        assert with_assist.allocated_registers >= base.allocated_registers \
            or with_assist.blocks_per_sm < base.blocks_per_sm

    def test_heavy_assist_demand_reduces_occupancy(self):
        # 21 regs -> 6 blocks; 21+8 -> 32768/(29*256) = 4 blocks.
        base = compute_occupancy(GPUConfig(), kernel(warps=8, regs=21))
        pressured = compute_occupancy(
            GPUConfig(), kernel(warps=8, regs=21), assist_regs_per_thread=8
        )
        assert pressured.blocks_per_sm < base.blocks_per_sm

    def test_unallocated_headroom_absorbs_small_demand(self):
        """The paper's point: modest assist-warp register demand fits in
        the statically unallocated register space."""
        base = compute_occupancy(GPUConfig(), kernel(warps=8, regs=15))
        small = compute_occupancy(
            GPUConfig(), kernel(warps=8, regs=15), assist_regs_per_thread=4
        )
        assert small.blocks_per_sm == base.blocks_per_sm
