"""Unit tests for the machine configuration (Table 1)."""

import pytest

from repro.gpu.config import DramTiming, GPUConfig


class TestTable1Defaults:
    def test_core_organization(self):
        cfg = GPUConfig()
        assert cfg.n_sms == 15
        assert cfg.warps_per_sm == 48
        assert cfg.registers_per_sm == 32768
        assert cfg.schedulers_per_sm == 2
        assert cfg.scheduler == "gto"
        assert cfg.core_clock_ghz == 1.4

    def test_memory_system(self):
        cfg = GPUConfig()
        assert cfg.n_mcs == 6
        assert cfg.banks_per_mc == 16
        assert cfg.dram_bw_gbps == 177.4

    def test_caches(self):
        cfg = GPUConfig()
        assert cfg.l1_size == 16 * 1024 and cfg.l1_assoc == 4
        assert cfg.l2_size == 768 * 1024 and cfg.l2_assoc == 16

    def test_gddr5_timing(self):
        t = DramTiming()
        assert (t.tCL, t.tRP, t.tRC, t.tRAS) == (12, 12, 40, 28)
        assert (t.tRCD, t.tRRD, t.tCDLR, t.tWR) == (12, 6, 5, 12)

    def test_row_latencies(self):
        t = DramTiming()
        assert t.row_hit_latency == 12
        assert t.row_miss_latency == 36
        assert t.row_empty_latency == 24


class TestDerived:
    def test_bytes_per_cycle(self):
        cfg = GPUConfig()
        assert cfg.bytes_per_cycle_per_mc == pytest.approx(
            177.4 / 1.4 / 6, rel=1e-6
        )

    def test_burst_cycles(self):
        cfg = GPUConfig()
        assert cfg.burst_cycles == pytest.approx(32 / (177.4 / 1.4 / 6))

    def test_bursts_per_line(self):
        assert GPUConfig().bursts_per_line == 4

    def test_l1_sets(self):
        assert GPUConfig().l1_sets == 16 * 1024 // (128 * 4)

    def test_l2_sets_per_mc(self):
        cfg = GPUConfig()
        assert cfg.l2_sets_per_mc == (768 * 1024 // 6) // (128 * 16)


class TestVariants:
    def test_bandwidth_scaling(self):
        cfg = GPUConfig().with_bandwidth_scale(2.0)
        assert cfg.dram_bw_gbps == pytest.approx(354.8)
        assert cfg.burst_cycles == pytest.approx(GPUConfig().burst_cycles / 2)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            GPUConfig().with_bandwidth_scale(0)

    def test_small_preserves_sm_mc_pressure(self):
        """The scaled machine must keep at least the full config's
        SM-to-channel demand ratio so memory-bound apps stay bound."""
        full, small = GPUConfig(), GPUConfig.small()
        assert small.n_sms / small.n_mcs >= full.n_sms / full.n_mcs
        assert small.bytes_per_cycle_per_mc == pytest.approx(
            full.bytes_per_cycle_per_mc
        )

    def test_medium_is_between(self):
        small, medium, full = (
            GPUConfig.small(), GPUConfig.medium(), GPUConfig()
        )
        assert small.n_sms < medium.n_sms < full.n_sms
