"""Interval sampling engine (:mod:`repro.gpu.sampling`).

Structural guarantees only — the *accuracy* of sampled runs (≤2 % on
the figure metrics) is certified by ``repro check``'s sampling
differential and the ``cycle_loop_sampled`` bench gate on the full
Table 1 machine, which is far too slow for unit tests. What must hold
on any machine at any knob setting, and is pinned here:

* knob parsing and the apportionment helper,
* exact mode untouched by default (no ``REPRO_SAMPLE`` → no sampling),
* sampled runs execute every parent instruction (bit-exact totals),
* sampled runs are deterministic,
* every conservation invariant closes on sampled runs (traced or not),
* exact and sampled runs never collide in the run cache.
"""

import os
from contextlib import contextmanager

import pytest

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import (
    SampleConfig,
    apportion,
    sampling_enabled,
    _mem_suffixes,
    _suffix_counts,
)
from repro.harness.runner import RunSpec, clear_caches, run_app
from repro.workloads.apps import get_app
from repro.workloads.tracegen import TraceScale

#: Small machine + short period: several full sampling periods inside a
#: sub-second run. Accuracy at this operating point is irrelevant here.
SCALE = TraceScale(work=0.25, waves=0.25)
SAMPLE = SampleConfig(warmup=50, measure=100, skip=800)


@contextmanager
def _env(var: str, value: str | None):
    prior = os.environ.get(var)
    if value is None:
        os.environ.pop(var, None)
    else:
        os.environ[var] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = prior


def _run(app="PVC", design=None, sample=None, **kwargs):
    clear_caches()
    return run_app(app, design or designs.caba("bdi"), GPUConfig.small(),
                   scale=SCALE, use_cache=False, sample=sample, **kwargs)


# ----------------------------------------------------------------------
# Knob parsing
# ----------------------------------------------------------------------
def test_parse_defaults_and_triple():
    assert SampleConfig.parse("1") == SampleConfig()
    assert SampleConfig.parse("on") == SampleConfig()
    cfg = SampleConfig.parse("400:800:7000")
    assert (cfg.warmup, cfg.measure, cfg.skip) == (400, 800, 7000)
    assert cfg.period == 8200
    assert cfg.detail_fraction == pytest.approx(1200 / 8200)


@pytest.mark.parametrize("bad", ["2:3", "a:b:c", "nope", "1:2:3:4"])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        SampleConfig.parse(bad)


@pytest.mark.parametrize("kwargs", [
    {"warmup": -1}, {"measure": 0}, {"skip": 0},
])
def test_constructor_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        SampleConfig(**kwargs)


def test_from_env():
    for off in (None, "", "0", "off", "no"):
        with _env("REPRO_SAMPLE", off):
            assert SampleConfig.from_env() is None
            assert not sampling_enabled()
    with _env("REPRO_SAMPLE", "1"):
        assert SampleConfig.from_env() == SampleConfig()
        assert sampling_enabled()
    with _env("REPRO_SAMPLE", "50:100:800"):
        assert SampleConfig.from_env() == SampleConfig(50, 100, 800)


# ----------------------------------------------------------------------
# Apportionment
# ----------------------------------------------------------------------
def test_apportion_conserves_total_and_tracks_weights():
    shares = apportion(100, [1, 1, 2])
    assert sum(shares) == 100
    assert shares == [25, 25, 50]
    shares = apportion(7, [3, 1, 1])
    assert sum(shares) == 7
    assert shares[0] > shares[1]


def test_apportion_zero_weights_fall_to_last_bin():
    assert apportion(13, [0, 0, 0]) == [0, 0, 13]
    assert apportion(0, [5, 5]) == [0, 0]


def test_apportion_is_deterministic_on_ties():
    assert apportion(1, [1, 1, 1]) == apportion(1, [1, 1, 1])
    assert sum(apportion(2, [1, 1, 1])) == 2


# ----------------------------------------------------------------------
# Suffix tables
# ----------------------------------------------------------------------
def test_suffix_tables_cover_whole_body():
    program = get_app("PVC")  # profile; build the kernel's program
    from repro.workloads.tracegen import build_kernel

    kernel = build_kernel(program, GPUConfig.small(), SCALE)
    body = kernel.program.body
    tails = _suffix_counts(kernel.program)
    assert len(tails) == len(body) + 1
    assert tails[0][0] == len(body)
    assert tails[len(body)] == (0,) * 8
    mem = _mem_suffixes(kernel.program)
    # Each pc's memory suffix is a suffix of the whole-body list.
    assert all(mem[pc] == mem[0][len(mem[0]) - len(mem[pc]):]
               for pc in range(len(body) + 1))


# ----------------------------------------------------------------------
# Sampled simulation: structural contracts
# ----------------------------------------------------------------------
def test_sampled_run_executes_every_parent_instruction():
    exact = _run(sample=None, keep_raw=True)
    sampled = _run(sample=SAMPLE, keep_raw=True)
    # Parent instructions (the IPC numerator) are bit-exact; assist-warp
    # instructions are framework overhead and are not credited during
    # skips, so the combined total is *lower* on sampled CABA runs.
    assert sampled.raw.stats.parent_instructions == \
        exact.raw.stats.parent_instructions
    assert not sampled.truncated
    # The run actually sampled: extrapolated slots were charged and the
    # clock is an estimate, not the exact count.
    assert sampled.cycles != exact.cycles


def test_sampled_run_is_deterministic():
    first = _run(sample=SAMPLE)
    second = _run(sample=SAMPLE)
    assert (first.cycles, first.ipc, first.instructions) == \
        (second.cycles, second.ipc, second.instructions)
    assert first.slot_breakdown == second.slot_breakdown


def test_exact_mode_is_default_without_env():
    with _env("REPRO_SAMPLE", None):
        assert RunSpec("PVC", designs.base(), GPUConfig.small()).sample \
            is None


def test_extrapolated_slots_tagged_separately():
    exact = _run(sample=None, keep_raw=True)
    sampled = _run(sample=SAMPLE, keep_raw=True)
    assert exact.raw.stats.extrapolated_slots == 0
    assert sampled.raw.stats.extrapolated_slots > 0
    # Extrapolated slots are a subset of (not in addition to) the total
    # attribution: per-SM slots still sum to cycles x schedulers.
    config = GPUConfig.small()
    for sm in sampled.raw.stats.sms:
        assert sum(sm.slots) == \
            sampled.raw.stats.cycles * config.schedulers_per_sm


@pytest.mark.parametrize("design_name", ["base", "caba-bdi"])
def test_sampled_conservation_invariants(design_name):
    """Every accounting identity the exact simulator guarantees must
    survive sampling — traced, so the ledger reconciliation (including
    the EXTRAP_WARP charges) is part of the contract."""
    from repro.verify.invariants import _check_run

    design = designs.base() if design_name == "base" \
        else designs.caba("bdi")
    result = _run(design=design, sample=SAMPLE, keep_raw=True, trace=True)
    for check in _check_run("sampled", result, GPUConfig.small()):
        assert check.passed, f"{check.name}: {check.detail}"


def test_traced_and_untraced_sampled_runs_agree():
    untraced = _run(sample=SAMPLE, keep_raw=True)
    traced = _run(sample=SAMPLE, keep_raw=True, trace=True)
    assert traced.cycles == untraced.cycles
    assert [list(sm.slots) for sm in traced.raw.stats.sms] == \
        [list(sm.slots) for sm in untraced.raw.stats.sms]


# ----------------------------------------------------------------------
# Cache identity
# ----------------------------------------------------------------------
def test_cache_key_distinguishes_sampling_modes():
    exact = RunSpec("PVC", designs.base(), GPUConfig.small(), sample=None)
    sampled = RunSpec("PVC", designs.base(), GPUConfig.small(),
                      sample=SAMPLE)
    assert exact != sampled
    assert exact.canonical() != sampled.canonical()
    other = RunSpec("PVC", designs.base(), GPUConfig.small(),
                    sample=SampleConfig(50, 100, 900))
    assert sampled.canonical() != other.canonical()
