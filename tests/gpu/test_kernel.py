"""Unit tests for kernel launch descriptions."""

import pytest

from repro.gpu.isa import Program, alu
from repro.gpu.kernel import Kernel


def make(**kwargs):
    defaults = dict(
        name="k",
        program=Program(body=(alu(),), iterations=1),
        n_blocks=4,
        warps_per_block=8,
        regs_per_thread=16,
    )
    defaults.update(kwargs)
    return Kernel(**defaults)


class TestDerived:
    def test_threads_per_block(self):
        assert make().threads_per_block == 256

    def test_total_warps(self):
        assert make().total_warps == 32

    def test_regs_per_block(self):
        assert make().regs_per_block == 16 * 256

    def test_warp_linear_index_unique(self):
        kernel = make()
        seen = {
            kernel.warp_linear_index(b, w)
            for b in range(kernel.n_blocks)
            for w in range(kernel.warps_per_block)
        }
        assert len(seen) == kernel.total_warps


class TestValidation:
    def test_needs_blocks(self):
        with pytest.raises(ValueError):
            make(n_blocks=0)

    def test_needs_warps(self):
        with pytest.raises(ValueError):
            make(warps_per_block=0)

    def test_needs_registers(self):
        with pytest.raises(ValueError):
            make(regs_per_thread=0)

    def test_no_negative_smem(self):
        with pytest.raises(ValueError):
            make(smem_per_block=-1)
