"""SoA-vs-reference equivalence suite.

``REPRO_SOA`` selects between the vectorized warp-state core (numpy
structure-of-arrays screen, memoized scans) and the pure-Python
reference scan. The two are contractually byte-identical: same cycle
counts, same per-SM slot accounting, same memory traffic, same figures.
This suite pins that contract three ways:

* the reference mode must reproduce ``tests/fixtures/golden_stats.json``
  byte-exactly (the fixture pins the default mode, so transitivity
  gives SoA == reference over the full 3-app x 5-algorithm matrix);
* both modes are compared head to head on representative workload runs,
  down to the per-SM slot counters;
* hypothesis-fuzzed kernels are run in both modes and compared.

CI runs the whole test suite once per mode (``REPRO_SOA=0`` leg); this
file is the targeted cross-mode check that works within a single leg.
"""

import json
import os
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import design as designs
from repro.gpu import soa as soa_mod
from repro.gpu.config import GPUConfig
from repro.harness.runner import clear_caches, run_app
from repro.workloads.tracegen import TraceScale

from tests.gpu.test_simulator_fuzz import bodies, run_program
from tests.harness.test_golden_stats import (
    APPS,
    ALGORITHMS,
    FIXTURE,
    SCALE,
    _design_for,
    _snapshot,
)

has_numpy = soa_mod.np is not None


@contextmanager
def soa_mode(flag: str):
    """Force ``REPRO_SOA`` for the simulations inside the block."""
    prior = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = flag
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = prior


def _fingerprint(result):
    """Cross-mode comparable summary of a raw simulation result."""
    return {
        "cycles": result.cycles,
        "parent_instructions": result.stats.parent_instructions,
        "assist_instructions": result.stats.assist_instructions,
        "slots": [list(sm.slots) for sm in result.stats.sms],
        "dram_reads": result.memory.stats.dram_reads,
        "dram_writes": result.memory.stats.dram_writes,
    }


# ----------------------------------------------------------------------
# Reference mode vs. the golden fixture (full app/algorithm matrix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("app", APPS)
def test_reference_mode_matches_golden(app, algorithm):
    """The pure-Python scan reproduces the pinned stats byte-exactly.

    The fixture is (re)generated under the default mode — SoA wherever
    numpy is available — so this closes the loop: reference == golden
    == SoA for every (app, algorithm) cell.
    """
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("fixture is being regenerated")
    golden = json.loads(Path(FIXTURE).read_text())
    key = f"{app}/{algorithm}"
    assert key in golden, f"fixture has no entry for {key}"
    with soa_mode("0"):
        clear_caches()
        run = run_app(app, _design_for(algorithm), GPUConfig.small(),
                      scale=SCALE, use_cache=False)
    assert _snapshot(run) == golden[key]


# ----------------------------------------------------------------------
# Head-to-head on representative workloads (per-SM granularity)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not has_numpy, reason="SoA mode needs numpy")
@pytest.mark.parametrize("app,algorithm", [
    ("PVC", "bdi"),        # memory-bound, assist warps + decompression
    ("MM", "none"),        # compute-leaning baseline
    ("CONS", "bestofall"), # store-heavy, composed algorithm
])
def test_modes_agree_head_to_head(app, algorithm):
    scale = TraceScale(work=0.25, waves=0.25)
    prints = {}
    for flag in ("0", "1"):
        with soa_mode(flag):
            clear_caches()
            run = run_app(app, _design_for(algorithm), GPUConfig.small(),
                          scale=scale, use_cache=False, keep_raw=True)
        prints[flag] = _fingerprint(run.raw)
        prints[flag]["stats_repr"] = repr(run.raw.stats)
    assert prints["0"] == prints["1"]


# ----------------------------------------------------------------------
# Stale-screen fallback
# ----------------------------------------------------------------------
@pytest.mark.skipif(not has_numpy, reason="SoA mode needs numpy")
def test_stale_seq_counter_falls_back_to_reference_scan(monkeypatch):
    """A screen invalidated between compute and use must push the SM
    onto the reference scan with byte-identical results.

    The per-scheduler seq counters are the SoA core's only correctness
    valve: any mutation of screen-visible state invalidates the batch
    result and the scheduler re-scans in Python. Force the stale path
    directly — bump half the schedulers' counters after every screen is
    computed — and pin that the run is indistinguishable from a clean
    SoA run (and hence from the reference mode)."""
    scale = TraceScale(work=0.25, waves=0.25)
    design = _design_for("bdi")

    def run_once():
        clear_caches()
        return run_app("PVC", design, GPUConfig.small(), scale=scale,
                       use_cache=False, keep_raw=True).raw

    with soa_mode("1"):
        clean = _fingerprint(run_once())

    real_screen = soa_mod.SoAState.screen
    fallbacks = [0]

    def stale_screen(self, gid, cycle):
        real_screen(self, gid, cycle)  # compute + snapshot this cycle
        if gid % 2 == 0:
            # Mutation-after-compute: exactly what an event callback
            # flipping a scoreboard bit between the batch pass and this
            # scheduler's turn would do.
            self.seq[gid] += 1
        codes = real_screen(self, gid, cycle)
        if codes is None:
            fallbacks[0] += 1
        return codes

    monkeypatch.setattr(soa_mod.SoAState, "screen", stale_screen)
    with soa_mode("1"):
        stale = _fingerprint(run_once())
    monkeypatch.undo()

    assert fallbacks[0] > 0, "stale path never exercised"
    assert stale == clean


# ----------------------------------------------------------------------
# Fuzzed kernels in both modes
# ----------------------------------------------------------------------
@pytest.mark.skipif(not has_numpy, reason="SoA mode needs numpy")
@settings(max_examples=10, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=3))
def test_fuzzed_programs_agree_across_modes(kinds, iterations):
    with soa_mode("0"):
        reference = run_program(kinds, iterations, designs.base())
    with soa_mode("1"):
        vectorized = run_program(kinds, iterations, designs.base())
    assert _fingerprint(vectorized) == _fingerprint(reference)


@pytest.mark.skipif(not has_numpy, reason="SoA mode needs numpy")
@settings(max_examples=6, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=3))
def test_fuzzed_caba_runs_agree_across_modes(kinds, iterations):
    """Assist-warp machinery (never SoA-mirrored) must not disturb the
    parent warps' vectorized screen."""
    from repro.core.controller import CabaController
    from repro.core.params import CabaParams
    from repro.core.subroutines import SubroutineLibrary
    from repro.gpu.kernel import Kernel
    from repro.gpu.isa import Program
    from repro.gpu.simulator import Simulator
    from repro.memory.image import MemoryImage
    from tests.gpu.test_simulator_fuzz import _instr

    def run_once():
        config = GPUConfig.small()
        body = tuple(_instr(kind, salt=i) for i, kind in enumerate(kinds))
        kernel = Kernel(
            name="fuzz-caba",
            program=Program(body=body, iterations=iterations),
            n_blocks=3,
            warps_per_block=2,
            regs_per_thread=16,
        )
        from repro.compression import make_algorithm
        algo = make_algorithm("bdi", config.line_size)
        image = MemoryImage(
            lambda line: bytes(config.line_size), algo, config.line_size
        )
        library = SubroutineLibrary(line_size=config.line_size)

        def factory(sm):
            return CabaController(sm, CabaParams(), library, "bdi")

        sim = Simulator(
            config, kernel, designs.caba("bdi"), image,
            caba_factory=factory,
            assist_regs_per_thread=library.register_demand("bdi"),
        )
        return sim.run()

    with soa_mode("0"):
        reference = run_once()
    with soa_mode("1"):
        vectorized = run_once()
    assert _fingerprint(vectorized) == _fingerprint(reference)
