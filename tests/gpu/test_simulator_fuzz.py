"""Property-based fuzzing of the simulator with random programs.

Generates random (but well-formed) warp programs and checks the
system-level invariants: every run terminates, executes exactly the
expected dynamic instruction count, and is deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import Simulator
from repro.memory.image import MemoryImage
from repro.obs import RunObservation


def _instr(kind: str, salt: int) -> Instr:
    if kind == "alu":
        return Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
                     src_mask=reg_mask(3))
    if kind == "heavy":
        return Instr(OpKind.ALU, latency=12, dst_mask=reg_mask(2),
                     src_mask=reg_mask(1))
    if kind == "sfu":
        return Instr(OpKind.SFU, latency=20, dst_mask=reg_mask(2),
                     src_mask=reg_mask(1))
    if kind == "shared":
        return Instr(OpKind.LOAD, dst_mask=reg_mask(7),
                     src_mask=reg_mask(0), space=MemSpace.SHARED)
    if kind == "load":
        return Instr(
            OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
            space=MemSpace.GLOBAL,
            addr_fn=lambda w, i, s=salt: ((w * 37 + i * 11 + s) % 400,),
        )
    if kind == "store":
        return Instr(
            OpKind.STORE, latency=1, src_mask=reg_mask(1),
            space=MemSpace.GLOBAL,
            addr_fn=lambda w, i, s=salt: (1000 + (w * 13 + i * 7 + s) % 300,),
        )
    raise AssertionError(kind)


bodies = st.lists(
    st.sampled_from(["alu", "alu", "heavy", "sfu", "shared", "load",
                     "store"]),
    min_size=1,
    max_size=8,
)


def run_program(kinds, iterations, design, trace=False):
    config = GPUConfig.small()
    body = tuple(_instr(kind, salt=i) for i, kind in enumerate(kinds))
    kernel = Kernel(
        name="fuzz",
        program=Program(body=body, iterations=iterations),
        n_blocks=3,
        warps_per_block=2,
        regs_per_thread=16,
    )
    image = MemoryImage(lambda line: bytes(128), None, 128)
    obs = RunObservation.for_config(config) if trace else None
    return Simulator(config, kernel, design, image, obs=obs).run()


@settings(max_examples=15, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=4))
def test_random_programs_terminate_and_conserve_work(kinds, iterations):
    result = run_program(kinds, iterations, designs.base())
    assert not result.truncated
    expected = 3 * 2 * len(kinds) * iterations
    assert result.stats.parent_instructions == expected


@settings(max_examples=8, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=3))
def test_random_programs_deterministic(kinds, iterations):
    first = run_program(kinds, iterations, designs.base())
    second = run_program(kinds, iterations, designs.base())
    assert first.cycles == second.cycles
    assert first.memory.stats.dram_reads == second.memory.stats.dram_reads


@settings(max_examples=8, deadline=None)
@given(kinds=bodies)
def test_slot_accounting_complete(kinds):
    """Every (cycle, scheduler) pair is classified exactly once."""
    result = run_program(kinds, 2, designs.base())
    config = GPUConfig.small()
    for sm_stats in result.stats.sms:
        assert sum(sm_stats.slots) == result.cycles * config.schedulers_per_sm


@settings(max_examples=10, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=3))
def test_ledger_invariants_on_random_programs(kinds, iterations):
    """The stall ledger stays complete, non-negative and reconciled with
    the coarse slot stats for arbitrary well-formed programs."""
    result = run_program(kinds, iterations, designs.base(), trace=True)
    ledger = result.obs.ledger
    config = GPUConfig.small()
    for sm_id, sm_stats in enumerate(result.stats.sms):
        counts = ledger.sm_counts[sm_id]
        assert all(count >= 0 for count in counts)
        assert sum(counts) == result.cycles * config.schedulers_per_sm
        assert ledger.slot_view(sm_id) == list(sm_stats.slots)
        for row in ledger.warp_counts[sm_id].values():
            assert all(count >= 0 for count in row)


@settings(max_examples=8, deadline=None)
@given(kinds=bodies, iterations=st.integers(min_value=1, max_value=3))
def test_tracing_preserves_simulation_outcome(kinds, iterations):
    """Attaching the observability layer never changes what happens."""
    plain = run_program(kinds, iterations, designs.base())
    traced = run_program(kinds, iterations, designs.base(), trace=True)
    assert traced.cycles == plain.cycles
    assert traced.stats.parent_instructions == plain.stats.parent_instructions
    assert traced.memory.stats.dram_reads == plain.memory.stats.dram_reads
    for t_sm, p_sm in zip(traced.stats.sms, plain.stats.sms):
        assert list(t_sm.slots) == list(p_sm.slots)
