"""Tests for the prefetching extension (Section 7.2)."""

import pytest

from repro.core.prefetch import (
    PrefetchController,
    PrefetchParams,
    prefetch_program,
)
from repro.gpu.config import GPUConfig
from repro.harness.extensions import (
    build_latency_bound_kernel,
    prefetch_study,
    _run,
)


class TestProgram:
    def test_prefetch_subroutine_is_tiny(self):
        assert len(prefetch_program()) <= 3


class TestTraining:
    def make_controller(self):
        """Controller detached from a real SM for unit training tests."""

        class FakeSm:
            class config:
                schedulers_per_sm = 2

        return PrefetchController.__new__(PrefetchController), None

    def test_stride_detection_via_simulation(self):
        config = GPUConfig.small()
        kernel = build_latency_bound_kernel(config, iterations=30)
        controllers = []

        def factory(sm):
            c = PrefetchController(sm)
            controllers.append(c)
            return c

        _run(config, kernel, controller_factory=factory)
        assert sum(c.stats.trained_streams for c in controllers) > 0
        assert sum(c.stats.prefetches_issued for c in controllers) > 0


class TestEndToEnd:
    def test_prefetching_speeds_up_latency_bound_kernel(self):
        config = GPUConfig.small()
        kernel = build_latency_bound_kernel(config, iterations=40)
        base = _run(config, kernel)
        run = _run(
            config, kernel,
            controller_factory=lambda sm: PrefetchController(sm),
        )
        assert run.cycles < base.cycles

    def test_mshr_floor_respected(self):
        config = GPUConfig.small()
        kernel = build_latency_bound_kernel(config, iterations=40)
        controllers = []

        def factory(sm):
            c = PrefetchController(
                sm, PrefetchParams(mshr_floor=config.l1_mshrs)
            )
            controllers.append(c)
            return c

        run = _run(config, kernel, controller_factory=factory)
        # A floor equal to the MSHR count forbids every prefetch.
        assert sum(c.stats.prefetches_issued for c in controllers) == 0

    def test_study_reports_speedups(self):
        result = prefetch_study(distances=(2,))
        assert result.rows[0]["speedup"] > 1.0

    def test_work_unchanged_by_prefetching(self):
        config = GPUConfig.small()
        kernel = build_latency_bound_kernel(config, iterations=30)
        base = _run(config, kernel)
        run = _run(
            config, kernel,
            controller_factory=lambda sm: PrefetchController(sm),
        )
        assert (
            run.stats.parent_instructions == base.stats.parent_instructions
        )
