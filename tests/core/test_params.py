"""Validation tests for CABA framework parameters."""

import pytest

from repro.core.params import CabaParams


class TestDefaults:
    def test_paper_defaults(self):
        params = CabaParams()
        assert params.deploy_width == 2
        assert params.low_priority_slots == 2
        assert params.decompression_high_priority
        assert params.throttling_enabled


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"awt_capacity": 0},
            {"deploy_width": 0},
            {"low_priority_slots": 0},
            {"store_buffer_lines": 0},
            {"throttle_threshold": 0.0},
            {"throttle_threshold": 1.5},
            {"utilization_ema_alpha": 0.0},
            {"utilization_ema_alpha": 2.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CabaParams(**kwargs)

    def test_frozen(self):
        params = CabaParams()
        with pytest.raises(Exception):
            params.deploy_width = 4
