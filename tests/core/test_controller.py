"""Behavioural tests for the CABA controller (AWC/AWT/AWB)."""

import heapq

import pytest

from repro import design as designs
from repro.compression import BdiCompressor
from repro.core.controller import CabaController
from repro.core.params import CabaParams
from repro.core.subroutines import SubroutineLibrary
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.sm import SM
from repro.gpu.warp import BlockContext, WarpContext
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage


def narrow_line(line: int) -> bytes:
    base = 0x1122334455660000 + line * 3
    return b"".join((base + i).to_bytes(8, "little") for i in range(16))


class CabaHarness:
    """One SM with a CABA controller, manual clock and events."""

    def __init__(self, params=None, design=None):
        self.config = GPUConfig.small()
        design = design or designs.caba()
        image = MemoryImage(
            narrow_line, BdiCompressor(self.config.line_size),
            self.config.line_size,
        )
        self.memory = MemorySystem(self.config, design, image)
        self.events = []
        self.seq = 0
        self.retired = []
        self.sm = SM(0, self.config, self.memory,
                     schedule=self._schedule,
                     on_block_retired=self.retired.append)
        self.caba = CabaController(
            self.sm, params or CabaParams(), SubroutineLibrary(), "bdi"
        )
        self.sm.caba = self.caba
        self.cycle = 0

    def _schedule(self, cycle, fn):
        self.seq += 1
        heapq.heappush(self.events, (max(self.cycle + 1, int(cycle)),
                                     self.seq, fn))

    def add_warps(self, programs):
        block = BlockContext(0)
        for i, program in enumerate(programs):
            block.warps.append(WarpContext(i, block, program, age=i))
        self.sm.add_block(block)
        return block.warps

    def run(self, cycles):
        for _ in range(cycles):
            while self.events and self.events[0][0] <= self.cycle:
                _, _, fn = heapq.heappop(self.events)
                fn()
            self.sm.tick(self.cycle)
            self.cycle += 1


def load_consume_prog(line, iterations=1):
    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
              space=MemSpace.GLOBAL,
              addr_fn=lambda w, i, line=line: (line + w * 100 + i,)),
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
              src_mask=reg_mask(3)),
    )
    return Program(body=body, iterations=iterations)


def store_prog(line, iterations=1):
    body = (
        Instr(OpKind.ALU, latency=1, dst_mask=reg_mask(1),
              src_mask=reg_mask(0)),
        Instr(OpKind.STORE, latency=1, src_mask=reg_mask(1),
              space=MemSpace.GLOBAL,
              addr_fn=lambda w, i, line=line: (line + w * 100 + i,)),
    )
    return Program(body=body, iterations=iterations)


class TestDecompression:
    def test_load_gated_by_assist_warp(self):
        h = CabaHarness()
        h.add_warps([load_consume_prog(1000)])
        h.run(2)
        assert h.sm.stats.parent_instructions == 1
        h.run(1500)
        assert h.sm.stats.parent_instructions == 2
        assert h.caba.stats.decompressions_triggered == 1
        assert h.caba.stats.assist_warps_completed >= 1
        assert h.sm.stats.assist_instructions > 0

    def test_decompression_slower_than_ideal(self):
        h_caba = CabaHarness()
        h_caba.add_warps([load_consume_prog(1000)])
        h_caba.run(1500)
        h_ideal = CabaHarness(design=designs.ideal())
        # Ideal designs don't trigger assists; the controller stays idle.
        h_ideal.add_warps([load_consume_prog(1000)])
        h_ideal.run(1500)
        assert h_ideal.caba.stats.decompressions_triggered == 0

    def test_parent_blocked_while_decompressing(self):
        h = CabaHarness()
        warps = h.add_warps([load_consume_prog(1000)])
        h.run(2)
        # Find the cycle the fill lands, then check blocking.
        blocked_seen = False
        for _ in range(1500):
            h.run(1)
            if warps[0].assist_block > 0:
                blocked_seen = True
                break
        assert blocked_seen

    def test_merged_loads_share_one_assist(self):
        h = CabaHarness()
        program = load_consume_prog(1000)
        # Two warps loading the same line (warp index folded out).
        body = (
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL, addr_fn=lambda w, i: (7777,)),
            Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
                  src_mask=reg_mask(3)),
        )
        shared = Program(body=body, iterations=1)
        h.add_warps([shared, shared])
        h.run(1500)
        assert h.caba.stats.decompressions_triggered == 1
        assert h.sm.stats.parent_instructions == 4

    def test_serial_decompressions_per_parent(self):
        """Only one decompression instance per parent warp at a time
        (Section 3.2.2)."""
        h = CabaHarness()
        body = (
            Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
                  space=MemSpace.GLOBAL,
                  addr_fn=lambda w, i: (9000, 9100, 9200)),
            Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
                  src_mask=reg_mask(3)),
        )
        h.add_warps([Program(body=body, iterations=1)])
        h.run(2500)
        assert h.caba.stats.decompressions_triggered == 3
        assert h.sm.stats.parent_instructions == 2


class TestCompression:
    def test_stores_compressed_through_buffer(self):
        h = CabaHarness()
        h.add_warps([store_prog(2000, iterations=3)])
        h.run(800)
        h.caba.flush(h.cycle)
        stats = h.caba.stats
        assert stats.compressions_triggered >= 1
        assert stats.stores_released_compressed >= 1

    def test_buffer_overflow_releases_uncompressed(self):
        h = CabaHarness(params=CabaParams(store_buffer_lines=2))
        h.add_warps([store_prog(3000, iterations=12)])
        h.run(60)
        assert h.caba.stats.store_buffer_overflows > 0
        assert h.caba.stats.stores_released_uncompressed > 0

    def test_flush_drains_buffer(self):
        h = CabaHarness()
        h.add_warps([store_prog(4000, iterations=4)])
        h.run(30)
        h.caba.flush(h.cycle)
        assert h.caba.store_buffer_occupancy == 0

    def test_throttling_blocks_low_priority_spawn(self):
        h = CabaHarness(params=CabaParams(throttle_threshold=0.01,
                                          utilization_ema_alpha=1.0))
        h.add_warps([store_prog(5000, iterations=6)])
        h.run(100)
        # Constant issue activity with an absurdly low threshold keeps
        # compression throttled; nothing spawns while entries wait.
        assert h.caba.stats.throttled_cycles > 0

    def test_no_throttling_ablation(self):
        h = CabaHarness(params=CabaParams(throttling_enabled=False,
                                          throttle_threshold=0.01))
        h.add_warps([store_prog(6000, iterations=4)])
        h.run(800)
        h.caba.flush(h.cycle)
        assert h.caba.stats.throttled_cycles == 0
        assert h.caba.stats.stores_released_compressed >= 1


class TestAwtCapacity:
    def test_awt_full_queues_decompressions(self):
        h = CabaHarness(params=CabaParams(awt_capacity=1))
        h.add_warps([load_consume_prog(1000 + k) for k in range(4)])
        h.run(3000)
        assert h.caba.stats.awt_full_events >= 1
        # All loads eventually complete despite the tiny AWT.
        assert h.sm.stats.parent_instructions == 8


class TestLowPriorityScheduling:
    def test_low_priority_only_in_idle_slots(self):
        """Compression assist instructions must not displace parent
        issue: with busy parents, assist instruction count stays low
        until parents stall."""
        h = CabaHarness()
        h.add_warps([store_prog(8000, iterations=8)])
        h.run(1000)
        h.caba.flush(h.cycle)
        # Assist instructions issued while parent warps were idle.
        assert h.sm.stats.assist_instructions > 0
