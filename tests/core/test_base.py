"""Contract tests for the AssistController base class."""

import pytest

from repro.core.base import AssistController


class _Dummy(AssistController):
    pass


class TestDefaults:
    def setup_method(self):
        self.controller = _Dummy(sm=None)

    def test_no_work_by_default(self):
        assert not self.controller.has_pending_work()
        assert not self.controller.issue_high(0, 0)
        assert not self.controller.issue_low(0, 0)

    def test_tick_and_observe_are_noops(self):
        self.controller.tick(0)
        self.controller.observe(1, 2)
        self.controller.flush(0)
        self.controller.finish(None)

    def test_pending_decompression_false(self):
        assert not self.controller.pending_decompression(5)

    def test_unhandled_triggers_raise(self):
        with pytest.raises(NotImplementedError):
            self.controller.request_decompression(None, None, None, 0)
        with pytest.raises(NotImplementedError):
            self.controller.buffer_store(None, [], True, 0)
        with pytest.raises(NotImplementedError):
            self.controller.attach_to_decompression(0, None)

    def test_observation_hooks_are_noops(self):
        self.controller.on_global_load(None, [1], 0)
        self.controller.on_memo_point(None, 4, 0)
