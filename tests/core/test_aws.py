"""Unit tests for the Assist Warp Store."""

import pytest

from repro.core.aws import AssistWarpStore, AwsCapacityError
from repro.core.subroutines import bdi_compress, bdi_decompress


class TestRegistration:
    def test_register_and_lookup(self):
        aws = AssistWarpStore()
        sr_id = aws.register("decompress", "B8D1", bdi_decompress("B8D1"))
        stored = aws.lookup("decompress", "B8D1")
        assert stored.sr_id == sr_id
        assert stored.program.name == "bdi_dec_B8D1"

    def test_reregistration_is_idempotent(self):
        aws = AssistWarpStore()
        first = aws.register("compress", "bdi", bdi_compress())
        second = aws.register("compress", "bdi", bdi_compress())
        assert first == second
        assert aws.subroutine_count == 1

    def test_distinct_sr_ids(self):
        aws = AssistWarpStore()
        a = aws.register("decompress", "B8D1", bdi_decompress("B8D1"))
        b = aws.register("decompress", "ZEROS", bdi_decompress("ZEROS"))
        assert a != b

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            AssistWarpStore().lookup("decompress", "B8D1")

    def test_contains(self):
        aws = AssistWarpStore()
        assert not aws.contains("compress", "bdi")
        aws.register("compress", "bdi", bdi_compress())
        assert aws.contains("compress", "bdi")


class TestCapacity:
    def test_subroutine_count_limit(self):
        aws = AssistWarpStore(max_subroutines=2)
        aws.register("a", "1", bdi_decompress("ZEROS"))
        aws.register("a", "2", bdi_decompress("REPEAT"))
        with pytest.raises(AwsCapacityError):
            aws.register("a", "3", bdi_decompress("B8D1"))

    def test_instruction_storage_limit(self):
        aws = AssistWarpStore(max_instructions=5)
        aws.register("a", "1", bdi_decompress("ZEROS"))  # 3 instrs
        with pytest.raises(AwsCapacityError):
            aws.register("a", "2", bdi_decompress("REPEAT"))  # 4 more

    def test_instruction_accounting(self):
        aws = AssistWarpStore()
        program = bdi_decompress("ZEROS")
        aws.register("a", "1", program)
        assert aws.instructions_used == len(program)
