"""Unit tests for assist-warp subroutine generation."""

import pytest

from repro.core.subroutines import (
    REGISTER_DEMAND,
    SubroutineLibrary,
    bdi_compress,
    bdi_decompress,
    cpack_compress,
    cpack_decompress,
    fpc_compress,
    fpc_decompress,
)
from repro.gpu.isa import ASSIST_REG_BASE, MemSpace, OpKind


def uses_only_expected_spaces(program):
    return all(
        instr.space in (MemSpace.LOCAL_L1, MemSpace.SHARED)
        for instr in program.body
        if instr.kind in (OpKind.LOAD, OpKind.STORE)
    )


def writes_assist_registers_only(program):
    limit_mask = (1 << ASSIST_REG_BASE) - 1
    return all(
        instr.dst_mask & limit_mask == 0 for instr in program.body
    )


ALL_BUILDERS = [
    ("bdi_dec", lambda: bdi_decompress("B8D1")),
    ("bdi_dec_zeros", lambda: bdi_decompress("ZEROS")),
    ("bdi_dec_repeat", lambda: bdi_decompress("REPEAT")),
    ("bdi_comp", bdi_compress),
    ("fpc_dec", fpc_decompress),
    ("fpc_comp", fpc_compress),
    ("cpack_dec", cpack_decompress),
    ("cpack_comp", cpack_compress),
]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS)
class TestAllSubroutines:
    def test_nonempty(self, name, builder):
        assert len(builder()) >= 2

    def test_memory_ops_stay_on_chip(self, name, builder):
        assert uses_only_expected_spaces(builder())

    def test_no_parent_register_writes(self, name, builder):
        """Assist warps may read parent registers (live-ins) but write
        only their own provisioned slots."""
        assert writes_assist_registers_only(builder())

    def test_no_barriers(self, name, builder):
        assert all(i.kind is not OpKind.SYNC for i in builder().body)


class TestRelativeLengths:
    def test_bdi_decompression_is_shortest(self):
        """BDI's masked vector add maps best onto SIMT (Section 4.1.2);
        FPC's serial parse is the longest (Section 6.3)."""
        bdi = len(bdi_decompress("B8D1"))
        cpack = len(cpack_decompress())
        fpc = len(fpc_decompress())
        assert bdi < cpack < fpc

    def test_zeros_shorter_than_general(self):
        assert len(bdi_decompress("ZEROS")) < len(bdi_decompress("B8D1"))

    def test_wider_word_count_means_more_passes(self):
        narrow = bdi_decompress("B8D1", line_size=128)  # 16 words, 1 pass
        wide = bdi_decompress("B2D1", line_size=128)  # 64 words, 2 passes
        assert len(wide) > len(narrow)

    def test_compression_longer_than_decompression(self):
        assert len(bdi_compress()) > len(bdi_decompress("B8D1"))


class TestLibrary:
    def test_caches_programs(self):
        lib = SubroutineLibrary()
        assert lib.decompression("bdi", "B8D1") is lib.decompression(
            "bdi", "B8D1"
        )

    def test_dispatch_per_algorithm(self):
        lib = SubroutineLibrary()
        assert lib.decompression("fpc", "fpc").name == "fpc_dec"
        assert lib.decompression("cpack", "cpack").name == "cpack_dec"
        assert lib.compression("bdi").name == "bdi_comp"

    def test_bestofall_dispatches_on_encoding_prefix(self):
        lib = SubroutineLibrary()
        program = lib.decompression("bestofall", "bdi:B8D1")
        assert program.name == "bdi_dec_B8D1"
        program = lib.decompression("bestofall", "cpack:cpack")
        assert program.name == "cpack_dec"

    def test_register_demand(self):
        lib = SubroutineLibrary()
        for algo, demand in REGISTER_DEMAND.items():
            assert lib.register_demand(algo) == demand

    def test_unknown_algorithm(self):
        lib = SubroutineLibrary()
        with pytest.raises(ValueError):
            lib.register_demand("zip")
        with pytest.raises(ValueError):
            lib.decompression("zip", "x")
        with pytest.raises(ValueError):
            lib.compression("zip")
