"""Tests for the memoization extension (Section 7.1)."""

import pytest

from repro.core.memoization import (
    MemoParams,
    MemoizationController,
    memo_lookup_program,
    memo_result_load_program,
    memo_store_program,
)
from repro.gpu.config import GPUConfig
from repro.harness.extensions import (
    build_memo_kernel,
    make_signature_fn,
    memoization_study,
    _run,
)


class TestSubroutines:
    def test_lookup_probes_shared_memory(self):
        from repro.gpu.isa import MemSpace, OpKind

        program = memo_lookup_program()
        assert any(
            i.kind is OpKind.LOAD and i.space is MemSpace.SHARED
            for i in program.body
        )

    def test_store_writes_shared_memory(self):
        from repro.gpu.isa import MemSpace, OpKind

        program = memo_store_program()
        assert any(
            i.kind is OpKind.STORE and i.space is MemSpace.SHARED
            for i in program.body
        )

    def test_result_load_is_short(self):
        assert len(memo_result_load_program()) <= 3


class TestSignatureModel:
    def test_full_redundancy_shares_signatures(self):
        sig = make_signature_fn(1.0)
        assert sig(0, 5) == sig(7, 5)

    def test_zero_redundancy_unique_per_warp(self):
        sig = make_signature_fn(0.0)
        assert sig(0, 5) != sig(7, 5)

    def test_deterministic(self):
        sig = make_signature_fn(0.5)
        assert sig(3, 9) == sig(3, 9)


class TestEndToEnd:
    def test_redundancy_increases_speedup(self):
        config = GPUConfig.small()
        kernel = build_memo_kernel(config, iterations=20)
        base = _run(config, kernel)

        def run_with(redundancy):
            factory = lambda sm: MemoizationController(
                sm, make_signature_fn(redundancy)
            )
            return _run(config, kernel, controller_factory=factory)

        low = run_with(0.1)
        high = run_with(0.9)
        assert high.cycles < low.cycles
        assert high.cycles < base.cycles

    def test_work_is_conserved_or_skipped(self):
        """Instructions executed + instructions skipped must cover the
        full program."""
        config = GPUConfig.small()
        kernel = build_memo_kernel(config, iterations=15)
        controllers = []

        def factory(sm):
            c = MemoizationController(sm, make_signature_fn(0.8))
            controllers.append(c)
            return c

        run = _run(config, kernel, controller_factory=factory)
        skipped = sum(c.stats.regions_skipped_instructions
                      for c in controllers)
        total = kernel.total_warps * len(kernel.program)
        assert run.stats.parent_instructions + skipped == total

    def test_lut_hit_rate_tracks_redundancy(self):
        config = GPUConfig.small()
        kernel = build_memo_kernel(config, iterations=20)
        controllers = []

        def factory(sm):
            c = MemoizationController(sm, make_signature_fn(0.9))
            controllers.append(c)
            return c

        _run(config, kernel, controller_factory=factory)
        lookups = sum(c.stats.lookups for c in controllers)
        hits = sum(c.stats.hits for c in controllers)
        assert lookups > 0
        assert 0.5 < hits / lookups <= 1.0

    def test_study_shape(self):
        result = memoization_study(redundancies=(0.0, 0.9))
        assert len(result.rows) == 2
        assert result.rows[1]["speedup"] > result.rows[0]["speedup"]

    def test_lut_capacity_bounds_entries(self):
        config = GPUConfig.small()
        kernel = build_memo_kernel(config, iterations=20)
        controllers = []

        def factory(sm):
            c = MemoizationController(
                sm, make_signature_fn(0.0), MemoParams(lut_entries=8)
            )
            controllers.append(c)
            return c

        _run(config, kernel, controller_factory=factory)
        assert all(len(c._lut) <= 8 for c in controllers)
