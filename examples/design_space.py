#!/usr/bin/env python3
"""Design-space walk: the five Figure-7 designs and four algorithms.

For a small set of workloads with very different characters, compare
Base / HW-BDI-Mem / HW-BDI / CABA-BDI / Ideal-BDI (Figure 7/8/9) and
then swap the algorithm under CABA (Figure 10/11): Frequent Pattern
Compression, Base-Delta-Immediate, C-Pack and the per-line BestOfAll
oracle.

Run:
    python examples/design_space.py
"""

from repro import designs, geomean, run_app

#: Different bottleneck characters: BDI-friendly streaming (PVC),
#: dictionary-friendly irregular (MUM), interconnect-bound graph (bfs),
#: L2-resident (RAY).
APPS = ("PVC", "MUM", "bfs", "RAY")


def five_designs() -> None:
    print("=== Figure 7/8/9: the five designs ===")
    points = designs.figure7_designs()
    header = f"  {'app':6s}" + "".join(f"{p.name:>12s}" for p in points)
    print(header + f"{'BW (CABA)':>12s}{'E (CABA)':>10s}")
    speedups = {p.name: [] for p in points}
    for app in APPS:
        runs = {p.name: run_app(app, p) for p in points}
        base = runs["Base"]
        row = f"  {app:6s}"
        for p in points:
            s = runs[p.name].ipc / base.ipc
            speedups[p.name].append(s)
            row += f"{s:12.2f}"
        row += f"{runs['CABA-BDI'].bandwidth_utilization:12.1%}"
        row += f"{runs['CABA-BDI'].energy.total / base.energy.total:10.2f}"
        print(row)
    print("  " + "-" * (6 + 12 * len(points)))
    row = f"  {'geomean':6s}"
    for p in points:
        row += f"{geomean(speedups[p.name]):12.2f}"
    print(row)
    print("  paper: Base 1.00 | HW-BDI-Mem ~1.29 | HW-BDI ~1.44 | "
          "CABA-BDI 1.42 | Ideal-BDI ~1.46")
    print()


def four_algorithms() -> None:
    print("=== Figure 10/11: algorithm flexibility under CABA ===")
    algorithms = ("fpc", "bdi", "cpack", "bestofall")
    print(f"  {'app':6s}" + "".join(f"{a:>12s}" for a in algorithms)
          + "   (speedup / compression ratio)")
    for app in APPS:
        base = run_app(app, designs.base())
        row = f"  {app:6s}"
        for algo in algorithms:
            run = run_app(app, designs.caba(algo))
            row += f"  {run.ipc / base.ipc:4.2f}/{run.compression_ratio:4.2f}"
        print(row)
    print("  paper averages: FPC +20.7%, BDI +41.7%, C-Pack +35.2%; "
          "BestOfAll can beat all three.")


def main() -> None:
    five_designs()
    four_algorithms()


if __name__ == "__main__":
    main()
