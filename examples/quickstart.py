#!/usr/bin/env python3
"""Quickstart: CABA-based bandwidth compression on one application.

Reproduces the paper's headline experiment in miniature: run the PVC
workload (the application behind Figure 5's worked example) on the
baseline GPU and on the same GPU with CABA-BDI compression, and compare
performance, bandwidth and energy. Also walks through the Figure 5
cache-line example with the real BDI implementation.

Run:
    python examples/quickstart.py
"""

from repro import designs, run_app
from repro.compression import BdiCompressor


def figure5_example() -> None:
    """Compress the paper's example PVC cache line with BDI."""
    print("=== Figure 5: BDI on one PVC cache line ===")
    words = [
        0x00, 0x80001D000, 0x10, 0x80001D008,
        0x20, 0x80001D010, 0x30, 0x80001D018,
    ]
    data = b"".join(w.to_bytes(8, "little") for w in words)
    bdi = BdiCompressor(line_size=64)
    line = bdi.compress(data)
    print(f"  encoding        : {line.encoding}")
    print(f"  compressed size : {line.size_bytes} bytes "
          f"(paper: 17 bytes)")
    print(f"  saved space     : {line.line_size - line.size_bytes} bytes "
          f"(paper: 47 bytes)")
    assert bdi.decompress(line) == data
    print("  round trip      : exact")
    print()


def run_pvc() -> None:
    """Simulate PVC under Base and CABA-BDI and compare."""
    print("=== PVC: Base vs CABA-BDI (scaled machine) ===")
    base = run_app("PVC", designs.base())
    caba = run_app("PVC", designs.caba("bdi"))

    def show(label, run):
        print(f"  {label:9s} cycles={run.cycles:>8d}  ipc={run.ipc:6.3f}  "
              f"DRAM-busy={run.bandwidth_utilization:5.1%}  "
              f"energy={run.energy.total * 1e3:7.3f} mJ")

    show("Base", base)
    show("CABA-BDI", caba)
    print(f"  speedup            : {caba.ipc / base.ipc:.2f}x "
          f"(paper average: 1.42x, up to 2.6x)")
    print(f"  compression ratio  : {caba.compression_ratio:.2f}x "
          f"(paper average: ~2.1x)")
    print(f"  energy saving      : "
          f"{1 - caba.energy.total / base.energy.total:.1%} "
          f"(paper average: 22.2%)")
    print(f"  assist instructions: {caba.assist_instructions} "
          f"(decompression + compression subroutines)")
    md = caba.md_cache_hit_rate
    if md is not None:
        print(f"  MD-cache hit rate  : {md:.1%} (paper average: 85%)")


def main() -> None:
    figure5_example()
    run_pvc()


if __name__ == "__main__":
    main()
