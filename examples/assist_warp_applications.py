#!/usr/bin/env python3
"""Beyond compression: memoization and prefetching with assist warps.

Section 7 of the paper argues CABA is a general substrate. This example
drives the two sketched applications end to end:

* **Memoization** (Section 7.1): a compute-bound kernel with a
  memoizable region; assist warps hash the inputs, probe a
  shared-memory LUT, and let parents skip redundant work. We sweep the
  input redundancy.
* **Prefetching** (Section 7.2): a latency-bound streaming kernel with
  too few warps to hide memory latency; assist warps run a per-warp
  stride prefetcher in idle issue slots, sweeping prefetch distance.

Run:
    python examples/assist_warp_applications.py
"""

from repro.harness.extensions import memoization_study, prefetch_study
from repro.harness.report import print_figure


def main() -> None:
    print("Assist warps are a general substrate (Section 7):")
    memo = memoization_study(
        redundancies=(0.0, 0.25, 0.5, 0.75, 0.95)
    )
    print_figure(memo)
    print()
    print("Reading: with no redundancy the lookup overhead shows up as a "
          "small slowdown;\nas redundancy grows, skipped compute regions "
          "dominate and the kernel accelerates.")
    print()

    prefetch = prefetch_study(distances=(1, 2, 4, 8))
    print_figure(prefetch)
    print()
    print("Reading: a latency-bound stream gains substantially once the "
          "prefetcher trains;\ntoo large a distance overshoots the "
          "useful window and the benefit recedes.")


if __name__ == "__main__":
    main()
