#!/usr/bin/env python3
"""Bring your own workload: define an application profile and study it.

Shows the full public workflow a downstream user follows to evaluate
CABA on their own kernel model:

1. describe the kernel (instruction mix, access patterns, data values)
   as an :class:`~repro.workloads.apps.AppProfile`;
2. run it under any design point / machine configuration;
3. inspect the compression behaviour of its data;
4. sweep a CABA framework knob (the store-buffer size).

Run:
    python examples/custom_workload.py
"""

from repro import designs, run_app
from repro.compression import make_algorithm
from repro.core.params import CabaParams
from repro.gpu.config import GPUConfig
from repro.workloads.apps import AppProfile, OpSpec
from repro.workloads.data_patterns import make_line_generator

# 1. A histogram-style kernel: streaming reads of narrow integers,
# scattered read-modify-write updates into an L2-resident table.
histogram = AppProfile(
    name="histogram",
    suite="custom",
    category="memory",
    compressible=True,
    data={"small_int": 0.55, "zeros": 0.2, "narrow4": 0.15, "random": 0.1},
    body=(
        OpSpec("load", count=2, pattern="stream"),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.4),
        OpSpec("alu", count=4),
        OpSpec("store", count=1, pattern="random", region=7, footprint=0.4,
               fanout=2),
    ),
    iterations=24,
    warps_per_block=8,
    regs_per_thread=16,
    seed=1234,
)


def study_data() -> None:
    print("=== 2. How compressible is this workload's data? ===")
    gen = make_line_generator(histogram.data, 128, seed=histogram.seed)
    for name in ("bdi", "fpc", "cpack", "bestofall"):
        algo = make_algorithm(name, 128)
        sizes = [algo.compress(gen(line)).size_bytes for line in range(300)]
        ratio = 128 * len(sizes) / sum(sizes)
        print(f"  {name:10s} byte-granularity ratio {ratio:5.2f}x")
    print()


def run_designs() -> None:
    print("=== 3. Base vs CABA-BDI on two machine sizes ===")
    for config, label in ((GPUConfig.small(), "small"),
                          (GPUConfig.medium(), "medium")):
        base = run_app(histogram, designs.base(), config)
        caba = run_app(histogram, designs.caba(), config)
        print(f"  {label:7s} speedup {caba.ipc / base.ipc:5.2f}x  "
              f"DRAM busy {base.bandwidth_utilization:5.1%} -> "
              f"{caba.bandwidth_utilization:5.1%}  "
              f"RMW reads {caba.rmw_reads}")
    print("  (the scattered partial-line stores exercise the paper's "
          "Section 4.2.2 read-modify-write corner)")
    print()


def sweep_store_buffer() -> None:
    print("=== 4. CABA knob sweep: pending-store buffer size ===")
    base = run_app(histogram, designs.base())
    for lines in (2, 8, 16, 64):
        params = CabaParams(store_buffer_lines=lines)
        run = run_app(histogram, designs.caba(), caba_params=params)
        total = max(1, run.l1_stores)
        print(f"  buffer={lines:3d}  speedup {run.ipc / base.ipc:5.2f}x  "
              f"stores compressed "
              f"{run.lines_compressed}/{total}")


def main() -> None:
    print(f"Custom profile: {histogram.name!r} "
          f"({len(histogram.body)} body steps, "
          f"{histogram.iterations} iterations/warp)\n")
    study_data()
    run_designs()
    sweep_store_buffer()


if __name__ == "__main__":
    main()
