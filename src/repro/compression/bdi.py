"""Base-Delta-Immediate (BDI) compression.

BDI (Pekhimenko et al., PACT 2012) observes that many cache lines hold
values with a low dynamic range. Such a line can be stored as one common
*base* plus an array of narrow *deltas*. A second, implicit base of zero
captures small immediate values mixed into the same line; a per-word
bitmask records which base each word uses.

The CABA paper uses BDI as its flagship algorithm because decompression is
a single masked vector addition — a natural fit for the SIMT pipeline
(Section 4.1.1). The worked example in Figure 5 (a 64-byte line from PVC
compressed to 17 bytes with an 8-byte base and 1-byte deltas) is
reproduced in ``examples/quickstart.py`` and in the test suite.

Compressed-size accounting follows the original paper: for a base-``b``
delta-``d`` encoding over ``n`` words the size is ``b + n*d + ceil(n/8)``
bytes (base + deltas + base-selection bitmask). The encoding selector
itself travels out-of-band (in the tag / metadata cache), as in both
papers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.compression import batch
from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    CompressionError,
    DEFAULT_LINE_SIZE,
)


@dataclass(frozen=True)
class BdiEncoding:
    """One (base size, delta size) point in the BDI encoding space."""

    name: str
    base_bytes: int
    delta_bytes: int

    def compressed_size(self, line_size: int) -> int:
        """Compressed size in bytes for a line of ``line_size`` bytes."""
        n_words = line_size // self.base_bytes
        mask_bytes = math.ceil(n_words / 8)
        return self.base_bytes + n_words * self.delta_bytes + mask_bytes


#: The eight encodings of the original proposal, best (smallest) first
#: within each word size. ZEROS and REPEAT are the two special cases.
BDI_ENCODINGS: tuple[BdiEncoding, ...] = (
    BdiEncoding("B8D1", base_bytes=8, delta_bytes=1),
    BdiEncoding("B8D2", base_bytes=8, delta_bytes=2),
    BdiEncoding("B8D4", base_bytes=8, delta_bytes=4),
    BdiEncoding("B4D1", base_bytes=4, delta_bytes=1),
    BdiEncoding("B4D2", base_bytes=4, delta_bytes=2),
    BdiEncoding("B2D1", base_bytes=2, delta_bytes=1),
)

#: Size in bytes of the all-zeros and repeated-value encodings.
ZEROS_SIZE = 1
REPEAT_SIZE = 8


@dataclass(frozen=True)
class _BdiState:
    """Decompression state: base, per-word deltas and base-selection mask."""

    word_bytes: int
    base: int
    deltas: tuple[int, ...]
    mask: tuple[bool, ...]  # True -> word uses `base`, False -> zero base


def _split_words(data: bytes, word_bytes: int) -> list[int]:
    """Interpret ``data`` as little-endian unsigned words.

    One big-int conversion plus shift/mask extraction is several times
    faster than per-word ``int.from_bytes`` on slices.
    """
    big = int.from_bytes(data, "little")
    bits = 8 * word_bytes
    mask = (1 << bits) - 1
    words = []
    append = words.append
    for _ in range(len(data) // word_bytes):
        append(big & mask)
        big >>= bits
    return words


def _fits_signed(value: int, n_bytes: int) -> bool:
    """Whether ``value`` fits in an ``n_bytes`` two's-complement field."""
    bound = 1 << (8 * n_bytes - 1)
    return -bound <= value < bound


def _try_encode(
    words: Sequence[int], word_bytes: int, delta_bytes: int
) -> _BdiState | None:
    """Attempt a two-base (explicit + implicit zero) BDI encoding.

    The explicit base is the first word that does not fit as a narrow
    immediate from the zero base, exactly as in the original hardware
    algorithm (which must pick the base in a single pass).
    """
    bound = 1 << (8 * delta_bytes - 1)
    neg_bound = -bound
    base: int | None = None
    deltas: list[int] = []
    mask: list[bool] = []
    for word in words:
        if neg_bound <= word < bound:
            deltas.append(word)
            mask.append(False)
            continue
        if base is None:
            base = word
        delta = word - base
        if not neg_bound <= delta < bound:
            return None
        deltas.append(delta)
        mask.append(True)
    return _BdiState(
        word_bytes=word_bytes,
        base=base if base is not None else 0,
        deltas=tuple(deltas),
        mask=tuple(mask),
    )


def _fits(words: Sequence[int], delta_bytes: int) -> bool:
    """Size-only version of :func:`_try_encode`: fit test, no deltas."""
    bound = 1 << (8 * delta_bytes - 1)
    neg_bound = -bound
    base: int | None = None
    for word in words:
        if word < bound:
            continue
        if base is None:
            base = word
            continue
        delta = word - base
        if not neg_bound <= delta < bound:
            return False
    return True


class BdiCompressor(CompressionAlgorithm):
    """Base-Delta-Immediate compressor over one cache line.

    Args:
        line_size: Uncompressed line size in bytes.
        encodings: Subset of :data:`BDI_ENCODINGS` to try. The CABA
            compression assist warp can be configured with fewer encodings
            to shorten the subroutine (Section 4.1.3 notes that a few
            encodings capture almost all redundancy).
    """

    name = "bdi"
    hw_decompression_latency = 1
    hw_compression_latency = 5

    def __init__(
        self,
        line_size: int = DEFAULT_LINE_SIZE,
        encodings: Sequence[BdiEncoding] = BDI_ENCODINGS,
    ) -> None:
        super().__init__(line_size)
        bad = [e for e in encodings if line_size % e.base_bytes != 0]
        if bad:
            raise CompressionError(
                f"encodings {', '.join(e.name for e in bad)} do not divide "
                f"a {line_size}-byte line"
            )
        self.encodings = tuple(encodings)
        #: (encoding, compressed size) pairs, hoisted out of the per-line
        #: loops (the sizes depend only on line_size).
        self._encoding_sizes = tuple(
            (e, e.compressed_size(line_size)) for e in self.encodings
        )

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def _compress_line(self, data: bytes) -> CompressedLine:
        special = self._try_special(data)
        if special is not None:
            return special

        best: CompressedLine | None = None
        splits: dict[int, list[int]] = {}
        for encoding, size in self._encoding_sizes:
            if size >= self.line_size:
                continue
            if best is not None and size >= best.size_bytes:
                continue
            words = splits.get(encoding.base_bytes)
            if words is None:
                words = _split_words(data, encoding.base_bytes)
                splits[encoding.base_bytes] = words
            state = _try_encode(words, encoding.base_bytes, encoding.delta_bytes)
            if state is None:
                continue
            best = CompressedLine(
                algorithm=self.name,
                encoding=encoding.name,
                size_bytes=size,
                line_size=self.line_size,
                state=state,
            )
        return best if best is not None else self._uncompressed(data)

    def _try_special(self, data: bytes) -> CompressedLine | None:
        """The ZEROS and REPEAT special encodings."""
        if not any(data):
            return CompressedLine(
                algorithm=self.name,
                encoding="ZEROS",
                size_bytes=ZEROS_SIZE,
                line_size=self.line_size,
                state=None,
            )
        first = data[:8]
        if data == first * (self.line_size // 8):
            return CompressedLine(
                algorithm=self.name,
                encoding="REPEAT",
                size_bytes=REPEAT_SIZE,
                line_size=self.line_size,
                state=int.from_bytes(first, "little"),
            )
        return None

    # ------------------------------------------------------------------
    # Batch size kernels
    # ------------------------------------------------------------------
    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        if batch.np is None or not lines:
            return [self._size_line(data) for data in lines]
        return self._size_table_numpy(lines)

    def _size_line(self, data: bytes) -> tuple[int, str]:
        """Size-only single-line kernel (no delta/state materialization)."""
        if not any(data):
            return ZEROS_SIZE, "ZEROS"
        if data == data[:8] * (self.line_size // 8):
            return REPEAT_SIZE, "REPEAT"
        best_size = self.line_size
        best_name = "uncompressed"
        splits: dict[int, list[int]] = {}
        for encoding, size in self._encoding_sizes:
            if size >= best_size:
                continue
            words = splits.get(encoding.base_bytes)
            if words is None:
                words = _split_words(data, encoding.base_bytes)
                splits[encoding.base_bytes] = words
            if _fits(words, encoding.delta_bytes):
                best_size = size
                best_name = encoding.name
        return best_size, best_name

    def _size_table_numpy(self, lines: list[bytes]) -> list[tuple[int, str]]:
        np = batch.np
        n = len(lines)
        line_size = self.line_size
        buf = np.frombuffer(b"".join(lines), dtype=np.uint8)
        buf = buf.reshape(n, line_size)
        nonzero = buf.any(axis=1)
        repeated = (
            buf.reshape(n, line_size // 8, 8) == buf[:, None, :8]
        ).all(axis=(1, 2))

        sizes = np.full(n, line_size, dtype=np.int64)
        chosen = np.full(n, -1, dtype=np.int64)
        views: dict[int, object] = {}
        for index, (encoding, size) in enumerate(self._encoding_sizes):
            if size >= line_size:
                continue
            improves = sizes > size  # strictly-smaller-wins, in order
            words = views.get(encoding.base_bytes)
            if words is None:
                words = buf.view(f"<u{encoding.base_bytes}")
                views[encoding.base_bytes] = words
            dtype = words.dtype.type
            bound = 1 << (8 * encoding.delta_bytes - 1)
            modulus = 1 << (8 * encoding.base_bytes)
            # Immediates are small unsigned values from the zero base.
            immediate = words < dtype(bound)
            explicit = ~immediate
            # The explicit base is the first non-immediate word (single
            # pass, as in the hardware algorithm and _try_encode).
            base = words[np.arange(n), explicit.argmax(axis=1)]
            # Modular wraparound makes the unsigned difference an exact
            # test of the signed-range fit: word - base (arbitrary
            # precision) lies in [-bound, bound) iff the wrapped delta
            # is < bound or >= modulus - bound.
            delta = words - base[:, None]
            fits_delta = (delta < dtype(bound)) | (
                delta >= dtype(modulus - bound)
            )
            fits = (immediate | fits_delta).all(axis=1)
            hit = improves & fits
            sizes[hit] = size
            chosen[hit] = index
        names = [e.name for e, _ in self._encoding_sizes]
        out: list[tuple[int, str]] = []
        zeros_list = (~nonzero).tolist()
        repeat_list = (repeated & nonzero).tolist()
        size_list = sizes.tolist()
        chosen_list = chosen.tolist()
        for i in range(n):
            if zeros_list[i]:
                out.append((ZEROS_SIZE, "ZEROS"))
            elif repeat_list[i]:
                out.append((REPEAT_SIZE, "REPEAT"))
            elif chosen_list[i] >= 0:
                out.append((size_list[i], names[chosen_list[i]]))
            else:
                out.append((line_size, "uncompressed"))
        return out

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.encoding == "uncompressed":
            return bytes(line.state)
        if line.encoding == "ZEROS":
            return bytes(self.line_size)
        if line.encoding == "REPEAT":
            word = int(line.state).to_bytes(8, "little")
            return word * (self.line_size // 8)
        state: _BdiState = line.state
        bits = 8 * state.word_bytes
        modulus = 1 << bits
        base = state.base
        # Assemble the line as one big int and serialize once: much
        # cheaper than one to_bytes per word.
        big = 0
        shift = 0
        for delta, uses_base in zip(state.deltas, state.mask):
            word = ((base + delta) if uses_base else delta) % modulus
            big |= word << shift
            shift += bits
        return big.to_bytes(self.line_size, "little")

    # ------------------------------------------------------------------
    # Introspection helpers used by the assist-warp subroutine generator
    # ------------------------------------------------------------------
    def encoding_for(self, name: str) -> BdiEncoding:
        """Look up one of this compressor's encodings by name."""
        for encoding in self.encodings:
            if encoding.name == name:
                return encoding
        raise CompressionError(f"unknown BDI encoding {name!r}")
