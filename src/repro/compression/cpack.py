"""C-Pack: dictionary-based cache compression.

C-Pack (Chen et al., 2010) compresses each 32-bit word against a small
dictionary of recently seen uncompressed words. A word can match a
dictionary entry fully, partially (its high bytes), be all zeros, be three
zero bytes plus one literal byte, or be stored verbatim (which also
inserts it into the dictionary).

Pattern codes and output widths follow the original paper:

===========  =======  ====================================  ===========
pattern      code     meaning                               output bits
===========  =======  ====================================  ===========
``zzzz``     ``00``   all-zero word                         2
``xxxx``     ``01``   verbatim word (pushed to dictionary)  2 + 32
``mmmm``     ``10``   full dictionary match                 2 + 4
``mmxx``     ``1100`` high 2 bytes match a dict entry       4 + 4 + 16
``mmmx``     ``1101`` high 3 bytes match a dict entry       4 + 4 + 8
``zzzx``     ``1110`` three zero bytes + 1 literal byte     4 + 8
===========  =======  ====================================  ===========

The CABA adaptation (Section 4.1.3) places the dictionary entries right
after the line-head metadata so an assist warp can fetch them upfront;
like the FPC adaptation this changes layout, not size, so the model keeps
only the size arithmetic and a byte-exact symbol stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from collections import deque

from repro.compression import batch
from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    DEFAULT_LINE_SIZE,
)

#: Number of 32-bit entries in the compression dictionary (64 bytes).
DICTIONARY_ENTRIES = 16

_PATTERN_BITS = {
    "zzzz": 2,
    "xxxx": 2 + 32,
    "mmmm": 2 + 4,
    "mmxx": 4 + 4 + 16,
    "mmmx": 4 + 4 + 8,
    "zzzx": 4 + 8,
}


@dataclass(frozen=True)
class _Symbol:
    """One compressed word: pattern, dictionary index and literal bits."""

    pattern: str
    dict_index: int = 0
    literal: int = 0


class CPackCompressor(CompressionAlgorithm):
    """C-Pack compression over one cache line.

    The dictionary starts empty for every line (lines must be
    independently decompressible when they travel over the memory bus)
    and fills FIFO with verbatim words during compression, mirrored
    exactly during decompression.
    """

    name = "cpack"
    hw_decompression_latency = 8
    hw_compression_latency = 12

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE) -> None:
        super().__init__(line_size)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def _compress_line(self, data: bytes) -> CompressedLine:
        dictionary: list[int] = []
        symbols: list[_Symbol] = []
        bits = 0
        for offset in range(0, self.line_size, 4):
            word = int.from_bytes(data[offset : offset + 4], "little")
            symbol = self._encode(word, dictionary)
            symbols.append(symbol)
            bits += _PATTERN_BITS[symbol.pattern]
        size = max(1, math.ceil(bits / 8))
        if size >= self.line_size:
            return self._uncompressed(data)
        return CompressedLine(
            algorithm=self.name,
            encoding="cpack",
            size_bytes=size,
            line_size=self.line_size,
            state=tuple(symbols),
        )

    @staticmethod
    def _push(dictionary: list[int], word: int) -> None:
        """FIFO insertion bounded by the hardware dictionary size."""
        dictionary.append(word)
        if len(dictionary) > DICTIONARY_ENTRIES:
            dictionary.pop(0)

    def _encode(self, word: int, dictionary: list[int]) -> _Symbol:
        if word == 0:
            return _Symbol("zzzz")
        if word & 0xFFFFFF00 == 0:
            return _Symbol("zzzx", literal=word & 0xFF)
        best: _Symbol | None = None
        for index, entry in enumerate(dictionary):
            if entry == word:
                best = _Symbol("mmmm", dict_index=index)
                break
            if best is not None and best.pattern == "mmmx":
                continue
            if entry & 0xFFFFFF00 == word & 0xFFFFFF00:
                best = _Symbol("mmmx", dict_index=index, literal=word & 0xFF)
            elif best is None and entry & 0xFFFF0000 == word & 0xFFFF0000:
                best = _Symbol("mmxx", dict_index=index, literal=word & 0xFFFF)
        if best is not None:
            return best
        self._push(dictionary, word)
        return _Symbol("xxxx", literal=word)

    # ------------------------------------------------------------------
    # Batch size kernels
    # ------------------------------------------------------------------
    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        # The FIFO dictionary makes C-Pack inherently sequential per
        # line; the batch win is the bulk byte-to-word conversion plus a
        # size-only inner loop with no symbol allocation.
        line_size = self.line_size
        size_bits = self._size_bits
        out: list[tuple[int, str]] = []
        for words in batch.u32_rows(lines):
            size = max(1, math.ceil(size_bits(words) / 8))
            if size >= line_size:
                out.append((line_size, "uncompressed"))
            else:
                out.append((size, "cpack"))
        return out

    @staticmethod
    def _size_bits(words: list[int]) -> int:
        """Symbol-stream bits of one line (size-only ``_encode``).

        Sizes depend only on which match class exists in the dictionary
        (exact beats high-24 beats high-16), not on which entry matched,
        so presence flags replace ``_encode``'s best-symbol bookkeeping.
        """
        dictionary: deque[int] = deque(maxlen=DICTIONARY_ENTRIES)
        bits = 0
        for word in words:
            if word == 0:
                bits += 2  # zzzz
                continue
            if word & 0xFFFFFF00 == 0:
                bits += 12  # zzzx
                continue
            high24 = word & 0xFFFFFF00
            high16 = word & 0xFFFF0000
            exact = high24_hit = high16_hit = False
            for entry in dictionary:
                if entry == word:
                    exact = True
                    break
                if entry & 0xFFFFFF00 == high24:
                    high24_hit = True
                elif entry & 0xFFFF0000 == high16:
                    high16_hit = True
            if exact:
                bits += 6  # mmmm
            elif high24_hit:
                bits += 16  # mmmx
            elif high16_hit:
                bits += 24  # mmxx
            else:
                dictionary.append(word)
                bits += 34  # xxxx
        return bits

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.encoding == "uncompressed":
            return bytes(line.state)
        dictionary: list[int] = []
        out = bytearray()
        for symbol in line.state:
            word = self._decode(symbol, dictionary)
            out += word.to_bytes(4, "little")
        return bytes(out)

    def _decode(self, symbol: _Symbol, dictionary: list[int]) -> int:
        if symbol.pattern == "zzzz":
            return 0
        if symbol.pattern == "zzzx":
            return symbol.literal
        if symbol.pattern == "xxxx":
            self._push(dictionary, symbol.literal)
            return symbol.literal
        entry = dictionary[symbol.dict_index]
        if symbol.pattern == "mmmm":
            return entry
        if symbol.pattern == "mmmx":
            return (entry & 0xFFFFFF00) | symbol.literal
        if symbol.pattern == "mmxx":
            return (entry & 0xFFFF0000) | symbol.literal
        raise AssertionError(f"unhandled C-Pack pattern {symbol.pattern}")
