"""Frequent Pattern Compression (FPC).

FPC (Alameldeen & Wood, 2004) compresses each 32-bit word of a cache line
independently by matching it against a small set of frequent patterns —
runs of zeros, narrow sign-extended values, halfword forms and repeated
bytes. Each emitted symbol carries a 3-bit prefix naming the pattern plus
a variable-length payload.

The CABA paper maps FPC onto assist warps (Section 4.1.3) with two
adaptations, both supported here: a *reduced* encoding set (a few patterns
capture almost all redundancy, and bandwidth benefits only materialize at
32-byte burst granularity) and metadata hoisted to the head of the line so
an entire line's decompression strategy is known upfront. The metadata
reorganization does not change the compressed size, so this module models
it simply by exposing per-line prefix information in the compressed state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.compression import batch
from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    DEFAULT_LINE_SIZE,
)

#: Bits used by the pattern selector in front of every symbol.
PREFIX_BITS = 3

#: Maximum run length representable by the zero-run pattern.
MAX_ZERO_RUN = 8


@dataclass(frozen=True)
class FpcPattern:
    """One FPC word pattern: prefix code, payload width and a matcher."""

    name: str
    payload_bits: int


ZERO_RUN = FpcPattern("zero_run", 3)
SIGNED_4BIT = FpcPattern("signed_4bit", 4)
SIGNED_1BYTE = FpcPattern("signed_1byte", 8)
SIGNED_HALFWORD = FpcPattern("signed_halfword", 16)
ZERO_PADDED_HALFWORD = FpcPattern("zero_padded_halfword", 16)
TWO_SIGNED_BYTES = FpcPattern("two_signed_bytes", 16)
REPEATED_BYTES = FpcPattern("repeated_bytes", 8)
UNCOMPRESSED_WORD = FpcPattern("uncompressed", 32)

#: The full pattern set of the original proposal.
FPC_PATTERNS: tuple[FpcPattern, ...] = (
    ZERO_RUN,
    SIGNED_4BIT,
    SIGNED_1BYTE,
    SIGNED_HALFWORD,
    ZERO_PADDED_HALFWORD,
    TWO_SIGNED_BYTES,
    REPEATED_BYTES,
    UNCOMPRESSED_WORD,
)

#: The reduced set used when mapping FPC onto CABA assist warps: fewer
#: encodings shorten the subroutine with negligible ratio loss.
FPC_REDUCED_PATTERNS: tuple[FpcPattern, ...] = (
    ZERO_RUN,
    SIGNED_1BYTE,
    SIGNED_HALFWORD,
    REPEATED_BYTES,
    UNCOMPRESSED_WORD,
)


def _to_signed(value: int, bits: int) -> int:
    """Reinterpret an unsigned field as two's complement."""
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def _fits_signed(value: int, bits: int) -> bool:
    bound = 1 << (bits - 1)
    return -bound <= _to_signed(value & 0xFFFFFFFF, 32) < bound


@dataclass(frozen=True)
class _Symbol:
    """One emitted FPC symbol: which pattern, plus raw payload value(s)."""

    pattern: FpcPattern
    payload: int  # pattern-specific packed payload


class FpcCompressor(CompressionAlgorithm):
    """Frequent Pattern Compression over one cache line.

    Args:
        line_size: Uncompressed line size in bytes (multiple of 4).
        patterns: Pattern subset to use; :data:`FPC_REDUCED_PATTERNS`
            models the CABA-adapted variant.
    """

    name = "fpc"
    # FPC's serial variable-length parse makes dedicated hardware slower
    # than BDI's (the CABA paper notes FPC's higher latency when comparing
    # CABA-BDI and CABA-FPC on LPS in Section 6.3).
    hw_decompression_latency = 5
    hw_compression_latency = 8

    def __init__(
        self,
        line_size: int = DEFAULT_LINE_SIZE,
        patterns: Sequence[FpcPattern] = FPC_PATTERNS,
    ) -> None:
        super().__init__(line_size)
        self.patterns = tuple(patterns)
        self._enabled = {p.name for p in patterns}

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def _compress_line(self, data: bytes) -> CompressedLine:
        words = [
            int.from_bytes(data[i : i + 4], "little")
            for i in range(0, self.line_size, 4)
        ]
        symbols: list[_Symbol] = []
        bits = 0
        i = 0
        while i < len(words):
            symbol, consumed = self._encode_at(words, i)
            symbols.append(symbol)
            bits += PREFIX_BITS + symbol.pattern.payload_bits
            i += consumed
        size = max(1, math.ceil(bits / 8))
        if size >= self.line_size:
            return self._uncompressed(data)
        return CompressedLine(
            algorithm=self.name,
            encoding="fpc",
            size_bytes=size,
            line_size=self.line_size,
            state=tuple(symbols),
        )

    def _encode_at(self, words: list[int], i: int) -> tuple[_Symbol, int]:
        """Encode the word(s) at position ``i``; returns (symbol, consumed)."""
        word = words[i]
        if "zero_run" in self._enabled and word == 0:
            run = 1
            while (
                run < MAX_ZERO_RUN
                and i + run < len(words)
                and words[i + run] == 0
            ):
                run += 1
            return _Symbol(ZERO_RUN, run), run
        if "signed_4bit" in self._enabled and _fits_signed(word, 4):
            return _Symbol(SIGNED_4BIT, word), 1
        if "signed_1byte" in self._enabled and _fits_signed(word, 8):
            return _Symbol(SIGNED_1BYTE, word), 1
        if "signed_halfword" in self._enabled and _fits_signed(word, 16):
            return _Symbol(SIGNED_HALFWORD, word), 1
        if "zero_padded_halfword" in self._enabled and word & 0xFFFF == 0:
            return _Symbol(ZERO_PADDED_HALFWORD, word >> 16), 1
        if "two_signed_bytes" in self._enabled and self._two_signed_bytes(word):
            return _Symbol(TWO_SIGNED_BYTES, word), 1
        if "repeated_bytes" in self._enabled and self._repeated_bytes(word):
            return _Symbol(REPEATED_BYTES, word & 0xFF), 1
        return _Symbol(UNCOMPRESSED_WORD, word), 1

    @staticmethod
    def _two_signed_bytes(word: int) -> bool:
        low = word & 0xFFFF
        high = (word >> 16) & 0xFFFF
        return all(-128 <= _to_signed(h, 16) < 128 for h in (low, high))

    @staticmethod
    def _repeated_bytes(word: int) -> bool:
        b = word & 0xFF
        return word == b * 0x01010101

    # ------------------------------------------------------------------
    # Batch size kernels
    # ------------------------------------------------------------------
    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        if batch.np is not None and lines:
            return self._size_table_numpy(lines)
        line_size = self.line_size
        out: list[tuple[int, str]] = []
        for data in lines:
            words = [
                int.from_bytes(data[i : i + 4], "little")
                for i in range(0, line_size, 4)
            ]
            size = max(1, math.ceil(self._size_bits(words) / 8))
            if size >= line_size:
                out.append((line_size, "uncompressed"))
            else:
                out.append((size, "fpc"))
        return out

    def _size_bits(self, words: list[int]) -> int:
        """Total symbol-stream bits of a line (size-only ``_encode_at``)."""
        enabled = self._enabled
        use_zero_run = "zero_run" in enabled
        bits = 0
        i = 0
        n = len(words)
        while i < n:
            word = words[i]
            if use_zero_run and word == 0:
                run = 1
                while (
                    run < MAX_ZERO_RUN and i + run < n and words[i + run] == 0
                ):
                    run += 1
                bits += PREFIX_BITS + ZERO_RUN.payload_bits
                i += run
                continue
            bits += PREFIX_BITS + self._word_payload_bits(word)
            i += 1
        return bits

    def _word_payload_bits(self, word: int) -> int:
        """Payload bits of one non-run word, in ``_encode_at`` order."""
        enabled = self._enabled
        if "signed_4bit" in enabled and _fits_signed(word, 4):
            return 4
        if "signed_1byte" in enabled and _fits_signed(word, 8):
            return 8
        if "signed_halfword" in enabled and _fits_signed(word, 16):
            return 16
        if "zero_padded_halfword" in enabled and word & 0xFFFF == 0:
            return 16
        if "two_signed_bytes" in enabled and self._two_signed_bytes(word):
            return 16
        if "repeated_bytes" in enabled and self._repeated_bytes(word):
            return 8
        return 32

    def _size_table_numpy(self, lines: list[bytes]) -> list[tuple[int, str]]:
        np = batch.np
        line_size = self.line_size
        enabled = self._enabled
        unsigned = batch.word_matrix(lines, 4)
        signed = unsigned.view("<i4")

        word_bits = np.full(unsigned.shape, PREFIX_BITS + 32, dtype=np.int64)
        undecided = np.ones(unsigned.shape, dtype=bool)

        def claim(mask, payload_bits: int) -> None:
            hit = mask & undecided
            word_bits[hit] = PREFIX_BITS + payload_bits
            undecided[hit] = False

        if "signed_4bit" in enabled:
            claim((signed >= -8) & (signed < 8), 4)
        if "signed_1byte" in enabled:
            claim((signed >= -128) & (signed < 128), 8)
        if "signed_halfword" in enabled:
            claim((signed >= -32768) & (signed < 32768), 16)
        if "zero_padded_halfword" in enabled:
            claim((unsigned & 0xFFFF) == 0, 16)
        if "two_signed_bytes" in enabled:
            # Each 16-bit half must sign-extend from 8 bits; unsigned
            # equivalent of -128 <= signed16 < 128.
            low = (unsigned & 0xFFFF).astype(np.int64)
            high = (unsigned >> 16).astype(np.int64)
            claim(
                (((low + 128) & 0xFFFF) < 256)
                & (((high + 128) & 0xFFFF) < 256),
                16,
            )
        if "repeated_bytes" in enabled:
            claim(unsigned == (unsigned & 0xFF) * 0x01010101, 8)

        zeros = unsigned == 0
        if "zero_run" in enabled:
            # A zero word starts a new run symbol iff its distance from
            # the previous nonzero word is a multiple of MAX_ZERO_RUN.
            idx = np.arange(unsigned.shape[1])
            last_nonzero = np.maximum.accumulate(
                np.where(zeros, -1, idx), axis=1
            )
            run_pos = idx - last_nonzero - 1
            starts = zeros & (run_pos % MAX_ZERO_RUN == 0)
            bits = starts.sum(axis=1) * (
                PREFIX_BITS + ZERO_RUN.payload_bits
            ) + np.where(zeros, 0, word_bits).sum(axis=1)
        else:
            bits = word_bits.sum(axis=1)

        sizes = np.maximum(1, (bits + 7) // 8).tolist()
        return [
            (size, "fpc") if size < line_size else (line_size, "uncompressed")
            for size in sizes
        ]

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.encoding == "uncompressed":
            return bytes(line.state)
        out = bytearray()
        for symbol in line.state:
            out += self._decode(symbol)
        return bytes(out)

    @staticmethod
    def _decode(symbol: _Symbol) -> bytes:
        pattern, payload = symbol.pattern, symbol.payload
        if pattern is ZERO_RUN:
            return bytes(4 * payload)
        if pattern in (SIGNED_4BIT, SIGNED_1BYTE, SIGNED_HALFWORD,
                       TWO_SIGNED_BYTES, UNCOMPRESSED_WORD):
            return (payload & 0xFFFFFFFF).to_bytes(4, "little")
        if pattern is ZERO_PADDED_HALFWORD:
            return ((payload & 0xFFFF) << 16).to_bytes(4, "little")
        if pattern is REPEATED_BYTES:
            return bytes([payload & 0xFF]) * 4
        raise AssertionError(f"unhandled FPC pattern {pattern.name}")
