"""The idealized BestOfAll selector (Section 6.3, CABA-BestOfAll).

For every cache line, pick whichever of BDI, FPC and C-Pack yields the
smallest compressed size, with no selection overhead. The paper uses this
design to show that per-line algorithm diversity exists even within one
application (e.g. MUM and KM gain over every single-algorithm design).
"""

from __future__ import annotations

from typing import Sequence

from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    CompressionError,
    DEFAULT_LINE_SIZE,
)
from repro.compression.bdi import BdiCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FpcCompressor

#: Canonical tie-break priority for best-of-all selection. When two
#: components compress a line to the same size, the component appearing
#: earlier here wins — on the scalar path, the batch ``size_table``
#: path *and* the plane-composition path, regardless of the order the
#: caller supplied the components in. BDI leads because it is the
#: paper's flagship algorithm (cheapest assist-warp decompression);
#: names absent from the list rank after it in caller order. The
#: differential suite (``repro.verify``) enforces that all paths agree.
COMPONENT_PRIORITY: tuple[str, ...] = ("bdi", "fpc", "cpack", "fvc")

#: Component set of the paper's CABA-BestOfAll design (Section 6.3),
#: in priority order. ``harness.runner`` composes best-of-all planes
#: from exactly these component planes.
DEFAULT_COMPONENT_NAMES: tuple[str, ...] = ("bdi", "fpc", "cpack")


def _priority_rank(name: str) -> int:
    """Position of ``name`` in the canonical tie-break order."""
    try:
        return COMPONENT_PRIORITY.index(name)
    except ValueError:
        return len(COMPONENT_PRIORITY)


def compose_size_tables(
    component_tables: Sequence[tuple[str, Sequence[tuple[int, str]]]],
    line_size: int,
) -> list[tuple[int, str]]:
    """Per-line best-of selection over component ``(size, encoding)`` tables.

    Mirrors ``BestOfAllCompressor._compress_line`` exactly: the
    highest-priority component (see :data:`COMPONENT_PRIORITY`) with
    the strictly smallest size wins, and a winner that failed to shrink
    the line reports plain ``"uncompressed"`` rather than a tagged
    component encoding. Also used to compose cached per-component
    planes into a best-of-all plane without recompressing anything.
    """
    if not component_tables:
        raise CompressionError("need at least one component table")
    # Canonical tie-break order: composition must not depend on the
    # order the caller enumerated the component planes/tables in.
    component_tables = sorted(
        component_tables, key=lambda item: _priority_rank(item[0])
    )
    n_lines = len(component_tables[0][1])
    out: list[tuple[int, str]] = []
    for i in range(n_lines):
        best_size = line_size + 1
        best: tuple[int, str] | None = None
        for name, table in component_tables:
            size, encoding = table[i]
            if size < best_size:
                best_size = size
                best = (size, f"{name}:{encoding}")
        if best is None or best_size >= line_size:
            out.append((line_size, "uncompressed"))
        else:
            out.append(best)
    return out


class BestOfAllCompressor(CompressionAlgorithm):
    """Per-line oracle over a set of component algorithms.

    ``compress`` runs every component and keeps the smallest result;
    ``decompress`` dispatches on the winning component's name.
    """

    name = "bestofall"
    # Idealized: no extra hardware latency beyond the winning algorithm's.
    hw_decompression_latency = 1
    hw_compression_latency = 5

    def __init__(
        self,
        line_size: int = DEFAULT_LINE_SIZE,
        components: Sequence[CompressionAlgorithm] | None = None,
    ) -> None:
        super().__init__(line_size)
        if components is None:
            components = (
                BdiCompressor(line_size),
                FpcCompressor(line_size),
                CPackCompressor(line_size),
            )
        if not components:
            raise CompressionError("BestOfAll needs at least one component")
        mismatched = [c.name for c in components if c.line_size != line_size]
        if mismatched:
            raise CompressionError(
                f"components {mismatched} use a different line size"
            )
        # Store components in canonical priority order so the stable
        # ``min`` in ``_compress_line`` breaks ties exactly like
        # ``compose_size_tables`` does — the selector must not behave
        # differently depending on how the caller ordered the list.
        self.components = tuple(
            sorted(components, key=lambda c: _priority_rank(c.name))
        )
        self._by_name = {c.name: c for c in self.components}

    def _compress_line(self, data: bytes) -> CompressedLine:
        best = min(
            (component._compress_line(data) for component in self.components),
            key=lambda line: line.size_bytes,
        )
        if not best.is_compressed:
            # No component shrank the line: report a plain uncompressed
            # result (a "bdi:uncompressed" tag would wrongly look like a
            # compressed line to the memory system).
            return self._uncompressed(data)
        return CompressedLine(
            algorithm=self.name,
            encoding=f"{best.algorithm}:{best.encoding}",
            size_bytes=best.size_bytes,
            line_size=best.line_size,
            state=best,
        )

    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        return compose_size_tables(
            [
                (component.name, component._size_table(lines))
                for component in self.components
            ],
            self.line_size,
        )

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.encoding == "uncompressed":
            return bytes(line.state)
        inner: CompressedLine = line.state
        component = self._by_name.get(inner.algorithm)
        if component is None:
            raise CompressionError(
                f"no component named {inner.algorithm!r} in this selector"
            )
        return component.decompress(inner)
