"""Cache-line compression algorithms (BDI, FPC, C-Pack, BestOfAll).

These are the algorithms the CABA paper maps onto assist warps. Each one
offers byte-exact ``compress``/``decompress`` over a single cache line and
reports compressed sizes in bytes, from which DRAM-burst counts (the
paper's unit of bandwidth savings) are derived.
"""

from repro.compression.base import (
    BURST_BYTES,
    DEFAULT_LINE_SIZE,
    CompressedLine,
    CompressionAlgorithm,
    CompressionError,
    bursts_for,
)
from repro.compression.bdi import BDI_ENCODINGS, BdiCompressor, BdiEncoding
from repro.compression.bestofall import BestOfAllCompressor
from repro.compression.cpack import CPackCompressor, DICTIONARY_ENTRIES
from repro.compression.fvc import DEFAULT_TABLE, FvcCompressor
from repro.compression.fpc import (
    FPC_PATTERNS,
    FPC_REDUCED_PATTERNS,
    FpcCompressor,
    FpcPattern,
)

#: Registry of algorithm constructors by name, used by the harness.
ALGORITHMS = {
    "bdi": BdiCompressor,
    "fpc": FpcCompressor,
    "cpack": CPackCompressor,
    "fvc": FvcCompressor,
    "bestofall": BestOfAllCompressor,
}


def make_algorithm(name: str, line_size: int = DEFAULT_LINE_SIZE) -> CompressionAlgorithm:
    """Instantiate a compression algorithm by registry name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise CompressionError(f"unknown algorithm {name!r} (known: {known})")
    return factory(line_size)


__all__ = [
    "ALGORITHMS",
    "BDI_ENCODINGS",
    "BURST_BYTES",
    "DEFAULT_LINE_SIZE",
    "DICTIONARY_ENTRIES",
    "FPC_PATTERNS",
    "FPC_REDUCED_PATTERNS",
    "BdiCompressor",
    "BdiEncoding",
    "BestOfAllCompressor",
    "CPackCompressor",
    "CompressedLine",
    "CompressionAlgorithm",
    "CompressionError",
    "DEFAULT_TABLE",
    "FpcCompressor",
    "FvcCompressor",
    "FpcPattern",
    "bursts_for",
    "make_algorithm",
]
