"""Backend helpers for the batch (whole-image) compression kernels.

The batch kernels in :mod:`repro.compression` compute per-line
``(size, encoding)`` tables over many cache lines at once. They come in
two flavours selected here at import time:

* a **numpy backend** that reinterprets the concatenated lines as a
   2-D unsigned word matrix and classifies all words vectorized, and
* a **pure-Python backend** (always available) that uses the big-int
  word-splitting trick and size-only inner loops.

numpy is an optional dependency (``pip install repro[fast]``); when it
is missing — or explicitly disabled with ``REPRO_NUMPY=0`` — every
batch kernel falls back to the pure path. Both backends are exact: the
differential suite (``tests/compression/test_batch_equivalence.py``)
asserts they match the scalar ``compress()`` reference byte for byte.

Tests monkeypatch the module-level ``np`` to ``None`` to force the pure
path regardless of the environment.
"""

from __future__ import annotations

import os

np = None
if os.environ.get("REPRO_NUMPY", "1") != "0":
    try:  # pragma: no cover - exercised via both CI legs
        import numpy as _numpy

        np = _numpy
    except ImportError:
        np = None


def word_matrix(lines, word_bytes: int):
    """numpy ``(n_lines, words_per_line)`` unsigned word matrix.

    Only callable when the numpy backend is active; the caller guards on
    ``batch.np is not None``.
    """
    buf = np.frombuffer(b"".join(lines), dtype=np.uint8)
    return buf.reshape(len(lines), -1).view(f"<u{word_bytes}")


def u32_rows(lines) -> list[list[int]]:
    """Little-endian 32-bit words of every line, as Python ints.

    Uses numpy for the byte-to-word conversion when available (the
    sequential C-Pack kernel still wants plain ints to run its
    dictionary logic), otherwise the big-int split.
    """
    if not lines:
        return []
    if np is not None:
        buf = np.frombuffer(b"".join(lines), dtype="<u4")
        return buf.reshape(len(lines), -1).tolist()
    out = []
    for data in lines:
        big = int.from_bytes(data, "little")
        words = []
        append = words.append
        for _ in range(len(data) // 4):
            append(big & 0xFFFFFFFF)
            big >>= 32
        out.append(words)
    return out
