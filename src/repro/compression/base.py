"""Common interfaces for cache-line compression algorithms.

The CABA paper performs bandwidth compression at cache-line granularity:
every algorithm here consumes the raw bytes of one cache line and produces
a :class:`CompressedLine` describing the compressed size (which determines
how many DRAM bursts and interconnect flits the line occupies) together
with enough state to reconstruct the original bytes exactly.

All algorithms are lossless; ``decompress(compress(data)) == data`` is an
invariant enforced by the test suite (including property-based tests).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

#: DRAM burst granularity used throughout the paper (GDDR5, Section 4.1.3).
BURST_BYTES = 32

#: Default cache-line size used by the simulated memory hierarchy.
DEFAULT_LINE_SIZE = 128


class CompressionError(ValueError):
    """Raised when a line cannot be handled by a compression routine."""


@dataclass(frozen=True, slots=True)
class CompressedLine:
    """The result of compressing one cache line.

    Attributes:
        algorithm: Name of the algorithm that produced this line.
        encoding: Algorithm-specific encoding identifier (e.g. ``"B8D1"``
            for BDI base-8 delta-1). ``"uncompressed"`` marks a line the
            algorithm could not shrink.
        size_bytes: Compressed size in bytes, *including* any in-line
            metadata the algorithm stores at the head of the line.
        line_size: Size of the original (uncompressed) line in bytes.
        state: Opaque algorithm-specific payload used by ``decompress``.
    """

    algorithm: str
    encoding: str
    size_bytes: int
    line_size: int
    state: Any = field(repr=False, default=None)

    @property
    def is_compressed(self) -> bool:
        """Whether the line is stored in compressed form."""
        return self.encoding != "uncompressed"

    @property
    def compression_ratio(self) -> float:
        """Uncompressed size divided by compressed size."""
        return self.line_size / self.size_bytes

    def bursts(self, burst_bytes: int = BURST_BYTES) -> int:
        """Number of DRAM bursts needed to transfer this line."""
        return bursts_for(self.size_bytes, burst_bytes)

    def burst_ratio(self, burst_bytes: int = BURST_BYTES) -> float:
        """Uncompressed bursts divided by compressed bursts.

        This is the paper's definition of compression ratio: "the ratio of
        the number of DRAM bursts required to transfer data in the
        compressed vs. uncompressed form" (Section 5).
        """
        return bursts_for(self.line_size, burst_bytes) / self.bursts(burst_bytes)


def bursts_for(size_bytes: int, burst_bytes: int = BURST_BYTES) -> int:
    """Number of fixed-size bursts needed for ``size_bytes`` of data."""
    if size_bytes <= 0:
        raise CompressionError(f"non-positive transfer size: {size_bytes}")
    return math.ceil(size_bytes / burst_bytes)


class CompressionAlgorithm(ABC):
    """Abstract base class for cache-line compression algorithms.

    Subclasses provide byte-exact ``compress``/``decompress`` plus the
    latency parameters used by the dedicated-hardware design points
    (``HW-BDI`` et al.). The CABA design points do *not* use these fixed
    latencies: there, latency emerges from executing the assist-warp
    subroutine through the simulated pipelines.
    """

    #: Short identifier, e.g. ``"bdi"``.
    name: str = "abstract"

    #: Decompression latency (cycles) of a dedicated hardware unit.
    hw_decompression_latency: int = 1

    #: Compression latency (cycles) of a dedicated hardware unit.
    hw_compression_latency: int = 5

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE) -> None:
        if line_size <= 0 or line_size % 8 != 0:
            raise CompressionError(
                f"line size must be a positive multiple of 8, got {line_size}"
            )
        self.line_size = line_size

    def compress(self, data: bytes) -> CompressedLine:
        """Compress one cache line worth of bytes.

        Never fails: if no encoding applies, the returned line uses the
        ``"uncompressed"`` encoding with ``size_bytes == line_size``.
        """
        self._check_input(data)
        return self._compress_line(data)

    @abstractmethod
    def _compress_line(self, data: bytes) -> CompressedLine:
        """Single-line compression core; ``data`` is already validated."""

    @abstractmethod
    def decompress(self, line: CompressedLine) -> bytes:
        """Reconstruct the exact original bytes of ``line``."""

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def compress_lines(
        self, lines: Sequence[bytes]
    ) -> list[CompressedLine]:
        """Compress a batch of lines.

        Input validation is hoisted out of the per-line loop: lengths
        are checked once for the whole batch, then the unchecked
        compression core runs per line.
        """
        self._check_batch(lines)
        compress = self._compress_line
        return [compress(data) for data in lines]

    def size_table(self, lines: Sequence[bytes]) -> list[tuple[int, str]]:
        """``(size_bytes, encoding)`` of every line in ``lines``.

        This is the timing-only view the simulator's memory model needs
        (compressed size drives bursts and flits; the bytes themselves
        do not). Algorithms override :meth:`_size_table` with whole-image
        kernels — vectorized under numpy, size-only loops in pure
        Python — that are exactly equivalent to ``compress()``.
        """
        self._check_batch(lines)
        return self._size_table(list(lines))

    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        """Reference batch kernel: one scalar compression per line."""
        compress = self._compress_line
        return [
            (line.size_bytes, line.encoding)
            for line in map(compress, lines)
        ]

    def _check_batch(self, lines: Sequence[bytes]) -> None:
        """Validate a whole batch in one pass (hot loops skip rechecks)."""
        size = self.line_size
        for index, data in enumerate(lines):
            if len(data) != size:
                raise CompressionError(
                    f"{self.name}: line {index} has {len(data)} bytes, "
                    f"expected {size}"
                )

    def _check_input(self, data: bytes) -> None:
        if len(data) != self.line_size:
            raise CompressionError(
                f"{self.name}: expected a {self.line_size}-byte line, "
                f"got {len(data)} bytes"
            )

    def _check_line(self, line: CompressedLine) -> None:
        if line.algorithm != self.name:
            raise CompressionError(
                f"cannot decompress a {line.algorithm!r} line with {self.name!r}"
            )
        if line.line_size != self.line_size:
            raise CompressionError(
                f"{self.name}: line size mismatch "
                f"({line.line_size} != {self.line_size})"
            )

    def _uncompressed(self, data: bytes) -> CompressedLine:
        """A passthrough result for incompressible data."""
        return CompressedLine(
            algorithm=self.name,
            encoding="uncompressed",
            size_bytes=self.line_size,
            line_size=self.line_size,
            state=bytes(data),
        )
