"""Frequent Value Compression (FVC).

FVC (Yang & Gupta, MICRO 2000 — the paper's citation [84]) observes that
a small number of distinct 32-bit values account for a large share of
all memory traffic. A small *frequent-value table*, profiled per
application, lets each word be stored as a short index when it matches
a table entry, or verbatim otherwise; a per-word flag bit selects.

This is the kind of algorithm CABA makes cheap to add: no new hardware,
just another assist-warp subroutine (a table lookup per word). The
table here can either be the built-in default (values frequent in
almost every program: 0, ±1, small powers of two, all-ones) or trained
on sample lines with :meth:`FvcCompressor.train`, mirroring the
profiling step of the original proposal.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.compression import batch
from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    CompressionError,
    DEFAULT_LINE_SIZE,
)

#: Frequent values present in virtually every workload.
DEFAULT_TABLE: tuple[int, ...] = (
    0x00000000, 0x00000001, 0xFFFFFFFF, 0x00000002,
    0x00000004, 0x00000008, 0x00000010, 0x80000000,
)


@dataclass(frozen=True)
class _Symbol:
    """One encoded word: a table index or a verbatim value."""

    in_table: bool
    payload: int  # table index, or the raw 32-bit word


class FvcCompressor(CompressionAlgorithm):
    """Frequent Value Compression over one cache line.

    Args:
        line_size: Uncompressed line size in bytes (multiple of 4).
        table: Frequent-value table (its length fixes the index width).
    """

    name = "fvc"
    # A single table lookup per word: fast hardware, slightly behind BDI.
    hw_decompression_latency = 2
    hw_compression_latency = 6

    def __init__(
        self,
        line_size: int = DEFAULT_LINE_SIZE,
        table: Sequence[int] = DEFAULT_TABLE,
    ) -> None:
        super().__init__(line_size)
        if not table:
            raise CompressionError("FVC needs a non-empty value table")
        self.table = tuple(v & 0xFFFFFFFF for v in table)
        if len(set(self.table)) != len(self.table):
            raise CompressionError("FVC table entries must be distinct")
        self._index = {v: i for i, v in enumerate(self.table)}
        self.index_bits = max(1, math.ceil(math.log2(len(self.table))))

    # ------------------------------------------------------------------
    # Profiling (Section 4.3.1-style one-time data setup)
    # ------------------------------------------------------------------
    def train(self, lines: Iterable[bytes]) -> "FvcCompressor":
        """Build a new compressor whose table holds the most frequent
        words of the sample ``lines`` (same table size)."""
        counts: Counter[int] = Counter()
        for line in lines:
            if len(line) != self.line_size:
                raise CompressionError(
                    f"training line has {len(line)} bytes, "
                    f"expected {self.line_size}"
                )
            for offset in range(0, self.line_size, 4):
                counts[int.from_bytes(line[offset:offset + 4], "little")] += 1
        most_common = [value for value, _ in counts.most_common(len(self.table))]
        while len(most_common) < len(self.table):
            filler = next(
                v for v in DEFAULT_TABLE + tuple(range(256))
                if v not in most_common
            )
            most_common.append(filler)
        return FvcCompressor(self.line_size, most_common)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def _compress_line(self, data: bytes) -> CompressedLine:
        symbols: list[_Symbol] = []
        bits = 0
        for offset in range(0, self.line_size, 4):
            word = int.from_bytes(data[offset:offset + 4], "little")
            index = self._index.get(word)
            if index is not None:
                symbols.append(_Symbol(True, index))
                bits += 1 + self.index_bits
            else:
                symbols.append(_Symbol(False, word))
                bits += 1 + 32
        size = max(1, math.ceil(bits / 8))
        if size >= self.line_size:
            return self._uncompressed(data)
        return CompressedLine(
            algorithm=self.name,
            encoding="fvc",
            size_bytes=size,
            line_size=self.line_size,
            state=tuple(symbols),
        )

    # ------------------------------------------------------------------
    # Batch size kernels
    # ------------------------------------------------------------------
    def _size_table(self, lines: list[bytes]) -> list[tuple[int, str]]:
        if batch.np is None or not lines:
            return [self._size_line(data) for data in lines]
        return self._size_table_numpy(lines)

    def _size_line(self, data: bytes) -> tuple[int, str]:
        line_size = self.line_size
        index = self._index
        n_words = line_size // 4
        hits = 0
        for offset in range(0, line_size, 4):
            if int.from_bytes(data[offset:offset + 4], "little") in index:
                hits += 1
        bits = n_words + hits * self.index_bits + (n_words - hits) * 32
        size = max(1, math.ceil(bits / 8))
        if size >= line_size:
            return line_size, "uncompressed"
        return size, "fvc"

    def _size_table_numpy(self, lines: list[bytes]) -> list[tuple[int, str]]:
        np = batch.np
        line_size = self.line_size
        words = batch.word_matrix(lines, 4)
        in_table = np.zeros(words.shape, dtype=bool)
        for value in self.table:
            in_table |= words == value
        n_words = words.shape[1]
        hits = in_table.sum(axis=1)
        bits = n_words + hits * self.index_bits + (n_words - hits) * 32
        sizes = np.maximum(1, (bits + 7) // 8).tolist()
        return [
            (size, "fvc") if size < line_size else (line_size, "uncompressed")
            for size in sizes
        ]

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.encoding == "uncompressed":
            return bytes(line.state)
        out = bytearray()
        for symbol in line.state:
            word = (
                self.table[symbol.payload] if symbol.in_table
                else symbol.payload
            )
            out += word.to_bytes(4, "little")
        return bytes(out)
