"""Command-line interface: ``python -m repro <command>``.

Commands:
    list-apps            show the workload pool and its characteristics
    run APP              simulate one application under one design
    trace APP            traced run: stall attribution + metric export
    compare APP          compare all five Figure-7 designs on one app
    figure ID            regenerate one paper figure/table
    compress FILE|-      compress raw bytes line by line and report ratios
    cache info|clear|sweep
                         inspect, empty, or sweep leftover temp files
                         from the persistent run cache
    check                differential correctness harness: round-trip
                         fuzzing, cross-backend agreement, simulator
                         conservation invariants
    bench report         render the checked-in BENCH_*.json benchmark
                         records (before/after trajectory) as tables
    serve                run the simulation-as-a-service sweep server
    worker               join a fabric-mode server as a sweep worker
    submit               submit a run list / sweep to a sweep server
    status JOB           poll one job's progress on a sweep server
    result JOB           fetch one finished job's results as JSON

The CLI is a thin layer over the public API (``repro.run_app``,
``repro.harness.figures``), so everything it prints is reproducible from
Python.
"""

from __future__ import annotations

import argparse
import sys

from repro import design as designs
from repro.compression import ALGORITHMS, make_algorithm
from repro.gpu.config import GPUConfig
from repro.harness import figures
from repro.harness.report import render_table
from repro.harness.runner import run_app
from repro.workloads.apps import APPLICATIONS, get_app

CONFIGS = {
    "small": GPUConfig.small,
    "medium": GPUConfig.medium,
    "full": GPUConfig,
}

DESIGNS = {
    "base": lambda algo: designs.base(),
    "hw-mem": designs.hw_mem,
    "hw": designs.hw,
    "caba": designs.caba,
    "caba-l2u": designs.caba_l2_uncompressed,
    "ideal": designs.ideal,
}

def _extensions():
    from repro.harness import extensions

    return extensions


FIGURES = {
    "fig1": lambda cfg: figures.fig1_cycle_breakdown(cfg),
    "fig2": lambda cfg: figures.fig2_unallocated_registers(),
    "fig5": lambda cfg: figures.fig5_bdi_example(),
    "fig7": lambda cfg: figures.fig7_performance(cfg),
    "fig8": lambda cfg: figures.fig8_bandwidth(cfg),
    "fig9": lambda cfg: figures.fig9_energy(cfg),
    "fig10": lambda cfg: figures.fig10_algorithms(cfg),
    "fig11": lambda cfg: figures.fig11_compression_ratio(),
    "fig12": lambda cfg: figures.fig12_bw_sensitivity(cfg),
    "fig13": lambda cfg: figures.fig13_cache_compression(cfg),
    "tab1": lambda cfg: figures.tab1_system_config(),
    "mdcache": lambda cfg: figures.md_cache_study(cfg),
    "memo": lambda cfg: _extensions().memoization_study(cfg),
    "prefetch": lambda cfg: _extensions().prefetch_study(cfg),
    "capacity": lambda cfg: _extensions().capacity_study(cfg),
}

SCENARIOS = ("prefetch", "memoization")


def _jobs_arg(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CABA (ISCA 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="show the workload pool")

    run_p = sub.add_parser(
        "run", help="simulate one application or assist-warp scenario"
    )
    run_p.add_argument("app", nargs="?", default=None,
                       help="application name (see list-apps); omit when "
                            "--scenario is given")
    run_p.add_argument("--design", choices=sorted(DESIGNS), default="caba")
    run_p.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                       default="bdi")
    run_p.add_argument("--config", choices=sorted(CONFIGS), default="small")
    run_p.add_argument("--bandwidth-scale", type=float, default=1.0)
    run_p.add_argument("--sample", nargs="?", const="1", default=None,
                       metavar="W:M:S",
                       help="interval-sampled simulation: bare flag for "
                            "the default period, or WARMUP:MEASURE:SKIP "
                            "cycles (exact simulation is the default)")
    run_p.add_argument("--capacity", type=float, default=None,
                       metavar="FRACTION",
                       help="capacity mode: device-memory budget as a "
                            "fraction of the app's uncompressed footprint "
                            "(spilled lines pay host-link transfers)")
    run_p.add_argument("--capacity-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="capacity mode with an absolute device budget "
                            "(overrides --capacity)")
    run_p.add_argument("--scenario", choices=SCENARIOS, default=None,
                       help="run an assist-warp scenario kernel instead "
                            "of an application")
    run_p.add_argument("--no-assist", action="store_true",
                       help="scenario baseline: same kernel, no assist-"
                            "warp controller")
    run_p.add_argument("--distance", type=int, default=2,
                       help="prefetch scenario: stride-prefetch distance")
    run_p.add_argument("--redundancy", type=float, default=0.5,
                       help="memoization scenario: fraction of redundant "
                            "iterations")

    trace_p = sub.add_parser(
        "trace",
        help="run one application with the observability layer and "
             "export stall-attribution / metric artifacts",
    )
    trace_p.add_argument("app", help="application name (see list-apps)")
    trace_p.add_argument("--design", choices=sorted(DESIGNS), default="caba")
    trace_p.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                         default="bdi")
    trace_p.add_argument("--config", choices=sorted(CONFIGS), default="small")
    trace_p.add_argument("--out", default=None,
                         help="output directory (default: the run cache's "
                              "traces directory)")
    trace_p.add_argument("--chrome", action="store_true",
                         help="also emit a chrome://tracing timeline")

    cmp_p = sub.add_parser("compare", help="compare the five designs")
    cmp_p.add_argument("app")
    cmp_p.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                       default="bdi")
    cmp_p.add_argument("--config", choices=sorted(CONFIGS), default="small")

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("id", choices=sorted(FIGURES))
    fig_p.add_argument("--config", choices=sorted(CONFIGS), default="small")
    fig_p.add_argument("--jobs", type=_jobs_arg, default=None,
                       help="simulation worker processes "
                            "(default: REPRO_JOBS or 1)")
    fig_p.add_argument("--retries", type=int, default=None,
                       help="retry budget per failed run "
                            "(default: REPRO_RETRIES or 1)")
    fig_p.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds "
                            "(default: REPRO_RUN_TIMEOUT; 0 disables)")

    comp_p = sub.add_parser(
        "compress", help="compress a file's bytes line by line"
    )
    comp_p.add_argument("path", help="input file, or '-' for stdin")
    comp_p.add_argument("--line-size", type=int, default=128)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent run cache"
    )
    cache_p.add_argument("action", choices=("info", "clear", "sweep"))

    check_p = sub.add_parser(
        "check",
        help="differential correctness harness: round-trip fuzzing, "
             "cross-backend agreement, simulator conservation invariants",
    )
    check_p.add_argument("--seed", type=int, default=1,
                         help="fuzzing seed (failures replay from it)")
    check_p.add_argument("--lines", type=int, default=None,
                         help="fuzzed lines per generator "
                              "(default 256; --quick 32; --all 10000)")
    check_p.add_argument("--apps", nargs="+", default=None,
                         metavar="APP",
                         help="app images for the differential and "
                              "invariant passes")
    check_p.add_argument("--algorithms", nargs="+", default=None,
                         choices=sorted(ALGORITHMS), metavar="ALGO",
                         help="algorithm subset (default: all five)")
    check_p.add_argument("--skip-fuzz", action="store_true",
                         help="skip the round-trip fuzzing pass")
    check_p.add_argument("--skip-differential", action="store_true",
                         help="skip the four-path differential pass")
    check_p.add_argument("--skip-invariants", action="store_true",
                         help="skip the simulation replay invariants")
    check_p.add_argument("--skip-sampling", action="store_true",
                         help="skip the sampled-vs-exact differential "
                              "(the slowest pass: nine complete runs)")
    check_p.add_argument("--sampling-points", nargs="+", default=None,
                         metavar="APP@DESIGN",
                         help="sampling-differential points to certify "
                              "(e.g. PVC@Base MM@CABA-BDI); requesting a "
                              "point outside the certified matrix fails "
                              "with UncertifiedSamplingPointError")
    check_p.add_argument("--skip-soa", action="store_true",
                         help="skip the SoA-vs-reference simulator "
                              "differential")
    check_p.add_argument("--skip-scenarios", action="store_true",
                         help="skip the capacity-mode and prefetch/"
                              "memoization scenario invariants")
    check_p.add_argument("--quick", action="store_true",
                         help="CI-sized pass: few lines, one app")
    check_p.add_argument("--all", action="store_true", dest="full",
                         help="acceptance pass: 10k lines per generator, "
                              "full app/algorithm matrix")
    check_p.add_argument("-v", "--verbose", action="store_true",
                         help="list passing checks too")

    bench_p = sub.add_parser(
        "bench",
        help="render the checked-in benchmark records as text tables",
    )
    bench_p.add_argument("action", choices=("report",))
    bench_p.add_argument("--files", nargs="+", default=None, metavar="JSON",
                         help="benchmark record files (default: "
                              "BENCH_runner.json and BENCH_compression.json "
                              "in the current directory)")

    serve_p = sub.add_parser(
        "serve",
        help="run the async sweep server (submissions dedup against the "
             "content-addressed run cache and in-flight work)",
    )
    serve_p.add_argument("--host", default=None,
                         help="bind address (default: REPRO_SERVE_HOST "
                              "or 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="bind port, 0 for ephemeral (default: "
                              "REPRO_SERVE_PORT or 8377)")
    serve_p.add_argument("--jobs", type=_jobs_arg, default=None,
                         help="simulation worker processes "
                              "(default: REPRO_SERVE_JOBS or 1)")
    serve_p.add_argument("--fabric", action="store_true", default=None,
                         help="lease sweeps to remote 'repro worker' "
                              "processes instead of simulating "
                              "in-process (default: REPRO_FABRIC)")

    url_help = "server URL (default: REPRO_SERVE_URL or http://127.0.0.1:8377)"
    worker_p = sub.add_parser(
        "worker",
        help="join a fabric-mode sweep server as a simulation worker",
    )
    worker_p.add_argument("--url", default=None, help=url_help)
    worker_p.add_argument("--name", default=None,
                          help="worker name for the coordinator's "
                               "stats (default: pid<NNN>)")
    worker_p.add_argument("--lease-specs", type=int, default=None,
                          help="specs to request per lease (default: "
                               "the coordinator's REPRO_FABRIC_LEASE_SPECS)")
    worker_p.add_argument("--poll", type=float, default=None,
                          help="idle poll interval in seconds "
                               "(default: the coordinator's hint)")
    worker_p.add_argument("--max-idle", type=float, default=None,
                          help="exit after this many consecutive idle "
                               "seconds (default: run until killed)")
    worker_p.add_argument("--stall-after", type=int, default=None,
                          help=argparse.SUPPRESS)  # failure-injection hook

    submit_p = sub.add_parser(
        "submit", help="submit runs to a sweep server"
    )
    submit_p.add_argument("payload", nargs="?", default=None,
                          help="JSON payload file ('-' for stdin) with "
                               "'runs' or 'sweep'; omit when using "
                               "--apps/--designs")
    submit_p.add_argument("--apps", nargs="+", default=None, metavar="APP",
                          help="sweep these apps (cross product with "
                               "--designs)")
    submit_p.add_argument("--designs", nargs="+", default=None,
                          metavar="DESIGN",
                          help="sweep design names (default: all; see "
                               "'run --design' choices)")
    submit_p.add_argument("--algorithm", default="bdi",
                          help="compression algorithm for the sweep "
                               "(default bdi)")
    submit_p.add_argument("--config", choices=sorted(CONFIGS),
                          default="small")
    submit_p.add_argument("--url", default=None, help=url_help)
    submit_p.add_argument("--tenant", default=None,
                          help="tenant identity for quotas (default: "
                               "REPRO_SERVE_TENANT or 'anonymous')")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job finishes and print "
                               "its results")

    status_p = sub.add_parser(
        "status", help="poll one job's progress on a sweep server"
    )
    status_p.add_argument("job", help="job id returned by submit")
    status_p.add_argument("--url", default=None, help=url_help)
    status_p.add_argument("--tenant", default=None)

    result_p = sub.add_parser(
        "result", help="fetch one finished job's results as JSON"
    )
    result_p.add_argument("job", help="job id returned by submit")
    result_p.add_argument("--url", default=None, help=url_help)
    result_p.add_argument("--tenant", default=None)
    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list_apps() -> int:
    print(f"{'name':6s} {'suite':9s} {'bound':8s} {'compr.':7s} "
          f"{'warps/blk':>9s} {'regs':>5s} {'iters':>6s}")
    for name in sorted(APPLICATIONS):
        app = APPLICATIONS[name]
        print(f"{name:6s} {app.suite:9s} {app.category:8s} "
              f"{'yes' if app.compressible else 'no':7s} "
              f"{app.warps_per_block:9d} {app.regs_per_thread:5d} "
              f"{app.iterations:6d}")
    return 0


def _resolve_design(name: str, algorithm: str):
    return DESIGNS[name](algorithm)


def _print_run(run, sample) -> None:
    print(f"app                : {run.app}")
    print(f"design             : {run.design}")
    if sample is not None:
        print(f"sampling           : {sample.warmup}:{sample.measure}:"
              f"{sample.skip} ({sample.detail_fraction:.0%} detail, "
              f"extrapolated cycles are approximate)")
    print(f"cycles             : {run.cycles}")
    print(f"IPC                : {run.ipc:.4f}")
    print(f"DRAM bus busy      : {run.bandwidth_utilization:.1%}")
    print(f"compression ratio  : {run.compression_ratio:.2f}x")
    print(f"energy             : {run.energy.total * 1e3:.3f} mJ")
    print(f"assist instructions: {run.assist_instructions}")
    if run.md_cache_hit_rate is not None:
        print(f"MD-cache hit rate  : {run.md_cache_hit_rate:.1%}")
    cap = run.capacity
    if cap is not None:
        print(f"capacity budget    : {cap['device_bytes']} B "
              f"(footprint {cap['footprint_bytes']} B, stored "
              f"{cap['stored_bytes']} B)")
        print(f"spilled lines      : {cap['spill_lines']}/"
              f"{cap['total_lines']} ({cap['spill_fraction']:.1%})")
        print(f"effective capacity : "
              f"{cap['effective_capacity_ratio']:.2f}x")
        print(f"host link          : {cap['host_reads']} reads / "
              f"{cap['host_writes']} writes, {cap['host_bursts']} bursts, "
              f"{cap['host_bus_utilization']:.1%} busy")
    scen = run.scenario
    if scen is not None:
        mode = "assist" if scen["assist"] else "baseline (no assist)"
        print(f"scenario           : {scen['kind']} [{mode}]")
        for key in ("trained_streams", "prefetches_issued", "dropped_mshr",
                    "dropped_throttle", "lookups", "hits", "lut_hit_rate",
                    "skipped_instrs", "l1_load_hits"):
            if key in scen:
                value = scen[key]
                text = f"{value:.3f}" if isinstance(value, float) else value
                print(f"  {key:17s}: {text}")
    if run.truncated:
        print("warning: run hit the max-cycle guard (results truncated)")


def _cmd_run(args) -> int:
    from repro.gpu.sampling import SampleConfig

    config = CONFIGS[args.config]()
    if args.bandwidth_scale != 1.0:
        config = config.with_bandwidth_scale(args.bandwidth_scale)

    sample_given = args.sample is not None
    if sample_given:
        try:
            sample = SampleConfig.parse(args.sample)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        # No flag: the runner honours REPRO_SAMPLE itself, but resolve
        # the env here too so ambient-sampled output carries the
        # annotation.
        sample = SampleConfig.from_env()

    if args.scenario is not None:
        from repro.harness.runner import run_spec, scenario_spec

        spec = scenario_spec(
            args.scenario, config, sample=sample,
            assist=not args.no_assist,
            distance=args.distance,
            redundancy=args.redundancy,
        )
        _print_run(run_spec(spec), sample)
        return 0

    if args.app is None:
        print("error: an application name is required unless --scenario "
              "is given", file=sys.stderr)
        return 2
    get_app(args.app)  # early, friendly error for bad names
    design = _resolve_design(args.design, args.algorithm)

    capacity = None
    if args.capacity_bytes is not None or args.capacity is not None:
        from repro.memory.hostlink import CapacityConfig

        if args.capacity_bytes is not None:
            budget = args.capacity_bytes
        else:
            from repro.workloads.tracegen import TraceScale, footprint_extents

            extents = footprint_extents(
                get_app(args.app), config, TraceScale()
            )
            footprint = sum(length for _, length in extents)
            footprint *= config.line_size
            budget = max(config.line_size, int(footprint * args.capacity))
        try:
            capacity = CapacityConfig(device_bytes=budget)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    kwargs = {"capacity": capacity}
    if sample_given:
        kwargs["sample"] = sample
    run = run_app(args.app, design, config, **kwargs)
    _print_run(run, sample)
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.harness.cache import get_cache
    from repro.obs.export import render_ledger, write_trace_files

    get_app(args.app)
    config = CONFIGS[args.config]()
    design = _resolve_design(args.design, args.algorithm)
    run = run_app(args.app, design, config, trace=True, chrome=args.chrome)
    print(f"app    : {run.app}")
    print(f"design : {run.design}")
    print(f"cycles : {run.cycles}")
    print(f"IPC    : {run.ipc:.4f}")
    print()
    print(render_ledger(run.obs))
    if args.out is not None:
        out_dir = Path(args.out)
    else:
        cache = get_cache()
        out_dir = cache.trace_dir() if cache is not None else Path("traces")
    base = f"{run.app}-{run.design}".replace("/", "_")
    for path in write_trace_files(run.obs, out_dir, base):
        print(f"wrote {path}")
    return 0


def _cmd_compare(args) -> int:
    get_app(args.app)
    config = CONFIGS[args.config]()
    points = [
        designs.base(),
        designs.hw_mem(args.algorithm),
        designs.hw(args.algorithm),
        designs.caba(args.algorithm),
        designs.ideal(args.algorithm),
    ]
    base = run_app(args.app, points[0], config)
    print(f"{'design':12s} {'speedup':>8s} {'bw':>7s} {'energy':>8s}")
    for point in points:
        run = run_app(args.app, point, config)
        print(f"{point.name:12s} {run.ipc / base.ipc:8.2f} "
              f"{run.bandwidth_utilization:7.1%} "
              f"{run.energy.total / base.energy.total:8.2f}")
    return 0


def _cmd_figure(args) -> int:
    from repro.harness import parallel

    parallel.configure(jobs=args.jobs, retries=args.retries,
                       timeout=args.timeout)
    try:
        config = CONFIGS[args.config]()
        result = FIGURES[args.id](config)
    except parallel.ExperimentFailure as exc:
        # Completed sibling runs are already checkpointed; report the
        # losers and exit non-zero so CI notices.
        print(f"error: {args.id} incomplete\n{exc}", file=sys.stderr)
        return 1
    finally:
        parallel.shutdown()
    print(render_table(result))
    return 0


def _cmd_cache(args) -> int:
    from repro.harness.cache import RunCache, cache_enabled

    cache = RunCache()
    if args.action == "info":
        info = cache.info()
        print(f"root          : {info['root']}")
        print(f"version stamp : {info['stamp']}")
        print(f"entries       : {info['entries']}")
        print(f"stale entries : {info['stale_entries']}")
        print(f"total size    : {info['total_bytes'] / 1024:.1f} KiB")
        print(f"plane entries : {info['plane_entries']} "
              f"({info['stale_plane_entries']} stale)")
        print(f"plane size    : {info['plane_bytes'] / 1024:.1f} KiB")
        print(f"trace files   : {info['trace_entries']} "
              f"({info['stale_trace_entries']} stale)")
        print(f"trace size    : {info['trace_bytes'] / 1024:.1f} KiB")
        print(f"tmp leftovers : {info['tmp_entries']} "
              f"({info['tmp_bytes'] / 1024:.1f} KiB; "
              f"'cache sweep' removes them)")
        if info["tmp_young_entries"]:
            print(f"  young (kept) : {info['tmp_young_entries']} newer "
                  f"than {info['tmp_age_threshold']:.0f}s — possible "
                  f"in-flight writes, skipped by 'cache sweep'")
        if not cache_enabled():
            print("note: persistent caching is disabled (REPRO_CACHE=0)")
        return 0
    if args.action == "sweep":
        removed = cache.sweep_tmp()
        skipped = cache.info()["tmp_young_entries"]
        print(f"swept {removed} leftover .tmp file(s) from {cache.root}")
        if skipped:
            print(f"kept {skipped} young .tmp file(s) (possible in-flight "
                  f"writes; REPRO_CACHE_TMP_AGE tunes the threshold)")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached runs from {cache.root}")
    return 0


def _cmd_compress(args) -> int:
    if args.path == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(args.path, "rb") as fh:
            data = fh.read()
    if not data:
        print("no input data", file=sys.stderr)
        return 1
    line_size = args.line_size
    if len(data) % line_size:
        data += bytes(line_size - len(data) % line_size)
    print(f"{len(data)} bytes in {len(data) // line_size} lines "
          f"of {line_size} B")
    for name in sorted(ALGORITHMS):
        algo = make_algorithm(name, line_size)
        compressed = sum(
            algo.compress(data[i:i + line_size]).size_bytes
            for i in range(0, len(data), line_size)
        )
        print(f"  {name:10s} {len(data) / compressed:6.2f}x "
              f"({compressed} bytes)")
    return 0


def _cmd_check(args) -> int:
    from repro.verify import run_checks

    if args.quick and args.full:
        print("error: --quick and --all are mutually exclusive",
              file=sys.stderr)
        return 2
    lines = args.lines
    apps = args.apps
    differential_apps = None
    differential_lines = None
    sampling = not args.skip_sampling
    if args.quick:
        lines = lines if lines is not None else 32
        apps = apps if apps is not None else ["PVC"]
        # The sampling differential is nine complete runs; it is the
        # opposite of quick.
        sampling = False
    elif args.full:
        lines = lines if lines is not None else 10_000
        if apps is None:
            # Acceptance scope: differential agreement on *every* app
            # image; invariant replays stay on the golden trio.
            differential_apps = sorted(APPLICATIONS)
            differential_lines = 2048
    elif lines is None:
        lines = 256
    for app in apps or ():
        get_app(app)  # early, friendly error for bad names
    if args.sampling_points:
        from repro.verify import parse_point

        try:
            for text in args.sampling_points:
                app, _ = parse_point(text)
                get_app(app)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sampling = True  # an explicit request overrides --quick's skip
    report = run_checks(
        seed=args.seed,
        lines=lines,
        apps=apps,
        algorithms=args.algorithms,
        fuzz=not args.skip_fuzz,
        differential=not args.skip_differential,
        invariants=not args.skip_invariants,
        soa=not args.skip_soa,
        sampling=sampling,
        scenarios=not args.skip_scenarios,
        differential_apps=differential_apps,
        differential_lines=differential_lines,
        sampling_points=args.sampling_points,
    )
    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import json
    import os

    from repro.harness.report import render_bench_report

    paths = args.files
    if paths is None:
        paths = [p for p in ("BENCH_runner.json", "BENCH_compression.json")
                 if os.path.exists(p)]
        if not paths:
            print("error: no BENCH_*.json files in the current directory "
                  "(use --files)", file=sys.stderr)
            return 1
    first = True
    for path in paths:
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        if not first:
            print()
        print(render_bench_report(data, os.path.basename(path)))
        first = False
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import ServiceConfig, make_server

    config = ServiceConfig.from_env()
    if args.host is not None:
        config.host = args.host
    if args.port is not None:
        config.port = args.port
    if args.jobs is not None:
        config.jobs = args.jobs
    if args.fabric is not None:
        config.fabric = args.fabric
    server = make_server(config)
    host, port = server.start_background()
    limits = config.limits
    print(f"sweep server listening on http://{host}:{port}")
    if config.fabric:
        fabric = server.store.engine.config
        print(f"  engine           : fabric coordinator "
              f"(lease ttl {fabric.lease_ttl:g}s, "
              f"{fabric.lease_specs} specs/lease, "
              f"{fabric.retries} attempts)")
        print(f"  workers join with: repro worker --url "
              f"http://{host}:{port}")
    else:
        print(f"  engine jobs      : {config.jobs}")
    print(f"  tenant rate      : {limits.rate:g}/s "
          f"(burst {limits.burst:g})")
    print(f"  tenant queue cap : {limits.max_queued_jobs} jobs, "
          f"{limits.max_inflight_specs} in-flight specs")
    try:
        # The server runs on its own event-loop thread; this thread
        # just waits for an interrupt so Ctrl-C shuts down cleanly.
        asyncio.run(asyncio.Event().wait())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        server.store.close()
    return 0


def _service_url(args) -> str:
    import os

    return args.url or os.environ.get(
        "REPRO_SERVE_URL", "http://127.0.0.1:8377"
    )


def _service_client(args):
    import os

    from repro.service.client import ServiceClient

    tenant = args.tenant or os.environ.get(
        "REPRO_SERVE_TENANT", "anonymous"
    )
    return ServiceClient(_service_url(args), tenant=tenant)


def _cmd_worker(args) -> int:
    from repro.service.client import ServiceError
    from repro.service.fabric import FabricWorker

    url = _service_url(args)
    worker = FabricWorker(
        url,
        name=args.name,
        lease_specs=args.lease_specs,
        poll=args.poll,
        max_idle=args.max_idle,
        stall_after=args.stall_after,
        log=lambda message: print(f"worker: {message}", flush=True),
    )
    try:
        summary = worker.run()
    except KeyboardInterrupt:
        print("\nworker: interrupted", flush=True)
        return 130
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"worker: done — {summary['completed']} spec(s) "
          f"({summary['simulated']} simulated, "
          f"{summary['cached']} served from cache)", flush=True)
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.service.client import ServiceError

    if (args.payload is None) == (args.apps is None):
        print("error: give a payload file or --apps, not both",
              file=sys.stderr)
        return 2
    if args.payload is not None:
        try:
            if args.payload == "-":
                payload = json.load(sys.stdin)
            else:
                with open(args.payload) as fh:
                    payload = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read payload: {exc}", file=sys.stderr)
            return 2
    else:
        sweep = {"apps": args.apps, "algorithm": args.algorithm,
                 "config": args.config}
        if args.designs is not None:
            sweep["designs"] = args.designs
        payload = {"sweep": sweep}
    client = _service_client(args)
    try:
        accepted = client.submit(payload)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job        : {accepted['job']}")
    print(f"tenant     : {accepted['tenant']}")
    print(f"served from: {accepted['served_from']}")
    print(f"specs      : {accepted['specs']}")
    if not args.wait:
        return 0
    try:
        final = client.wait(accepted["job"])
        print(json.dumps(client.result(accepted["job"]), indent=2,
                         sort_keys=True))
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0 if final["status"] == "done" else 1


def _cmd_status(args) -> int:
    import json

    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        status = client.status(args.job)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_result(args) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        sys.stdout.write(client.result_bytes(args.job).decode())
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "list-apps": lambda args: _cmd_list_apps(),
    "run": _cmd_run,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "compress": _cmd_compress,
    "cache": _cmd_cache,
    "check": _cmd_check,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
}


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        # A subcommand registered on the parser but missing from the
        # dispatch table must fail like any unknown command (usage +
        # exit 2), not crash with a traceback.
        parser.print_usage(sys.stderr)
        print(f"repro: error: unknown command {args.command!r}",
              file=sys.stderr)
        return 2
    try:
        return handler(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
