"""Experiment runner: one call = one (application, design, machine) run.

Wires the full stack together — workload trace, compressed memory image,
CABA controllers, simulator, energy model — and returns a
:class:`RunResult` with every metric the paper's figures report. Results
are memoized per process so the Figure 7/8/9 harnesses (which share the
same runs) only simulate each point once; baseline compression sizes are
also shared across designs of the same (app, algorithm) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.compression import make_algorithm
from repro.core.controller import CabaController
from repro.core.params import CabaParams
from repro.core.subroutines import SubroutineLibrary
from repro.design import DesignPoint
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimulationResult, Simulator
from repro.gpu.stats import Slot
from repro.memory.image import LineInfo, MemoryImage
from repro.workloads.apps import AppProfile, get_app
from repro.workloads.data_patterns import make_line_generator
from repro.workloads.tracegen import TraceScale, build_kernel


@dataclass
class RunResult:
    """All per-run metrics used by the paper's figures."""

    app: str
    design: str
    cycles: int
    ipc: float
    instructions: int
    assist_instructions: int
    bandwidth_utilization: float
    compression_ratio: float
    energy: EnergyBreakdown
    slot_breakdown: dict[Slot, float]
    md_cache_hit_rate: float | None
    dram_bursts: dict[str, int]
    l2_hit_rate: float
    truncated: bool
    occupancy_blocks: int
    raw: SimulationResult = field(repr=False, default=None)

    @property
    def energy_total(self) -> float:
        return self.energy.total


# Per-process caches.
_line_info_caches: dict[tuple, dict[int, LineInfo]] = {}
_run_cache: dict[tuple, RunResult] = {}


def clear_caches() -> None:
    """Drop memoized runs and compression size caches (mainly for tests)."""
    _line_info_caches.clear()
    _run_cache.clear()


def _resolve_app(app: str | AppProfile) -> AppProfile:
    if isinstance(app, AppProfile):
        return app
    return get_app(app)


def _compression_enabled(app: AppProfile, design: DesignPoint) -> bool:
    """Section 4.3.1: static profiling disables compression for
    applications that would not benefit (no compressible bandwidth)."""
    return design.compression_enabled and app.compressible


def build_image(
    app: AppProfile, design: DesignPoint, config: GPUConfig
) -> MemoryImage:
    """The compressed global-memory view for one run."""
    line_bytes = make_line_generator(
        app.data, line_size=config.line_size, seed=app.seed
    )
    algorithm = None
    if _compression_enabled(app, design):
        algorithm = make_algorithm(design.algorithm, config.line_size)
        cache_key = (app.name, design.algorithm, config.line_size)
        shared = _line_info_caches.setdefault(cache_key, {})
    else:
        shared = None
    return MemoryImage(
        line_bytes,
        algorithm,
        line_size=config.line_size,
        burst_bytes=config.burst_bytes,
        shared_cache=shared,
    )


def _make_caba_factory(
    design: DesignPoint,
    config: GPUConfig,
    params: CabaParams,
) -> tuple[Callable | None, int]:
    """Returns (controller factory, assist register demand per thread)."""
    if not design.uses_assist_warps or design.algorithm is None:
        return None, 0
    library = SubroutineLibrary(line_size=config.line_size)

    def factory(sm):
        return CabaController(sm, params, library, design.algorithm)

    return factory, library.register_demand(design.algorithm)


def run_app(
    app: str | AppProfile,
    design: DesignPoint,
    config: GPUConfig | None = None,
    scale: TraceScale = TraceScale(),
    caba_params: CabaParams | None = None,
    use_cache: bool = True,
) -> RunResult:
    """Simulate one application under one design point.

    Args:
        app: Application name (see ``repro.workloads.APPLICATIONS``) or a
            profile object.
        design: Compression design point.
        config: Machine configuration; defaults to ``GPUConfig.small()``
            so casual calls stay fast. Use ``GPUConfig()`` for Table 1.
        scale: Workload scaling.
        caba_params: CABA framework knobs (CABA designs only).
        use_cache: Reuse memoized results for identical runs.
    """
    profile = _resolve_app(app)
    if config is None:
        config = GPUConfig.small()
    params = caba_params if caba_params is not None else CabaParams()

    cache_key = None
    if use_cache:
        cache_key = (profile.name, design, config, scale, params)
        cached = _run_cache.get(cache_key)
        if cached is not None:
            return cached

    # Profiling gate (Section 4.3.1): incompressible apps run the
    # baseline path even under compression designs.
    effective_design = design
    if design.compression_enabled and not profile.compressible:
        from repro.design import base as base_design

        effective_design = base_design()

    image = build_image(profile, effective_design, config)
    kernel = build_kernel(profile, config, scale)
    caba_factory, assist_regs = _make_caba_factory(
        effective_design, config, params
    )
    simulator = Simulator(
        config,
        kernel,
        effective_design,
        image,
        caba_factory=caba_factory,
        assist_regs_per_thread=assist_regs,
    )
    sim_result = simulator.run()
    energy = EnergyModel().evaluate(sim_result, config, effective_design)

    memory = sim_result.memory
    l2_accesses = memory.stats.l2_accesses
    result = RunResult(
        app=profile.name,
        design=design.name,
        cycles=sim_result.cycles,
        ipc=sim_result.ipc,
        instructions=sim_result.stats.instructions,
        assist_instructions=sim_result.stats.assist_instructions,
        bandwidth_utilization=sim_result.bandwidth_utilization(),
        compression_ratio=memory.image.observed_compression_ratio(),
        energy=energy,
        slot_breakdown=sim_result.stats.slot_breakdown(),
        md_cache_hit_rate=memory.md_cache_hit_rate(),
        dram_bursts=memory.dram_bursts(),
        l2_hit_rate=(memory.stats.l2_hits / l2_accesses if l2_accesses else 0.0),
        truncated=sim_result.truncated,
        occupancy_blocks=sim_result.occupancy.blocks_per_sm,
        raw=sim_result,
    )
    if cache_key is not None:
        _run_cache[cache_key] = result
    return result


def speedup(result: RunResult, baseline: RunResult) -> float:
    """IPC ratio vs. a baseline run of the same application."""
    if baseline.ipc == 0:
        return 0.0
    return result.ipc / baseline.ipc


def geomean(values) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
