"""Experiment runner: one call = one (application, design, machine) run.

Wires the full stack together — workload trace, compressed memory image,
CABA controllers, simulator, energy model — and returns a
:class:`RunResult` with every metric the paper's figures report.

Caching happens at two levels. Results are memoized per process (the
Figure 7/8/9 harnesses share runs, so each point simulates once), and —
because every run is fully deterministic — raw-free results are also
persisted to a content-addressed on-disk cache
(:mod:`repro.harness.cache`) keyed by the run spec plus a source-code
version stamp, so repeated benchmark/CI invocations skip simulation
entirely. Baseline compression sizes are shared across designs of the
same (app, algorithm) pair.

A :class:`RunSpec` is the picklable identity of one run; it is both the
cache key and the unit of work the parallel engine
(:mod:`repro.harness.parallel`) ships to worker processes.

The persistent cache doubles as the engine's checkpoint store: a pool
worker persists its result from inside ``run_spec`` and the parent
re-records it via :func:`record_result` the moment the future lands,
so a crashed, killed or interrupted sweep keeps every completed run
and a rerun only redoes the failures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.compression import bestofall as bestofall_mod
from repro.compression import make_algorithm
from repro.core.controller import CabaController
from repro.core.params import CabaParams
from repro.core.subroutines import SubroutineLibrary
from repro.design import DesignPoint
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.gpu.simulator import SimulationResult, Simulator
from repro.gpu.stats import Slot
from repro.harness import cache as run_cache_store
from repro.harness.scenarios import (
    ScenarioSpec,
    build_scenario,
    collect_scenario_stats,
)
from repro.memory import plane as plane_mod
from repro.memory.hostlink import CapacityConfig, CapacityModel, plan_capacity
from repro.memory.image import LineInfo, MemoryImage
from repro.memory.plane import CompressionPlane
from repro.obs import RunObservation, trace_enabled
from repro.workloads.apps import AppProfile, get_app
from repro.workloads.data_patterns import make_line_generator
from repro.workloads.tracegen import TraceScale, build_kernel, footprint_extents


@dataclass(frozen=True)
class RunSpec:
    """Picklable identity of one simulation run.

    Every field is a frozen dataclass (or string) with a deterministic
    ``repr``, which makes the spec hashable, process-portable and usable
    as a stable content address for the persistent cache.
    """

    app: str
    design: DesignPoint
    config: GPUConfig
    scale: TraceScale = field(default_factory=TraceScale)
    params: CabaParams = field(default_factory=CabaParams)
    #: Interval-sampling knobs (None = exact simulation). The default
    #: follows REPRO_SAMPLE at spec-construction time, so env-driven
    #: sweeps sample consistently while pickled specs carry the choice
    #: to pool workers verbatim.
    sample: SampleConfig | None = field(
        default_factory=SampleConfig.from_env
    )
    #: Capacity-mode knobs (None = bandwidth mode, the default). When
    #: set, the app's stored footprint is placed against the budget and
    #: spilled lines travel the host link.
    capacity: CapacityConfig | None = None
    #: Assist-warp scenario (prefetch/memoization). When set, the run
    #: executes the scenario's synthetic kernel instead of a registered
    #: application; ``app`` carries the scenario kernel's name.
    scenario: ScenarioSpec | None = None

    def canonical(self) -> str:
        """Stable serialization used for content addressing. Includes
        the sampling config, so exact and sampled runs of the same
        point never collide in the persistent cache; likewise the
        capacity and scenario fields."""
        return repr((self.app, self.design, self.config,
                     self.scale, self.params, self.sample,
                     self.capacity, self.scenario))


@dataclass
class RunResult:
    """All per-run metrics used by the paper's figures."""

    app: str
    design: str
    cycles: int
    ipc: float
    instructions: int
    assist_instructions: int
    bandwidth_utilization: float
    compression_ratio: float
    energy: EnergyBreakdown
    slot_breakdown: dict[Slot, float]
    md_cache_hit_rate: float | None
    dram_bursts: dict[str, int]
    l2_hit_rate: float
    truncated: bool
    occupancy_blocks: int
    #: Store-path counters (kept on the slim result so the ablation and
    #: example studies do not need the raw simulation state).
    lines_compressed: int = 0
    l1_stores: int = 0
    rmw_reads: int = 0
    #: Capacity-mode outcome (placement + host-link traffic); None for
    #: bandwidth-mode runs, so pre-existing stats stay byte-identical.
    capacity: dict | None = None
    #: Scenario outcome (controller stats); None for compression runs.
    scenario: dict | None = None
    #: Observability payload (``RunObservation.export()``) for traced
    #: runs; persisted without its (large, optional) chrome section.
    obs: dict | None = field(repr=False, default=None)
    #: Full simulation state; only populated for ``keep_raw=True`` runs
    #: and never persisted (it holds the whole memory system).
    raw: SimulationResult | None = field(repr=False, default=None)

    @property
    def energy_total(self) -> float:
        return self.energy.total


# Per-process caches.
_line_info_caches: dict[tuple, dict[int, LineInfo]] = {}
_run_cache: dict[RunSpec, RunResult] = {}
#: Compression planes by content address, shared across every design of
#: a sweep (Base/CABA-BDI/... all reuse the same per-algorithm plane).
_plane_cache: dict[str, CompressionPlane] = {}
#: Byte-caching line generators by image identity; building planes for
#: several algorithms over the same image generates the bytes once.
_line_bytes_memo: dict[tuple, Callable[[int], bytes]] = {}
_LINE_BYTES_MEMO_CAP = 4


def clear_caches() -> None:
    """Drop memoized runs, compression size caches and the persistent
    cache handle (mainly for tests; the on-disk entries survive)."""
    _line_info_caches.clear()
    _run_cache.clear()
    _plane_cache.clear()
    _line_bytes_memo.clear()
    run_cache_store.reset_cache_handle()


#: Real simulator invocations performed by this process (cache hits
#: excluded). The sweep service's dedup guarantees — a coalesced or
#: cache-served job costs zero new simulations — are asserted on deltas
#: of this counter by the service tests and the CI smoke lane.
_sim_invocations = 0


def simulation_count() -> int:
    """How many times this process actually ran the simulator."""
    return _sim_invocations


def planes_enabled() -> bool:
    """Whether precomputed compression planes are in use (default yes;
    ``REPRO_PLANES=0`` forces the scalar per-access path everywhere)."""
    return os.environ.get("REPRO_PLANES", "1") != "0"


def _resolve_app(app: str | AppProfile) -> AppProfile:
    if isinstance(app, AppProfile):
        return app
    return get_app(app)


def _compression_enabled(app: AppProfile, design: DesignPoint) -> bool:
    """Section 4.3.1: static profiling disables compression for
    applications that would not benefit (no compressible bandwidth)."""
    return design.compression_enabled and app.compressible


def _cached_line_bytes(
    app: AppProfile, line_size: int
) -> Callable[[int], bytes]:
    """A line-byte generator that memoizes generated bytes.

    Keyed by the generator's full identity, so plane builds for several
    algorithms over one image run the (pure-Python, relatively slow)
    byte generation only once. Bounded to a few images to cap memory.
    """
    key = (repr(sorted(app.data.items())), app.seed, line_size)
    fn = _line_bytes_memo.pop(key, None)
    if fn is None:
        raw = make_line_generator(app.data, line_size=line_size, seed=app.seed)
        store: dict[int, bytes] = {}

        def fn(line: int, _raw=raw, _store=store) -> bytes:
            data = _store.get(line)
            if data is None:
                data = _raw(line)
                _store[line] = data
            return data

        while len(_line_bytes_memo) >= _LINE_BYTES_MEMO_CAP:
            _line_bytes_memo.pop(next(iter(_line_bytes_memo)))
    _line_bytes_memo[key] = fn  # (re-)insert at the end: LRU order
    return fn


def _plane_for(
    app: AppProfile,
    algorithm_name: str,
    line_size: int,
    burst_bytes: int,
    extents: tuple[tuple[int, int], ...],
) -> CompressionPlane:
    """Build-or-recall the plane for one (image, algorithm) pair.

    Lookup order: in-process memo, persistent cache, build. BestOfAll
    planes are composed from the (cached) component planes instead of
    compressing the image a fourth time.
    """
    key = plane_mod.plane_key(
        app.data, app.seed, algorithm_name, line_size, burst_bytes, extents
    )
    cached = _plane_cache.get(key)
    if cached is not None:
        return cached
    disk = run_cache_store.get_cache()
    if disk is not None:
        hit = disk.get_plane(key)
        if hit is not None:
            _plane_cache[key] = hit
            return hit
    if algorithm_name == "bestofall":
        components = [
            (name, _plane_for(app, name, line_size, burst_bytes, extents))
            for name in bestofall_mod.DEFAULT_COMPONENT_NAMES
        ]
        built = plane_mod.compose_best_of_all(
            components, line_size, burst_bytes, key
        )
    else:
        built = plane_mod.build_plane(
            _cached_line_bytes(app, line_size),
            extents,
            make_algorithm(algorithm_name, line_size),
            burst_bytes=burst_bytes,
            key=key,
        )
    _plane_cache[key] = built
    if disk is not None:
        disk.put_plane(key, built)
    return built


def plane_for_app(
    app: str | AppProfile,
    algorithm: str,
    line_count: int,
    line_size: int = 128,
    burst_bytes: int = 32,
) -> CompressionPlane | None:
    """The plane covering lines ``[0, line_count)`` of ``app``'s image.

    Used by harnesses that sample the image directly (e.g. the Fig. 11
    compression-ratio study) so they share plane construction and
    caching with the simulator. Returns ``None`` when planes are
    disabled (``REPRO_PLANES=0``); callers then fall back to scalar
    compression.
    """
    if not planes_enabled():
        return None
    profile = _resolve_app(app)
    return _plane_for(
        profile, algorithm, line_size, burst_bytes, ((0, line_count),)
    )


def build_image(
    app: AppProfile,
    design: DesignPoint,
    config: GPUConfig,
    scale: TraceScale | None = None,
) -> MemoryImage:
    """The compressed global-memory view for one run.

    When ``scale`` is given (the simulator path always passes it) and
    planes are enabled, the whole image footprint is batch-compressed
    upfront — or recalled from a cache — so the simulation itself never
    calls scalar ``compress()``.
    """
    line_bytes = make_line_generator(
        app.data, line_size=config.line_size, seed=app.seed
    )
    algorithm = None
    plane = None
    if _compression_enabled(app, design):
        algorithm = make_algorithm(design.algorithm, config.line_size)
        cache_key = (app.name, design.algorithm, config.line_size)
        shared = _line_info_caches.setdefault(cache_key, {})
        if scale is not None and planes_enabled():
            extents = footprint_extents(app, config, scale)
            plane = _plane_for(
                app, design.algorithm, config.line_size,
                config.burst_bytes, extents,
            )
    else:
        shared = None
    return MemoryImage(
        line_bytes,
        algorithm,
        line_size=config.line_size,
        burst_bytes=config.burst_bytes,
        shared_cache=shared,
        plane=plane,
    )


def _make_caba_factory(
    design: DesignPoint,
    config: GPUConfig,
    params: CabaParams,
    plane: CompressionPlane | None = None,
) -> tuple[Callable | None, int]:
    """Returns (controller factory, assist register demand per thread).

    With a plane, every encoding in the image is known upfront, so each
    controller gets a prebuilt encoding -> decompression-program table
    and the per-spawn library dispatch disappears from the hot path.
    """
    if not design.uses_assist_warps or design.algorithm is None:
        return None, 0
    library = SubroutineLibrary(line_size=config.line_size)
    programs = None
    if plane is not None:
        programs = {}
        for encoding in plane.encodings():
            if encoding == "uncompressed":
                continue
            try:
                programs[encoding] = library.decompression(
                    design.algorithm, encoding
                )
            except (ValueError, KeyError):
                continue

    def factory(sm):
        return CabaController(
            sm, params, library, design.algorithm, programs=programs
        )

    return factory, library.register_demand(design.algorithm)


def _simulate(
    profile: AppProfile,
    spec: RunSpec,
    trace: bool = False,
    chrome: bool = False,
) -> RunResult:
    """Execute one run; the returned result carries the raw state."""
    design = spec.design
    config = spec.config

    # Profiling gate (Section 4.3.1): incompressible apps run the
    # baseline path even under compression designs.
    effective_design = design
    if design.compression_enabled and not profile.compressible:
        from repro.design import base as base_design

        effective_design = base_design()

    image = build_image(profile, effective_design, config, spec.scale)
    kernel = build_kernel(profile, config, spec.scale)
    caba_factory, assist_regs = _make_caba_factory(
        effective_design, config, spec.params, plane=image.plane
    )
    capacity_model = None
    if spec.capacity is not None:
        capacity_model = _plan_capacity_model(
            profile, effective_design, config, spec, image
        )
    obs = (
        RunObservation.for_config(config, chrome=chrome) if trace else None
    )
    simulator = Simulator(
        config,
        kernel,
        effective_design,
        image,
        caba_factory=caba_factory,
        assist_regs_per_thread=assist_regs,
        obs=obs,
        sample=spec.sample,
        capacity=capacity_model,
    )
    sim_result = simulator.run()
    energy = EnergyModel().evaluate(sim_result, config, effective_design)

    memory = sim_result.memory
    stats = memory.stats
    l2_accesses = stats.l2_accesses
    return RunResult(
        app=profile.name,
        design=design.name,
        cycles=sim_result.cycles,
        ipc=sim_result.ipc,
        instructions=sim_result.stats.instructions,
        assist_instructions=sim_result.stats.assist_instructions,
        bandwidth_utilization=sim_result.bandwidth_utilization(),
        compression_ratio=memory.image.observed_compression_ratio(),
        energy=energy,
        slot_breakdown=sim_result.stats.slot_breakdown(),
        md_cache_hit_rate=memory.md_cache_hit_rate(),
        dram_bursts=memory.dram_bursts(),
        l2_hit_rate=(stats.l2_hits / l2_accesses if l2_accesses else 0.0),
        truncated=sim_result.truncated,
        occupancy_blocks=sim_result.occupancy.blocks_per_sm,
        lines_compressed=stats.lines_compressed,
        l1_stores=stats.l1_stores,
        rmw_reads=stats.rmw_reads,
        capacity=_capacity_payload(memory, sim_result.cycles),
        obs=obs.export() if obs is not None else None,
        raw=sim_result,
    )


def _plan_capacity_model(
    profile: AppProfile,
    design: DesignPoint,
    config: GPUConfig,
    spec: RunSpec,
    image: MemoryImage,
) -> CapacityModel:
    """Place the app's stored footprint against the capacity budget.

    The stored size per line is the plane-backed compressed size when
    the design keeps DRAM compressed, the full line otherwise — the
    same sizes the hierarchy charges, so placement and timing agree.
    """
    extents = footprint_extents(profile, config, spec.scale)
    if design.compress_dram and image.compression_enabled:
        stored_size_of = image.size_of
    else:
        def stored_size_of(line: int, _size=config.line_size) -> int:
            return _size
    plan = plan_capacity(
        extents, config.line_size, stored_size_of, spec.capacity
    )
    return CapacityModel(config=spec.capacity, plan=plan)


def _capacity_payload(memory, cycles: int) -> dict | None:
    """The RunResult capacity section (None in bandwidth mode)."""
    if memory.capacity is None:
        return None
    plan = memory.capacity.plan
    host = memory.host
    return {
        "device_bytes": plan.device_bytes,
        "footprint_bytes": plan.footprint_bytes,
        "stored_bytes": plan.stored_bytes,
        "total_lines": plan.total_lines,
        "spill_lines": len(plan.spilled),
        "spill_fraction": plan.spill_fraction,
        "effective_capacity_ratio": plan.effective_capacity_ratio,
        "host_reads": host.stats.reads,
        "host_writes": host.stats.writes,
        "host_bursts": host.stats.total_bursts,
        "host_bus_utilization": (
            host.bus.busy_time / cycles if cycles else 0.0
        ),
    }


def _simulate_scenario(
    spec: RunSpec, trace: bool = False, chrome: bool = False
) -> RunResult:
    """Execute one assist-warp scenario run (prefetch/memoization).

    Scenario kernels are synthetic and carry no compressible data, so
    the design point must be the plain baseline; the assist-warp
    controller comes from the scenario itself, not from a compression
    subroutine library. Everything else — sampling, tracing, caching —
    follows the standard path.
    """
    design = spec.design
    if design.compression_enabled or design.uses_assist_warps:
        raise ValueError(
            "scenario runs use the baseline design point; got "
            f"{design.name!r}"
        )
    config = spec.config
    kernel, factory, controllers = build_scenario(spec.scenario, config)
    image = MemoryImage(
        lambda line, _size=config.line_size: bytes(_size),
        None,
        line_size=config.line_size,
        burst_bytes=config.burst_bytes,
    )
    obs = (
        RunObservation.for_config(config, chrome=chrome) if trace else None
    )
    simulator = Simulator(
        config,
        kernel,
        design,
        image,
        caba_factory=factory,
        obs=obs,
        sample=spec.sample,
    )
    sim_result = simulator.run()
    energy = EnergyModel().evaluate(sim_result, config, design)

    memory = sim_result.memory
    stats = memory.stats
    l2_accesses = stats.l2_accesses
    return RunResult(
        app=spec.app,
        design=design.name,
        cycles=sim_result.cycles,
        ipc=sim_result.ipc,
        instructions=sim_result.stats.instructions,
        assist_instructions=sim_result.stats.assist_instructions,
        bandwidth_utilization=sim_result.bandwidth_utilization(),
        compression_ratio=1.0,
        energy=energy,
        slot_breakdown=sim_result.stats.slot_breakdown(),
        md_cache_hit_rate=memory.md_cache_hit_rate(),
        dram_bursts=memory.dram_bursts(),
        l2_hit_rate=(stats.l2_hits / l2_accesses if l2_accesses else 0.0),
        truncated=sim_result.truncated,
        occupancy_blocks=sim_result.occupancy.blocks_per_sm,
        lines_compressed=stats.lines_compressed,
        l1_stores=stats.l1_stores,
        rmw_reads=stats.rmw_reads,
        scenario={
            **collect_scenario_stats(spec.scenario, controllers),
            "l1_load_hits": stats.l1_load_hits,
        },
        obs=obs.export() if obs is not None else None,
        raw=sim_result,
    )


def scenario_spec(
    kind: str,
    config: GPUConfig | None = None,
    sample: SampleConfig | None | object = None,
    **knobs,
) -> RunSpec:
    """Convenience constructor for a scenario RunSpec.

    ``knobs`` are ScenarioSpec fields (assist, distance, degree,
    redundancy, region_len, iterations). ``sample`` defaults to exact
    mode; build the RunSpec directly to follow ``REPRO_SAMPLE``.
    """
    scenario = ScenarioSpec(kind=kind, **knobs)
    from repro.design import base as base_design

    kernel_name = (
        "memo_kernel" if kind == "memoization" else "latency_stream"
    )
    return RunSpec(
        app=kernel_name,
        design=base_design(),
        config=config if config is not None else GPUConfig.small(),
        sample=sample,
        scenario=scenario,
    )


def _satisfies(
    result: RunResult, keep_raw: bool, trace: bool, chrome: bool
) -> bool:
    """Whether a cached result can stand in for the requested run."""
    if keep_raw and result.raw is None:
        return False
    obs = result.obs
    if trace and obs is None:
        return False
    if chrome and (obs is None or "chrome" not in obs):
        return False
    return True


def cached_result(
    spec: RunSpec, trace: bool = False, chrome: bool = False
) -> RunResult | None:
    """Look up ``spec`` in the in-process memo and the persistent cache
    without simulating. Used by the parallel engine to pre-resolve work."""
    cached = _run_cache.get(spec)
    if cached is not None and _satisfies(cached, False, trace, chrome):
        return cached
    disk = run_cache_store.get_cache()
    if disk is not None:
        hit = disk.get(spec)
        if hit is not None and _satisfies(hit, False, trace, chrome):
            _run_cache[spec] = hit
            return hit
    return None


def record_result(spec: RunSpec, result: RunResult) -> None:
    """Integrate an externally computed (e.g. pool-worker) result into
    the in-process memo and the persistent cache."""
    slim = result if result.raw is None else replace(result, raw=None)
    _run_cache[spec] = slim
    disk = run_cache_store.get_cache()
    if disk is not None:
        disk.put(spec, slim)


def run_spec(
    spec: RunSpec,
    use_cache: bool = True,
    keep_raw: bool = False,
    profile: AppProfile | None = None,
    persist: bool = True,
    trace: bool | None = None,
    chrome: bool = False,
) -> RunResult:
    """Simulate (or recall) one :class:`RunSpec`.

    ``profile`` overrides registry lookup (custom workloads); such runs
    set ``persist=False`` since an unregistered profile's name is not a
    sound content address across processes.

    ``trace`` attaches the observability layer (stall ledger + metrics
    registry) and populates ``RunResult.obs``; the default (``None``)
    follows the ``REPRO_TRACE`` environment knob. ``chrome`` additionally
    collects a Chrome trace_event timeline (implies ``trace``); chrome
    payloads are kept out of the persistent cache.
    """
    if trace is None:
        trace = trace_enabled()
    if chrome:
        trace = True
    if use_cache:
        cached = _run_cache.get(spec)
        if cached is not None and _satisfies(cached, keep_raw, trace, chrome):
            return cached
        if persist and not keep_raw:
            hit = cached_result(spec, trace=trace, chrome=chrome)
            if hit is not None:
                return hit

    global _sim_invocations
    _sim_invocations += 1
    if spec.scenario is not None:
        result = _simulate_scenario(spec, trace=trace, chrome=chrome)
    else:
        if profile is None:
            profile = _resolve_app(spec.app)
        result = _simulate(profile, spec, trace=trace, chrome=chrome)
    slim = replace(result, raw=None)
    if use_cache:
        # The memo keeps raw state only for opt-in keep_raw runs; the
        # on-disk cache never stores it.
        _run_cache[spec] = result if keep_raw else slim
        if persist:
            disk = run_cache_store.get_cache()
            if disk is not None:
                to_disk = slim
                if slim.obs is not None and "chrome" in slim.obs:
                    to_disk = replace(slim, obs={
                        k: v for k, v in slim.obs.items() if k != "chrome"
                    })
                # A traced recompute upgrades any untraced entry in place.
                disk.put(spec, to_disk, overwrite=trace)
    return result if keep_raw else slim


#: Sentinel for run_app's ``sample`` default: follow REPRO_SAMPLE (via
#: RunSpec's default factory) rather than forcing a mode.
_SAMPLE_FROM_ENV = object()


def run_app(
    app: str | AppProfile,
    design: DesignPoint,
    config: GPUConfig | None = None,
    scale: TraceScale = TraceScale(),
    caba_params: CabaParams | None = None,
    use_cache: bool = True,
    keep_raw: bool = False,
    trace: bool | None = None,
    chrome: bool = False,
    sample: SampleConfig | None | object = _SAMPLE_FROM_ENV,
    capacity: CapacityConfig | None = None,
) -> RunResult:
    """Simulate one application under one design point.

    Args:
        app: Application name (see ``repro.workloads.APPLICATIONS``) or a
            profile object.
        design: Compression design point.
        config: Machine configuration; defaults to ``GPUConfig.small()``
            so casual calls stay fast. Use ``GPUConfig()`` for Table 1.
        scale: Workload scaling.
        caba_params: CABA framework knobs (CABA designs only).
        use_cache: Reuse memoized/persisted results for identical runs.
        keep_raw: Attach the full :class:`SimulationResult` to the
            returned result. Raw state is big (it holds the memory
            system), so it is opt-in and never cached on disk.
        trace: Attach the observability layer and populate
            ``RunResult.obs``; ``None`` (default) follows ``REPRO_TRACE``.
        chrome: Also collect a Chrome trace_event timeline (implies
            ``trace``).
        sample: Interval-sampling knobs: a
            :class:`~repro.gpu.sampling.SampleConfig` to sample, ``None``
            to force exact simulation, or unset to follow
            ``REPRO_SAMPLE``.
        capacity: Capacity-mode knobs
            (:class:`~repro.memory.hostlink.CapacityConfig`), or ``None``
            (default) for bandwidth mode.
    """
    profile = _resolve_app(app)
    spec_kwargs = {}
    if sample is not _SAMPLE_FROM_ENV:
        spec_kwargs["sample"] = sample
    spec = RunSpec(
        app=profile.name,
        design=design,
        config=config if config is not None else GPUConfig.small(),
        scale=scale,
        params=caba_params if caba_params is not None else CabaParams(),
        capacity=capacity,
        **spec_kwargs,
    )
    try:
        registered = get_app(profile.name) == profile
    except KeyError:
        registered = False
    return run_spec(spec, use_cache=use_cache, keep_raw=keep_raw,
                    profile=profile, persist=registered,
                    trace=trace, chrome=chrome)


def speedup(result: RunResult, baseline: RunResult) -> float:
    """IPC ratio vs. a baseline run of the same application."""
    if baseline.ipc == 0:
        return 0.0
    return result.ipc / baseline.ipc


def geomean(values) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
