"""Experiment harnesses: one function per paper table/figure."""

from repro.harness import figures
from repro.harness.figures import FigureResult
from repro.harness.report import print_figure, render_table
from repro.harness.runner import (
    RunResult,
    build_image,
    clear_caches,
    geomean,
    run_app,
    speedup,
)

__all__ = [
    "FigureResult",
    "RunResult",
    "build_image",
    "clear_caches",
    "figures",
    "geomean",
    "print_figure",
    "render_table",
    "run_app",
    "speedup",
]
