"""Experiment harnesses: one function per paper table/figure."""

from repro.harness import figures
from repro.harness.cache import RunCache, get_cache
from repro.harness.figures import FigureResult
from repro.harness.parallel import ExperimentEngine, configure, run_specs
from repro.harness.report import print_figure, render_table
from repro.harness.runner import (
    RunResult,
    RunSpec,
    build_image,
    clear_caches,
    geomean,
    run_app,
    speedup,
)

__all__ = [
    "ExperimentEngine",
    "FigureResult",
    "RunCache",
    "RunResult",
    "RunSpec",
    "build_image",
    "clear_caches",
    "configure",
    "figures",
    "geomean",
    "get_cache",
    "print_figure",
    "render_table",
    "run_app",
    "run_specs",
    "speedup",
]
