"""Section 7 extension studies (memoization, prefetching), capacity
mode, and ablations.

These exercise the CABA framework beyond the bandwidth-compression case
study:

* :func:`memoization_study` — a redundancy-parameterized compute-bound
  kernel where assist warps hash inputs, probe a shared-memory LUT and
  let parents skip redundant regions (Section 7.1).
* :func:`prefetch_study` — a latency-bound streaming kernel where
  assist warps run a per-warp stride prefetcher in idle memory-pipeline
  slots (Section 7.2).
* :func:`capacity_study` — compression for memory *capacity* (after
  Buddy Compression): stored footprints placed against a device budget,
  spilled lines charged host-link transfers.
* :func:`ablation_study` — design-choice sweeps for the compression
  mechanism: throttling, store-buffer capacity, the low-priority AWB
  partition, and decompression priority.

The scenario studies run through the same RunSpec engine as every
figure (parallel dispatch, persistent caching, sampling, tracing); the
kernel builders themselves live in :mod:`repro.harness.scenarios` and
are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Sequence

from repro import design as designs
from repro.core.params import CabaParams
from repro.gpu.config import GPUConfig
from repro.harness.figures import ALGORITHM_ORDER, FigureResult
from repro.harness.parallel import run_specs
from repro.harness.runner import RunSpec, geomean, scenario_spec
from repro.harness.scenarios import (  # noqa: F401  (re-exported API)
    ScenarioSpec,
    build_latency_bound_kernel,
    build_memo_kernel,
    make_signature_fn,
    run_kernel,
)
from repro.harness.scenarios import run_kernel as _run  # noqa: F401
from repro.memory.hostlink import CapacityConfig
from repro.workloads.tracegen import TraceScale


# ----------------------------------------------------------------------
# Memoization (Section 7.1)
# ----------------------------------------------------------------------
def memoization_study(
    config: GPUConfig | None = None,
    redundancies: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.95),
    region_len: int = 8,
) -> FigureResult:
    """Cycle-time speedup from memoization vs. input redundancy."""
    config = config if config is not None else GPUConfig.small()
    specs = [
        scenario_spec("memoization", config, assist=False,
                      region_len=region_len)
    ]
    specs += [
        scenario_spec("memoization", config, redundancy=redundancy,
                      region_len=region_len)
        for redundancy in redundancies
    ]
    runs = run_specs(specs, label="memo")
    base, assisted = runs[0], runs[1:]
    result = FigureResult(
        figure="memo",
        title="Memoization with assist warps (Section 7.1)",
        columns=["redundancy", "speedup", "lut_hit_rate", "skipped_instrs"],
    )
    for redundancy, run in zip(redundancies, assisted):
        result.rows.append({
            "redundancy": redundancy,
            "speedup": base.cycles / run.cycles if run.cycles else 0.0,
            "lut_hit_rate": run.scenario["lut_hit_rate"],
            "skipped_instrs": run.scenario["skipped_instrs"],
        })
    result.summary["max_speedup"] = max(r["speedup"] for r in result.rows)
    result.notes = (
        "Paper (qualitative): memoization trades computation for storage; "
        "benefit grows with input redundancy in compute-bound kernels."
    )
    return result


# ----------------------------------------------------------------------
# Prefetching (Section 7.2)
# ----------------------------------------------------------------------
def prefetch_study(
    config: GPUConfig | None = None,
    distances: Sequence[int] = (1, 2, 4),
) -> FigureResult:
    """Speedup from assist-warp stride prefetching on a latency-bound
    stream, sweeping the prefetch distance."""
    config = config if config is not None else GPUConfig.small()
    specs = [scenario_spec("prefetch", config, assist=False)]
    specs += [
        scenario_spec("prefetch", config, distance=distance)
        for distance in distances
    ]
    runs = run_specs(specs, label="prefetch")
    base, assisted = runs[0], runs[1:]
    base_hits = base.scenario["l1_load_hits"]
    result = FigureResult(
        figure="prefetch",
        title="Stride prefetching with assist warps (Section 7.2)",
        columns=["distance", "speedup", "prefetches", "l1_hit_gain"],
    )
    for distance, run in zip(distances, assisted):
        result.rows.append({
            "distance": distance,
            "speedup": base.cycles / run.cycles if run.cycles else 0.0,
            "prefetches": run.scenario["prefetches_issued"],
            "l1_hit_gain": run.scenario["l1_load_hits"] - base_hits,
        })
    result.summary["max_speedup"] = max(r["speedup"] for r in result.rows)
    result.notes = (
        "Paper (qualitative): assist warps enable fine-grained stride "
        "prefetching with throttling in idle memory-pipeline slots."
    )
    return result


# ----------------------------------------------------------------------
# Capacity-mode compression (Buddy Compression regime)
# ----------------------------------------------------------------------
def capacity_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "MM", "ATTN", "ST3D"),
    algorithms: Sequence[str] | None = None,
    budget_fraction: float = 0.5,
    scale: TraceScale | None = None,
) -> FigureResult:
    """Effective capacity and spill traffic per algorithm under a
    device-memory budget.

    The budget is ``budget_fraction`` of each app's *uncompressed*
    footprint, so every app is equally capacity-pressured: without
    compression roughly half the lines spill to the host link, and each
    algorithm is judged by how much of that spill its compression
    avoids (plus the slowdown the residual host traffic costs).
    """
    from repro.workloads.tracegen import footprint_extents
    from repro.workloads.apps import get_app

    config = config if config is not None else GPUConfig.small()
    algorithms = (
        tuple(algorithms) if algorithms is not None else ALGORITHM_ORDER
    )
    scale = scale if scale is not None else TraceScale()

    budgets = {}
    for app in apps:
        extents = footprint_extents(get_app(app), config, scale)
        lines = sum(length for _, length in extents)
        budgets[app] = max(
            config.line_size,
            int(lines * config.line_size * budget_fraction),
        )

    def cap(app):
        return CapacityConfig(device_bytes=budgets[app])

    specs = []
    for app in apps:
        specs.append(RunSpec(app, designs.base(), config, scale=scale,
                             capacity=cap(app)))
        for algorithm in algorithms:
            specs.append(RunSpec(app, designs.caba(algorithm), config,
                                 scale=scale, capacity=cap(app)))
    runs = iter(run_specs(specs, label="capacity"))

    result = FigureResult(
        figure="capacity",
        title=(
            "Capacity-mode compression: effective capacity and spill "
            "traffic (device budget = "
            f"{budget_fraction:.0%} of footprint)"
        ),
        columns=["app", "algorithm", "effective_capacity", "spill_fraction",
                 "spill_bursts", "host_bus_util", "speedup_vs_base"],
    )
    per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
    for app in apps:
        base = next(runs)
        base_row = {
            "app": app,
            "algorithm": "none",
            "effective_capacity":
                base.capacity["effective_capacity_ratio"],
            "spill_fraction": base.capacity["spill_fraction"],
            "spill_bursts": base.capacity["host_bursts"],
            "host_bus_util": base.capacity["host_bus_utilization"],
            "speedup_vs_base": 1.0,
        }
        result.rows.append(base_row)
        for algorithm in algorithms:
            run = next(runs)
            speedup = run.ipc / base.ipc if base.ipc else 0.0
            per_algo[algorithm].append(speedup)
            result.rows.append({
                "app": app,
                "algorithm": algorithm,
                "effective_capacity":
                    run.capacity["effective_capacity_ratio"],
                "spill_fraction": run.capacity["spill_fraction"],
                "spill_bursts": run.capacity["host_bursts"],
                "host_bus_util": run.capacity["host_bus_utilization"],
                "speedup_vs_base": speedup,
            })
    for algorithm in algorithms:
        result.summary[f"geomean_speedup_{algorithm}"] = geomean(
            per_algo[algorithm]
        )
    result.notes = (
        "Buddy Compression regime: compression extends effective device "
        "capacity; lines past the budget pay host-link transfers."
    )
    return result


# ----------------------------------------------------------------------
# MD-cache size sweep (Section 4.3.2 sizing rationale)
# ----------------------------------------------------------------------
def md_cache_sweep(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "mst", "SS"),
    sizes_kb: Sequence[int] = (1, 2, 4, 8, 16),
) -> FigureResult:
    """Hit rate and speedup vs. MD-cache capacity.

    The paper picks 8 KB as "sufficient for an 85% average hit rate";
    this sweep shows the knee of that curve."""
    from dataclasses import replace as _replace

    from repro.harness.runner import geomean

    config = config if config is not None else GPUConfig.small()
    result = FigureResult(
        figure="mdsweep",
        title="MD-cache capacity sweep (Section 4.3.2)",
        columns=["size_kb", "avg_hit_rate", "geomean_speedup"],
    )
    specs = []
    for size_kb in sizes_kb:
        cfg = _replace(config, md_cache_size=size_kb * 1024)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), cfg))
            specs.append(RunSpec(app, designs.caba(), cfg))
    runs = iter(run_specs(specs, label="mdsweep"))
    for size_kb in sizes_kb:
        rates, speedups = [], []
        for app in apps:
            base = next(runs)
            caba = next(runs)
            if caba.md_cache_hit_rate is not None:
                rates.append(caba.md_cache_hit_rate)
            speedups.append(caba.ipc / base.ipc if base.ipc else 0.0)
        result.rows.append({
            "size_kb": size_kb,
            "avg_hit_rate": sum(rates) / len(rates) if rates else 0.0,
            "geomean_speedup": geomean(speedups),
        })
    result.notes = (
        "Paper: an 8 KB 4-way MD cache suffices (85% average hit rate)."
    )
    return result


# ----------------------------------------------------------------------
# Warp-scheduler study (GTO vs. LRR, Table 1 uses GTO)
# ----------------------------------------------------------------------
def scheduler_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "MM", "RAY", "bfs"),
) -> FigureResult:
    """Compare the GTO baseline scheduler against loose round-robin,
    with and without CABA compression."""
    from dataclasses import replace as _replace

    from repro.harness.runner import geomean

    config = config if config is not None else GPUConfig.small()
    result = FigureResult(
        figure="sched",
        title="Warp scheduler sensitivity (GTO vs. LRR)",
        columns=["scheduler", "geomean_base_ipc", "geomean_caba_speedup"],
    )
    policies = ("gto", "lrr")
    specs = []
    for policy in policies:
        cfg = _replace(config, scheduler=policy)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), cfg))
            specs.append(RunSpec(app, designs.caba(), cfg))
    runs = iter(run_specs(specs, label="scheduler"))
    for policy in policies:
        ipcs, speedups = [], []
        for app in apps:
            base = next(runs)
            caba = next(runs)
            ipcs.append(base.ipc)
            speedups.append(caba.ipc / base.ipc if base.ipc else 0.0)
        result.rows.append({
            "scheduler": policy,
            "geomean_base_ipc": geomean(ipcs),
            "geomean_caba_speedup": geomean(speedups),
        })
    result.notes = (
        "CABA's benefit is scheduler-robust; Table 1's baseline uses GTO."
    )
    return result


# ----------------------------------------------------------------------
# Ablations of the compression mechanism
# ----------------------------------------------------------------------
def ablation_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "MM", "sp"),
    only: Sequence[str] | None = None,
) -> FigureResult:
    """Design-choice ablations for CABA-BDI (geomean over ``apps``).

    ``only`` restricts the run to a subset of variant labels."""
    config = config if config is not None else GPUConfig.small()
    variants: list[tuple[str, CabaParams]] = [
        ("default", CabaParams()),
        ("l2_uncompressed", CabaParams()),  # Section 6.5 selective option
        ("no_throttling", CabaParams(throttling_enabled=False)),
        ("store_buffer_4", CabaParams(store_buffer_lines=4)),
        ("store_buffer_64", CabaParams(store_buffer_lines=64)),
        ("low_slots_1", CabaParams(low_priority_slots=1)),
        ("low_slots_8", CabaParams(low_priority_slots=8)),
        ("deploy_width_1", CabaParams(deploy_width=1)),
        ("deploy_width_4", CabaParams(deploy_width=4)),
        ("decomp_low_priority",
         CabaParams(decompression_high_priority=False)),
    ]
    result = FigureResult(
        figure="ablations",
        title="CABA design-choice ablations (CABA-BDI)",
        columns=["variant", "geomean_speedup", "compressed_store_fraction"],
    )
    from repro.harness.runner import geomean

    if only is not None:
        variants = [(l, p) for l, p in variants if l in set(only)]

    def variant_point(label):
        return (
            designs.caba_l2_uncompressed()
            if label == "l2_uncompressed"
            else designs.caba()
        )

    specs = []
    for label, params in variants:
        point = variant_point(label)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), config))
            specs.append(RunSpec(app, point, config, params=params))
    runs = iter(run_specs(specs, label="ablations"))
    for label, params in variants:
        speedups = []
        compressed = uncompressed = 0
        for app in apps:
            base = next(runs)
            run = next(runs)
            speedups.append(run.ipc / base.ipc if base.ipc else 0.0)
            compressed += run.lines_compressed
            uncompressed += max(0, run.l1_stores - run.lines_compressed)
        total_stores = compressed + uncompressed
        frac = compressed / total_stores if total_stores else 0.0
        result.rows.append({
            "variant": label,
            "geomean_speedup": geomean(speedups),
            "compressed_store_fraction": frac,
        })
    result.notes = (
        "Blocking (high-priority) decompression, dynamic throttling and a "
        "modest store buffer are the paper's stated design choices."
    )
    return result
