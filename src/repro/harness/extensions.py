"""Section 7 extension studies (memoization, prefetching) and ablations.

These exercise the CABA framework beyond the compression case study:

* :func:`memoization_study` — a redundancy-parameterized compute-bound
  kernel where assist warps hash inputs, probe a shared-memory LUT and
  let parents skip redundant regions (Section 7.1).
* :func:`prefetch_study` — a latency-bound streaming kernel where
  assist warps run a per-warp stride prefetcher in idle memory-pipeline
  slots (Section 7.2).
* :func:`ablation_study` — design-choice sweeps for the compression
  mechanism: throttling, store-buffer capacity, the low-priority AWB
  partition, and decompression priority.
"""

from __future__ import annotations

from typing import Sequence

from repro import design as designs
from repro.core.memoization import MemoizationController, MemoParams
from repro.core.params import CabaParams
from repro.core.prefetch import PrefetchController, PrefetchParams
from repro.design import DesignPoint
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.kernel import Kernel
from repro.gpu.simulator import SimulationResult, Simulator
from repro.harness.figures import FigureResult
from repro.harness.parallel import run_specs
from repro.harness.runner import RunSpec
from repro.memory.image import MemoryImage

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _plain_image(line_size: int) -> MemoryImage:
    return MemoryImage(lambda line: bytes(line_size), None, line_size)


def _run(
    config: GPUConfig,
    kernel: Kernel,
    controller_factory=None,
    design: DesignPoint | None = None,
) -> SimulationResult:
    design = design if design is not None else designs.base()
    simulator = Simulator(
        config,
        kernel,
        design,
        _plain_image(config.line_size),
        caba_factory=controller_factory,
    )
    return simulator.run()


# ----------------------------------------------------------------------
# Memoization (Section 7.1)
# ----------------------------------------------------------------------
def build_memo_kernel(
    config: GPUConfig,
    region_len: int = 8,
    iterations: int = 40,
    warps_per_block: int = 6,
) -> Kernel:
    """A compute-bound kernel with one memoizable region per iteration.

    The region holds the heavy ALU/SFU work; a MEMO marker in front of
    it lets the memoization controller skip it on LUT hits.
    """
    region: list[Instr] = []
    for i in range(region_len):
        if i % 4 == 3:
            region.append(Instr(OpKind.SFU, latency=20,
                                dst_mask=reg_mask(2), src_mask=reg_mask(1),
                                tag="region_sfu"))
        elif i % 4 == 2:
            region.append(Instr(OpKind.ALU, latency=12,
                                dst_mask=reg_mask(2), src_mask=reg_mask(1),
                                tag="region_heavy"))
        else:
            region.append(Instr(OpKind.ALU, latency=4,
                                dst_mask=reg_mask(1), src_mask=reg_mask(1),
                                tag="region_alu"))
    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
              space=MemSpace.SHARED, tag="load_inputs"),
        Instr(OpKind.MEMO, latency=1, src_mask=reg_mask(3),
              meta=region_len, tag="memo_marker"),
        *region,
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
              src_mask=reg_mask(2), tag="consume"),
    )
    program = Program(body=body, iterations=iterations, name="memo_kernel")
    n_blocks = 2 * config.n_sms * min(
        config.max_blocks_per_sm,
        config.max_threads_per_sm // (warps_per_block * config.warp_size),
    )
    return Kernel(
        name="memo_kernel",
        program=program,
        n_blocks=max(1, n_blocks),
        warps_per_block=warps_per_block,
        regs_per_thread=18,
    )


def make_signature_fn(redundancy: float, seed: int = 97):
    """Input-signature model: a ``redundancy`` fraction of iterations
    sees inputs shared by every warp (so one computation serves all);
    the rest are unique per warp."""
    threshold = int(redundancy * 1000)

    def signature(warp: int, iteration: int) -> int:
        if _mix(iteration * 2654435761 + seed) % 1000 < threshold:
            return _mix(iteration + seed)
        return _mix((warp << 24) ^ iteration ^ seed)

    return signature


def memoization_study(
    config: GPUConfig | None = None,
    redundancies: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.95),
    region_len: int = 8,
) -> FigureResult:
    """Cycle-time speedup from memoization vs. input redundancy."""
    config = config if config is not None else GPUConfig.small()
    kernel = build_memo_kernel(config, region_len=region_len)
    base = _run(config, kernel)
    result = FigureResult(
        figure="memo",
        title="Memoization with assist warps (Section 7.1)",
        columns=["redundancy", "speedup", "lut_hit_rate", "skipped_instrs"],
    )
    for redundancy in redundancies:
        controllers = []

        def factory(sm, redundancy=redundancy):
            controller = MemoizationController(
                sm, make_signature_fn(redundancy), MemoParams()
            )
            controllers.append(controller)
            return controller

        run = _run(config, kernel, controller_factory=factory)
        lookups = sum(c.stats.lookups for c in controllers)
        hits = sum(c.stats.hits for c in controllers)
        skipped = sum(
            c.stats.regions_skipped_instructions for c in controllers
        )
        result.rows.append({
            "redundancy": redundancy,
            "speedup": base.cycles / run.cycles if run.cycles else 0.0,
            "lut_hit_rate": hits / lookups if lookups else 0.0,
            "skipped_instrs": skipped,
        })
    result.summary["max_speedup"] = max(r["speedup"] for r in result.rows)
    result.notes = (
        "Paper (qualitative): memoization trades computation for storage; "
        "benefit grows with input redundancy in compute-bound kernels."
    )
    return result


# ----------------------------------------------------------------------
# Prefetching (Section 7.2)
# ----------------------------------------------------------------------
def build_latency_bound_kernel(
    config: GPUConfig,
    iterations: int = 60,
    warps_per_block: int = 2,
    n_blocks: int | None = None,
) -> Kernel:
    """A streaming kernel with too few warps to hide memory latency —
    the regime where prefetching pays."""
    if n_blocks is None:
        n_blocks = config.n_sms
    total_warps = n_blocks * warps_per_block
    base_line = 4_194_301

    def addr(w: int, i: int, base=base_line, tw=total_warps):
        return (base + i * tw + w,)

    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
              space=MemSpace.GLOBAL, addr_fn=addr, tag="stream_load"),
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
              src_mask=reg_mask(3), tag="consume"),
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(2),
              src_mask=reg_mask(1), tag="alu2"),
    )
    program = Program(body=body, iterations=iterations, name="latency_stream")
    return Kernel(
        name="latency_stream",
        program=program,
        n_blocks=n_blocks,
        warps_per_block=warps_per_block,
        regs_per_thread=16,
    )


def prefetch_study(
    config: GPUConfig | None = None,
    distances: Sequence[int] = (1, 2, 4),
) -> FigureResult:
    """Speedup from assist-warp stride prefetching on a latency-bound
    stream, sweeping the prefetch distance."""
    config = config if config is not None else GPUConfig.small()
    kernel = build_latency_bound_kernel(config)
    base = _run(config, kernel)
    base_hits = base.memory.stats.l1_load_hits
    result = FigureResult(
        figure="prefetch",
        title="Stride prefetching with assist warps (Section 7.2)",
        columns=["distance", "speedup", "prefetches", "l1_hit_gain"],
    )
    for distance in distances:
        controllers = []

        def factory(sm, distance=distance):
            controller = PrefetchController(
                sm, PrefetchParams(distance=distance)
            )
            controllers.append(controller)
            return controller

        run = _run(config, kernel, controller_factory=factory)
        issued = sum(c.stats.prefetches_issued for c in controllers)
        result.rows.append({
            "distance": distance,
            "speedup": base.cycles / run.cycles if run.cycles else 0.0,
            "prefetches": issued,
            "l1_hit_gain": run.memory.stats.l1_load_hits - base_hits,
        })
    result.summary["max_speedup"] = max(r["speedup"] for r in result.rows)
    result.notes = (
        "Paper (qualitative): assist warps enable fine-grained stride "
        "prefetching with throttling in idle memory-pipeline slots."
    )
    return result


# ----------------------------------------------------------------------
# MD-cache size sweep (Section 4.3.2 sizing rationale)
# ----------------------------------------------------------------------
def md_cache_sweep(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "mst", "SS"),
    sizes_kb: Sequence[int] = (1, 2, 4, 8, 16),
) -> FigureResult:
    """Hit rate and speedup vs. MD-cache capacity.

    The paper picks 8 KB as "sufficient for an 85% average hit rate";
    this sweep shows the knee of that curve."""
    from dataclasses import replace as _replace

    from repro.harness.runner import geomean

    config = config if config is not None else GPUConfig.small()
    result = FigureResult(
        figure="mdsweep",
        title="MD-cache capacity sweep (Section 4.3.2)",
        columns=["size_kb", "avg_hit_rate", "geomean_speedup"],
    )
    specs = []
    for size_kb in sizes_kb:
        cfg = _replace(config, md_cache_size=size_kb * 1024)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), cfg))
            specs.append(RunSpec(app, designs.caba(), cfg))
    runs = iter(run_specs(specs, label="mdsweep"))
    for size_kb in sizes_kb:
        rates, speedups = [], []
        for app in apps:
            base = next(runs)
            caba = next(runs)
            if caba.md_cache_hit_rate is not None:
                rates.append(caba.md_cache_hit_rate)
            speedups.append(caba.ipc / base.ipc if base.ipc else 0.0)
        result.rows.append({
            "size_kb": size_kb,
            "avg_hit_rate": sum(rates) / len(rates) if rates else 0.0,
            "geomean_speedup": geomean(speedups),
        })
    result.notes = (
        "Paper: an 8 KB 4-way MD cache suffices (85% average hit rate)."
    )
    return result


# ----------------------------------------------------------------------
# Warp-scheduler study (GTO vs. LRR, Table 1 uses GTO)
# ----------------------------------------------------------------------
def scheduler_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "MM", "RAY", "bfs"),
) -> FigureResult:
    """Compare the GTO baseline scheduler against loose round-robin,
    with and without CABA compression."""
    from dataclasses import replace as _replace

    from repro.harness.runner import geomean

    config = config if config is not None else GPUConfig.small()
    result = FigureResult(
        figure="sched",
        title="Warp scheduler sensitivity (GTO vs. LRR)",
        columns=["scheduler", "geomean_base_ipc", "geomean_caba_speedup"],
    )
    policies = ("gto", "lrr")
    specs = []
    for policy in policies:
        cfg = _replace(config, scheduler=policy)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), cfg))
            specs.append(RunSpec(app, designs.caba(), cfg))
    runs = iter(run_specs(specs, label="scheduler"))
    for policy in policies:
        ipcs, speedups = [], []
        for app in apps:
            base = next(runs)
            caba = next(runs)
            ipcs.append(base.ipc)
            speedups.append(caba.ipc / base.ipc if base.ipc else 0.0)
        result.rows.append({
            "scheduler": policy,
            "geomean_base_ipc": geomean(ipcs),
            "geomean_caba_speedup": geomean(speedups),
        })
    result.notes = (
        "CABA's benefit is scheduler-robust; Table 1's baseline uses GTO."
    )
    return result


# ----------------------------------------------------------------------
# Ablations of the compression mechanism
# ----------------------------------------------------------------------
def ablation_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = ("PVC", "MM", "sp"),
    only: Sequence[str] | None = None,
) -> FigureResult:
    """Design-choice ablations for CABA-BDI (geomean over ``apps``).

    ``only`` restricts the run to a subset of variant labels."""
    config = config if config is not None else GPUConfig.small()
    variants: list[tuple[str, CabaParams]] = [
        ("default", CabaParams()),
        ("l2_uncompressed", CabaParams()),  # Section 6.5 selective option
        ("no_throttling", CabaParams(throttling_enabled=False)),
        ("store_buffer_4", CabaParams(store_buffer_lines=4)),
        ("store_buffer_64", CabaParams(store_buffer_lines=64)),
        ("low_slots_1", CabaParams(low_priority_slots=1)),
        ("low_slots_8", CabaParams(low_priority_slots=8)),
        ("deploy_width_1", CabaParams(deploy_width=1)),
        ("deploy_width_4", CabaParams(deploy_width=4)),
        ("decomp_low_priority",
         CabaParams(decompression_high_priority=False)),
    ]
    result = FigureResult(
        figure="ablations",
        title="CABA design-choice ablations (CABA-BDI)",
        columns=["variant", "geomean_speedup", "compressed_store_fraction"],
    )
    from repro.harness.runner import geomean

    if only is not None:
        variants = [(l, p) for l, p in variants if l in set(only)]

    def variant_point(label):
        return (
            designs.caba_l2_uncompressed()
            if label == "l2_uncompressed"
            else designs.caba()
        )

    specs = []
    for label, params in variants:
        point = variant_point(label)
        for app in apps:
            specs.append(RunSpec(app, designs.base(), config))
            specs.append(RunSpec(app, point, config, params=params))
    runs = iter(run_specs(specs, label="ablations"))
    for label, params in variants:
        speedups = []
        compressed = uncompressed = 0
        for app in apps:
            base = next(runs)
            run = next(runs)
            speedups.append(run.ipc / base.ipc if base.ipc else 0.0)
            compressed += run.lines_compressed
            uncompressed += max(0, run.l1_stores - run.lines_compressed)
        total_stores = compressed + uncompressed
        frac = compressed / total_stores if total_stores else 0.0
        result.rows.append({
            "variant": label,
            "geomean_speedup": geomean(speedups),
            "compressed_store_fraction": frac,
        })
    result.notes = (
        "Blocking (high-priority) decompression, dynamic throttling and a "
        "modest store buffer are the paper's stated design choices."
    )
    return result
