"""First-class prefetch/memoization scenarios (Sections 7.1, 7.2).

The paper positions CABA as a *framework*; compression is the flagship
case study but assist warps also run prefetchers and memoization
helpers. This module makes those two uses first-class runnable
scenarios instead of one-off extension scripts: a frozen
:class:`ScenarioSpec` rides on a RunSpec (so scenario runs are
content-addressed, cacheable, pool-portable, traceable and samplable
exactly like compression runs), and :func:`build_scenario` produces the
synthetic kernel plus the assist-warp controller factory the simulator
needs.

The kernels are synthetic by design, mirroring the paper's evaluation
regimes: memoization uses a compute-bound kernel with a redundancy-
parameterized memoizable region; prefetching uses a streaming kernel
with too few warps to hide memory latency. Setting ``assist=False``
runs the identical kernel without a controller — the baseline every
scenario figure normalizes against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memoization import MemoizationController, MemoParams
from repro.core.prefetch import PrefetchController, PrefetchParams
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask
from repro.gpu.kernel import Kernel

#: Valid ScenarioSpec kinds.
SCENARIO_KINDS = ("prefetch", "memoization")

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class ScenarioSpec:
    """Picklable identity of one assist-warp scenario run.

    Frozen with a deterministic ``repr`` so it composes into RunSpec's
    content address the same way DesignPoint/CabaParams do.

    kind: ``prefetch`` or ``memoization``.
    assist: run with the assist-warp controller; ``False`` runs the
        same kernel bare (the scenario's baseline).
    distance/degree: stride-prefetcher knobs (prefetch only).
    redundancy: fraction of iterations whose inputs are shared by every
        warp (memoization only).
    region_len: instructions in the memoizable region (memoization only).
    iterations: kernel loop-trip override (None = the kind's default).
    """

    kind: str
    assist: bool = True
    distance: int = 2
    degree: int = 1
    redundancy: float = 0.5
    region_len: int = 8
    iterations: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r} "
                f"(known: {', '.join(SCENARIO_KINDS)})"
            )
        if not 0.0 <= self.redundancy <= 1.0:
            raise ValueError("redundancy must be in [0, 1]")
        if self.distance < 1 or self.degree < 1 or self.region_len < 1:
            raise ValueError("distance/degree/region_len must be >= 1")


# ----------------------------------------------------------------------
# Scenario kernels
# ----------------------------------------------------------------------
def build_memo_kernel(
    config: GPUConfig,
    region_len: int = 8,
    iterations: int = 40,
    warps_per_block: int = 6,
) -> Kernel:
    """A compute-bound kernel with one memoizable region per iteration.

    The region holds the heavy ALU/SFU work; a MEMO marker in front of
    it lets the memoization controller skip it on LUT hits.
    """
    region: list[Instr] = []
    for i in range(region_len):
        if i % 4 == 3:
            region.append(Instr(OpKind.SFU, latency=20,
                                dst_mask=reg_mask(2), src_mask=reg_mask(1),
                                tag="region_sfu"))
        elif i % 4 == 2:
            region.append(Instr(OpKind.ALU, latency=12,
                                dst_mask=reg_mask(2), src_mask=reg_mask(1),
                                tag="region_heavy"))
        else:
            region.append(Instr(OpKind.ALU, latency=4,
                                dst_mask=reg_mask(1), src_mask=reg_mask(1),
                                tag="region_alu"))
    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
              space=MemSpace.SHARED, tag="load_inputs"),
        Instr(OpKind.MEMO, latency=1, src_mask=reg_mask(3),
              meta=region_len, tag="memo_marker"),
        *region,
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
              src_mask=reg_mask(2), tag="consume"),
    )
    program = Program(body=body, iterations=iterations, name="memo_kernel")
    n_blocks = 2 * config.n_sms * min(
        config.max_blocks_per_sm,
        config.max_threads_per_sm // (warps_per_block * config.warp_size),
    )
    return Kernel(
        name="memo_kernel",
        program=program,
        n_blocks=max(1, n_blocks),
        warps_per_block=warps_per_block,
        regs_per_thread=18,
    )


def build_latency_bound_kernel(
    config: GPUConfig,
    iterations: int = 60,
    warps_per_block: int = 2,
    n_blocks: int | None = None,
) -> Kernel:
    """A streaming kernel with too few warps to hide memory latency —
    the regime where prefetching pays."""
    if n_blocks is None:
        n_blocks = config.n_sms
    total_warps = n_blocks * warps_per_block
    base_line = 4_194_301

    def addr(w: int, i: int, base=base_line, tw=total_warps):
        return (base + i * tw + w,)

    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(3), src_mask=reg_mask(0),
              space=MemSpace.GLOBAL, addr_fn=addr, tag="stream_load"),
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(1),
              src_mask=reg_mask(3), tag="consume"),
        Instr(OpKind.ALU, latency=4, dst_mask=reg_mask(2),
              src_mask=reg_mask(1), tag="alu2"),
    )
    program = Program(body=body, iterations=iterations, name="latency_stream")
    return Kernel(
        name="latency_stream",
        program=program,
        n_blocks=n_blocks,
        warps_per_block=warps_per_block,
        regs_per_thread=16,
    )


def make_signature_fn(redundancy: float, seed: int = 97):
    """Input-signature model: a ``redundancy`` fraction of iterations
    sees inputs shared by every warp (so one computation serves all);
    the rest are unique per warp."""
    threshold = int(redundancy * 1000)

    def signature(warp: int, iteration: int) -> int:
        if _mix(iteration * 2654435761 + seed) % 1000 < threshold:
            return _mix(iteration + seed)
        return _mix((warp << 24) ^ iteration ^ seed)

    return signature


# ----------------------------------------------------------------------
# Scenario -> simulator inputs
# ----------------------------------------------------------------------
def build_scenario(
    scenario: ScenarioSpec, config: GPUConfig
) -> tuple[Kernel, object | None, list]:
    """Materialize one scenario: (kernel, controller factory, controllers).

    ``controllers`` is filled as the simulator instantiates one
    controller per SM through the factory; read it *after* the run to
    aggregate scenario statistics. With ``assist=False`` the factory is
    None and the list stays empty.
    """
    controllers: list = []
    if scenario.kind == "memoization":
        kernel = build_memo_kernel(
            config,
            region_len=scenario.region_len,
            iterations=scenario.iterations or 40,
        )
        if not scenario.assist:
            return kernel, None, controllers
        signature = make_signature_fn(scenario.redundancy)

        def factory(sm):
            controller = MemoizationController(sm, signature, MemoParams())
            controllers.append(controller)
            return controller

        return kernel, factory, controllers

    kernel = build_latency_bound_kernel(
        config, iterations=scenario.iterations or 60
    )
    if not scenario.assist:
        return kernel, None, controllers

    def factory(sm):
        controller = PrefetchController(
            sm,
            PrefetchParams(distance=scenario.distance,
                           degree=scenario.degree),
        )
        controllers.append(controller)
        return controller

    return kernel, factory, controllers


def run_kernel(
    config: GPUConfig,
    kernel: Kernel,
    controller_factory=None,
    design=None,
):
    """Raw single-kernel run, outside the RunSpec engine.

    For unit tests and examples that need the full
    :class:`~repro.gpu.simulator.SimulationResult` of a hand-built
    kernel; evaluated scenarios go through RunSpec instead.
    """
    from repro import design as designs
    from repro.gpu.simulator import Simulator
    from repro.memory.image import MemoryImage

    image = MemoryImage(
        lambda line, _size=config.line_size: bytes(_size),
        None,
        line_size=config.line_size,
        burst_bytes=config.burst_bytes,
    )
    simulator = Simulator(
        config,
        kernel,
        design if design is not None else designs.base(),
        image,
        caba_factory=controller_factory,
    )
    return simulator.run()


def collect_scenario_stats(
    scenario: ScenarioSpec, controllers: list
) -> dict:
    """Aggregate per-SM controller stats into the RunResult payload."""
    out: dict = {"kind": scenario.kind, "assist": scenario.assist}
    if not scenario.assist:
        return out
    if scenario.kind == "memoization":
        lookups = sum(c.stats.lookups for c in controllers)
        hits = sum(c.stats.hits for c in controllers)
        out.update(
            lookups=lookups,
            hits=hits,
            lut_hit_rate=hits / lookups if lookups else 0.0,
            skipped_instrs=sum(
                c.stats.regions_skipped_instructions for c in controllers
            ),
        )
    else:
        out.update(
            trained_streams=sum(
                c.stats.trained_streams for c in controllers
            ),
            prefetches_issued=sum(
                c.stats.prefetches_issued for c in controllers
            ),
            dropped_mshr=sum(
                c.stats.prefetches_dropped_mshr for c in controllers
            ),
            dropped_throttle=sum(
                c.stats.prefetches_dropped_throttle for c in controllers
            ),
        )
    return out
