"""Parallel experiment engine: fan a run matrix out over processes.

Every ``(app, design, config)`` point of the paper's experiment matrix
is independent and fully deterministic, so the figure harnesses simply
enumerate their :class:`~repro.harness.runner.RunSpec` lists up front
and submit them here. The engine

1. deduplicates the specs (the Figure 7/8/9 studies share most runs),
2. resolves what it can from the in-process memo and the persistent
   on-disk cache (:mod:`repro.harness.cache`),
3. ships the remaining specs to a ``ProcessPoolExecutor``, and
4. records each worker result back into both cache layers.

``jobs=1`` (the default) bypasses the pool entirely and simulates
inline, preserving the exact serial behavior. Worker processes also
consult/populate the shared persistent cache themselves, so a crashed
or interrupted matrix loses no completed work.

Knobs: ``--jobs N`` on the driver scripts, or ``REPRO_JOBS`` in the
environment (picked up when no explicit job count is configured).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.harness import runner
from repro.harness.runner import RunResult, RunSpec


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 1 (serial) when unset/invalid."""
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


def _worker_run(spec: RunSpec) -> RunResult:
    """Top-level (picklable) pool entry point: one spec, raw-free result."""
    return runner.run_spec(spec)


class ExperimentEngine:
    """Shared executor for experiment matrices.

    Args:
        jobs: Worker processes. ``None`` reads ``REPRO_JOBS``; ``1``
            keeps everything in-process (serial fallback).
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunResult:
        return self.run_many([spec])[0]

    def run_many(self, specs: Iterable[RunSpec]) -> list[RunResult]:
        """Execute ``specs``; the result list is aligned with the input
        order (duplicates resolve to the same result object)."""
        ordered = list(specs)
        if self.jobs <= 1:
            return [runner.run_spec(spec) for spec in ordered]

        resolved: dict[RunSpec, RunResult] = {}
        pending: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in ordered:
            if spec in seen:
                continue
            seen.add(spec)
            hit = runner.cached_result(spec)
            if hit is not None:
                resolved[spec] = hit
            else:
                pending.append(spec)

        if pending:
            pool = self._ensure_pool()
            for spec, result in zip(pending, pool.map(_worker_run, pending)):
                runner.record_result(spec, result)
                resolved[spec] = result
        return [resolved[spec] for spec in ordered]


# ----------------------------------------------------------------------
# Shared default engine (what the figure harnesses submit through)
# ----------------------------------------------------------------------
_engine: ExperimentEngine | None = None


def get_engine() -> ExperimentEngine:
    global _engine
    if _engine is None:
        _engine = ExperimentEngine()
    return _engine


def configure(jobs: int | None) -> ExperimentEngine:
    """Install a fresh default engine with ``jobs`` workers."""
    global _engine
    if _engine is not None:
        _engine.close()
    _engine = ExperimentEngine(jobs=jobs)
    return _engine


def shutdown() -> None:
    """Tear down the default engine's pool (idempotent)."""
    global _engine
    if _engine is not None:
        _engine.close()
        _engine = None


def run_specs(specs: Sequence[RunSpec]) -> list[RunResult]:
    """Run ``specs`` through the shared default engine."""
    return get_engine().run_many(specs)
