"""Parallel experiment engine: fan a run matrix out over processes.

Every ``(app, design, config)`` point of the paper's experiment matrix
is independent and fully deterministic, so the figure harnesses simply
enumerate their :class:`~repro.harness.runner.RunSpec` lists up front
and submit them here. The engine

1. deduplicates the specs (the Figure 7/8/9 studies share most runs),
2. resolves what it can from the in-process memo and the persistent
   on-disk cache (:mod:`repro.harness.cache`),
3. ships the remaining specs to a ``ProcessPoolExecutor`` one future
   per spec, and
4. checkpoints each worker result into both cache layers as it lands.

``jobs=1`` (the default) bypasses the pool entirely and simulates
inline, preserving the exact serial behavior.

The execution core is fault tolerant: a worker exception is captured as
a structured :class:`RunFailure` (spec, attempt, exception, traceback,
worker pid) instead of aborting the batch, transient failures retry
with exponential backoff, a broken pool (killed worker) is respawned
with only the in-flight specs resubmitted, and an optional per-spec
wall-clock timeout cancels hung workers. ``run_many(strict=False)``
returns the partial results plus the failure report; the default
``strict=True`` raises :class:`ExperimentFailure` after the rest of the
batch has completed (completed results stay checkpointed, so a rerun
only redoes the failures).

Knobs (also documented in README.md):

* ``--jobs N`` / ``REPRO_JOBS`` — worker processes.
* ``--retries N`` / ``REPRO_RETRIES`` — retry budget per spec
  (default 1 retry, i.e. up to two attempts).
* ``REPRO_RUN_TIMEOUT`` — per-spec wall-clock seconds before a running
  worker is considered hung and cancelled (0/unset disables; pool mode
  only — a serial run cannot be interrupted).
* ``REPRO_RETRY_BACKOFF`` — base backoff delay in seconds
  (default 0.1; attempt ``n`` waits ``base * 2**(n-1)``, capped at 5s).
* ``REPRO_FAULT_SPEC`` — deterministic fault injection for tests, e.g.
  ``PVC@CABA-BDI:raise:1;MM:hang:*`` (see :func:`maybe_inject_fault`).
* ``REPRO_FAULT_HANG`` — sleep length of an injected hang (default
  300s, so any realistic ``REPRO_RUN_TIMEOUT`` fires first).
"""

from __future__ import annotations

import os
import time
import traceback as traceback_mod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.harness import runner
from repro.harness.runner import RunResult, RunSpec

#: Exponential-backoff cap so a long retry ladder stays bounded.
_BACKOFF_CAP = 5.0


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 1 (serial) when unset/invalid."""
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


def default_retries() -> int:
    """Retry budget from ``REPRO_RETRIES``; 1 when unset/invalid."""
    env = os.environ.get("REPRO_RETRIES", "")
    try:
        return max(0, int(env))
    except ValueError:
        return 1


def default_timeout() -> float | None:
    """Per-spec timeout from ``REPRO_RUN_TIMEOUT``; None disables."""
    env = os.environ.get("REPRO_RUN_TIMEOUT", "")
    try:
        value = float(env)
    except ValueError:
        return None
    return value if value > 0 else None


def _backoff_delay(attempt: int) -> float:
    """Delay before retry number ``attempt`` (1-based)."""
    try:
        base = float(os.environ.get("REPRO_RETRY_BACKOFF", "0.1"))
    except ValueError:
        base = 0.1
    if base <= 0:
        return 0.0
    return min(_BACKOFF_CAP, base * (2.0 ** (attempt - 1)))


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunFailure:
    """One spec that exhausted its retry budget.

    ``kind`` is ``"error"`` (worker exception), ``"timeout"`` (exceeded
    the per-spec wall clock) or ``"pool-broken"`` (the worker process
    died — e.g. OOM-killed — taking the pool down with it).
    """

    spec: RunSpec
    kind: str
    attempts: int
    exception: str
    traceback: str = ""
    worker_pid: int | None = None

    def describe(self) -> str:
        where = f" [pid {self.worker_pid}]" if self.worker_pid else ""
        return (f"{self.spec.app}/{self.spec.design.name}: {self.kind} "
                f"after {self.attempts} attempt(s){where}: {self.exception}")


def render_failures(failures: Sequence[RunFailure]) -> str:
    """Human-readable multi-line failure report."""
    lines = [f"{len(failures)} run(s) failed:"]
    lines += [f"  - {failure.describe()}" for failure in failures]
    return "\n".join(lines)


class ExperimentFailure(RuntimeError):
    """Raised by strict ``run_many`` after the batch has drained.

    Carries the structured failure report plus everything that did
    complete (already checkpointed to the caches), so callers can
    surface partial progress.
    """

    def __init__(self, failures: Sequence[RunFailure],
                 completed: dict[RunSpec, RunResult],
                 label: str | None = None) -> None:
        self.failures = list(failures)
        self.completed = dict(completed)
        self.label = label
        prefix = f"[{label}] " if label else ""
        super().__init__(prefix + render_failures(self.failures))


@dataclass
class BatchResult:
    """``run_many(strict=False)`` return value: partial results aligned
    with the input specs (``None`` where the spec failed) plus the
    structured failure report."""

    results: list[RunResult | None]
    failures: list[RunFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> list[RunResult]:
        return [run for run in self.results if run is not None]


# ----------------------------------------------------------------------
# Deterministic fault injection (tests / chaos drills)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Fault:
    app: str
    design: str | None  # None matches every design
    mode: str           # raise | kill | hang
    attempt: int | None  # None matches every attempt

    def matches(self, spec: RunSpec, attempt: int) -> bool:
        if self.app != spec.app:
            return False
        if self.design is not None and self.design != spec.design.name:
            return False
        return self.attempt is None or self.attempt == attempt


_FAULT_MODES = ("raise", "kill", "hang")


class InjectedFault(RuntimeError):
    """The exception an injected ``raise`` fault throws in a worker."""


def _parse_faults(text: str) -> tuple[_Fault, ...]:
    """Parse ``REPRO_FAULT_SPEC``: ``app[@design]:mode[:attempt]``
    entries joined by ``;``. ``attempt`` is 1-based or ``*`` (default
    ``1`` — a single-shot fault on the first attempt)."""
    faults = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad fault entry {entry!r} "
                             f"(want app[@design]:mode[:attempt])")
        target, mode = parts[0], parts[1]
        if mode not in _FAULT_MODES:
            raise ValueError(f"bad fault mode {mode!r} "
                             f"(want one of {_FAULT_MODES})")
        app, _, design = target.partition("@")
        attempt: int | None = 1
        if len(parts) == 3:
            attempt = None if parts[2] == "*" else int(parts[2])
        faults.append(_Fault(app, design or None, mode, attempt))
    return tuple(faults)


def _fault_for(spec: RunSpec, attempt: int) -> str | None:
    """The injected fault mode for this (spec, attempt), or None."""
    text = os.environ.get("REPRO_FAULT_SPEC", "")
    if not text:
        return None
    for fault in _parse_faults(text):
        if fault.matches(spec, attempt):
            return fault.mode
    return None


def maybe_inject_fault(spec: RunSpec, attempt: int) -> None:
    """Execute the ``REPRO_FAULT_SPEC`` fault for this (spec, attempt).

    Runs inside the worker (and on the serial path), so tests can
    deterministically crash (``raise``), kill (``kill`` — ``os._exit``,
    which breaks the whole pool) or hang (``hang`` — sleep past any
    reasonable ``REPRO_RUN_TIMEOUT``) specific specs on specific
    attempts. No-op unless the environment variable is set.
    """
    mode = _fault_for(spec, attempt)
    if mode is None:
        return
    if mode == "raise":
        raise InjectedFault(
            f"injected fault: {spec.app}/{spec.design.name} "
            f"attempt {attempt}"
        )
    if mode == "kill":
        os._exit(86)
    if mode == "hang":
        try:
            seconds = float(os.environ.get("REPRO_FAULT_HANG", "300"))
        except ValueError:
            seconds = 300.0
        time.sleep(seconds)


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------
@dataclass
class _WorkerFailure:
    """Picklable failure envelope a worker returns instead of raising,
    so the parent learns the worker pid and formatted traceback."""

    exception: str
    traceback: str
    worker_pid: int


def _worker_run(spec: RunSpec, attempt: int = 1) -> RunResult | _WorkerFailure:
    """Top-level (picklable) pool entry point: one spec, raw-free result.

    Exceptions are converted to a :class:`_WorkerFailure` envelope —
    never raised — so a bad spec cannot poison the future machinery and
    the parent gets structured context. (A ``kill`` fault bypasses this
    via ``os._exit`` and surfaces as ``BrokenProcessPool`` instead.)
    """
    try:
        maybe_inject_fault(spec, attempt)
        return runner.run_spec(spec)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        return _WorkerFailure(
            exception=repr(exc),
            traceback=traceback_mod.format_exc(),
            worker_pid=os.getpid(),
        )


@dataclass
class _Task:
    """One in-flight attempt of one spec."""

    spec: RunSpec
    attempt: int = 1
    deadline: float | None = None


class ExperimentEngine:
    """Shared executor for experiment matrices.

    Args:
        jobs: Worker processes. ``None`` reads ``REPRO_JOBS``; ``1``
            keeps everything in-process (serial fallback).
        retries: Retry budget per spec. ``None`` reads ``REPRO_RETRIES``
            (default 1 retry).
        timeout: Per-spec wall-clock seconds before a running worker is
            treated as hung. ``None`` reads ``REPRO_RUN_TIMEOUT``;
            ``0`` disables explicitly. Pool mode only.
    """

    def __init__(self, jobs: int | None = None,
                 retries: int | None = None,
                 timeout: float | None = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.retries = retries if retries is not None else default_retries()
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if timeout is None:
            timeout = default_timeout()
        elif timeout <= 0:
            timeout = None
        self.timeout = timeout
        self._pool: ProcessPoolExecutor | None = None
        #: Pools respawned after a breakage/timeout (observability).
        self.pool_respawns = 0

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _recycle_pool(self) -> None:
        """Tear the pool down hard (terminating hung/zombie workers)
        and let the next submission build a fresh one."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.pool_respawns += 1
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunResult:
        return self.run_many([spec])[0]

    def run_many(
        self,
        specs: Iterable[RunSpec],
        strict: bool = True,
        label: str | None = None,
        on_result: Callable[[RunSpec, RunResult], None] | None = None,
        on_failure: Callable[[RunFailure], None] | None = None,
    ) -> list[RunResult] | BatchResult:
        """Execute ``specs``; the result list is aligned with the input
        order (duplicates resolve to the same result object).

        With ``strict=True`` (default) any spec that exhausts its retry
        budget raises :class:`ExperimentFailure` — but only after every
        other spec has completed and been checkpointed, so a rerun only
        redoes the failures. With ``strict=False`` the return value is
        a :class:`BatchResult` carrying the partial results (``None``
        at failed positions) and the failure report. ``label`` names
        the batch (e.g. the figure id) in failure reports.

        ``on_result`` is invoked once per *unique* spec the moment its
        result resolves (cache hit or worker landing — the same moment
        it is checkpointed), and ``on_failure`` the moment a spec
        exhausts its retry budget; the sweep service streams per-spec
        progress from these. Callbacks run on the calling thread and
        must not raise.
        """
        ordered = list(specs)
        unique: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in ordered:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)

        resolved: dict[RunSpec, RunResult] = {}
        if self.jobs <= 1:
            failures = self._run_serial(unique, resolved,
                                        on_result=on_result,
                                        on_failure=on_failure)
        else:
            pending = []
            for spec in unique:
                hit = runner.cached_result(spec)
                if hit is not None:
                    resolved[spec] = hit
                    if on_result is not None:
                        on_result(spec, hit)
                else:
                    pending.append(spec)
            failures = self._run_pool(pending, resolved,
                                      on_result=on_result,
                                      on_failure=on_failure)

        if failures and strict:
            raise ExperimentFailure(failures, resolved, label=label)
        results = [resolved.get(spec) for spec in ordered]
        if strict:
            return results
        return BatchResult(results=results, failures=failures)

    # ------------------------------------------------------------------
    def _run_serial(
        self, specs: Sequence[RunSpec], resolved: dict[RunSpec, RunResult],
        on_result: Callable | None = None,
        on_failure: Callable | None = None,
    ) -> list[RunFailure]:
        """Inline execution with the same retry/failure contract as the
        pool (timeouts excepted: a hung in-process run cannot be
        interrupted)."""
        failures: list[RunFailure] = []
        for spec in specs:
            attempt = 1
            while True:
                try:
                    maybe_inject_fault(spec, attempt)
                    resolved[spec] = runner.run_spec(spec)
                    if on_result is not None:
                        on_result(spec, resolved[spec])
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if attempt > self.retries:
                        failure = RunFailure(
                            spec=spec, kind="error", attempts=attempt,
                            exception=repr(exc),
                            traceback=traceback_mod.format_exc(),
                            worker_pid=os.getpid(),
                        )
                        failures.append(failure)
                        if on_failure is not None:
                            on_failure(failure)
                        break
                    time.sleep(_backoff_delay(attempt))
                    attempt += 1
        return failures

    # ------------------------------------------------------------------
    def _run_pool(
        self, specs: Sequence[RunSpec], resolved: dict[RunSpec, RunResult],
        on_result: Callable | None = None,
        on_failure: Callable | None = None,
    ) -> list[RunFailure]:
        """Per-spec futures with retry, pool recovery and timeouts.

        At most ``jobs`` futures are in flight at a time, so a spec's
        wall-clock deadline starts roughly when its worker starts, not
        when a huge batch was enqueued.
        """
        failures: list[RunFailure] = []
        waiting: deque[_Task] = deque(_Task(spec) for spec in specs)
        retry_at: list[tuple[float, _Task]] = []
        inflight: dict = {}
        #: After an ambiguous pool break (several specs in flight, the
        #: culprit unknowable) the affected specs replay one at a time,
        #: so a repeat break charges exactly the guilty spec.
        quarantine: deque[_Task] = deque()

        def submit(task: _Task) -> None:
            pool = self._ensure_pool()
            future = pool.submit(_worker_run, task.spec, task.attempt)
            task.deadline = (
                time.monotonic() + self.timeout if self.timeout else None
            )
            inflight[future] = task

        def retry_or_fail(task: _Task, kind: str, exception: str,
                          tb: str = "", pid: int | None = None) -> None:
            if task.attempt > self.retries:
                failure = RunFailure(
                    spec=task.spec, kind=kind, attempts=task.attempt,
                    exception=exception, traceback=tb, worker_pid=pid,
                )
                failures.append(failure)
                if on_failure is not None:
                    on_failure(failure)
                return
            eligible = time.monotonic() + _backoff_delay(task.attempt)
            retry_at.append(
                (eligible, _Task(task.spec, attempt=task.attempt + 1))
            )

        while waiting or retry_at or inflight or quarantine:
            now = time.monotonic()
            if retry_at:
                due = [item for item in retry_at if item[0] <= now]
                if due:
                    retry_at = [i for i in retry_at if i[0] > now]
                    waiting.extend(task for _, task in due)
            if quarantine:
                # Solo replay: exactly one in-flight task until the
                # quarantine drains, so breakage is attributable.
                if not inflight:
                    submit(quarantine.popleft())
            else:
                while waiting and len(inflight) < self.jobs:
                    submit(waiting.popleft())

            if not inflight:
                # Only backoff-delayed retries remain; sleep them in.
                next_at = min(ts for ts, _ in retry_at)
                time.sleep(max(0.0, next_at - time.monotonic()))
                continue

            wake_at = None
            if self.timeout:
                wake_at = min(t.deadline for t in inflight.values())
            if retry_at:
                next_retry = min(ts for ts, _ in retry_at)
                wake_at = next_retry if wake_at is None \
                    else min(wake_at, next_retry)
            wait_timeout = (
                None if wake_at is None
                else max(0.0, wake_at - time.monotonic())
            )
            done, _ = wait(list(inflight), timeout=wait_timeout,
                           return_when=FIRST_COMPLETED)

            broken: list[tuple[_Task, str]] = []
            for future in done:
                task = inflight.pop(future)
                if future.cancelled():
                    waiting.append(task)  # recycled before it started
                    continue
                exc = future.exception()
                if exc is not None:
                    # A worker process died (os._exit, OOM-kill, ...):
                    # every in-flight future fails with the same
                    # BrokenProcessPool.
                    broken.append((task, repr(exc)))
                    continue
                outcome = future.result()
                if isinstance(outcome, _WorkerFailure):
                    retry_or_fail(task, "error", outcome.exception,
                                  tb=outcome.traceback,
                                  pid=outcome.worker_pid)
                else:
                    # Checkpoint as results land, not at batch end.
                    runner.record_result(task.spec, outcome)
                    resolved[task.spec] = outcome
                    if on_result is not None:
                        on_result(task.spec, outcome)

            if broken:
                # Remaining in-flight futures died with the pool too.
                affected = [task for task, _ in broken]
                affected += list(inflight.values())
                inflight.clear()
                self._recycle_pool()
                if len(affected) == 1:
                    # Unambiguous: this task's worker broke the pool.
                    retry_or_fail(affected[0], "pool-broken", broken[0][1])
                else:
                    # Culprit unknowable: replay them one at a time
                    # (no attempt charged for the ambiguous break).
                    quarantine.extend(affected)

            if self.timeout and inflight:
                now = time.monotonic()
                expired = [
                    (future, task) for future, task in inflight.items()
                    if task.deadline is not None and now >= task.deadline
                ]
                if expired:
                    for future, task in expired:
                        del inflight[future]
                        retry_or_fail(
                            task, "timeout",
                            f"TimeoutError: no result within "
                            f"{self.timeout}s",
                        )
                    # The hung workers hold pool slots until killed;
                    # recycle and resubmit the survivors (no attempt
                    # spent — they were not at fault).
                    survivors = list(inflight.values())
                    inflight.clear()
                    self._recycle_pool()
                    waiting.extend(survivors)
        return failures


# ----------------------------------------------------------------------
# Shared default engine (what the figure harnesses submit through)
# ----------------------------------------------------------------------
_engine: ExperimentEngine | None = None


def get_engine() -> ExperimentEngine:
    global _engine
    if _engine is None:
        _engine = ExperimentEngine()
    return _engine


def configure(jobs: int | None, retries: int | None = None,
              timeout: float | None = None) -> ExperimentEngine:
    """Install a fresh default engine with ``jobs`` workers."""
    global _engine
    if _engine is not None:
        _engine.close()
    _engine = ExperimentEngine(jobs=jobs, retries=retries, timeout=timeout)
    return _engine


def shutdown() -> None:
    """Tear down the default engine's pool (idempotent)."""
    global _engine
    if _engine is not None:
        _engine.close()
        _engine = None


def run_specs(
    specs: Sequence[RunSpec],
    strict: bool = True,
    label: str | None = None,
) -> list[RunResult] | BatchResult:
    """Run ``specs`` through the shared default engine."""
    return get_engine().run_many(specs, strict=strict, label=label)
