"""Per-figure experiment harnesses.

One function per table/figure of the paper's evaluation. Each returns a
:class:`FigureResult` whose rows are plain dicts, so the benchmark
drivers can both print the paper-style table (via
:mod:`repro.harness.report`) and assert on the headline shapes.

All simulation-based figures accept a machine ``config`` (default: the
fast ``GPUConfig.small()``) and an ``apps`` subset so smoke runs stay
cheap; passing ``GPUConfig.medium()`` or the full Table-1 config and the
full app lists reproduces the paper-scale study (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import design as designs
from repro.compression import make_algorithm
from repro.design import DesignPoint
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.sampling import SampleConfig
from repro.gpu.stats import SLOT_LABELS, Slot
from repro.harness.parallel import run_specs
from repro.harness.runner import RunResult, RunSpec, geomean
from repro.workloads.apps import (
    COMPRESSION_APPS,
    FIGURE1_APPS,
    get_app,
)
from repro.workloads.data_patterns import make_line_generator
from repro.workloads.tracegen import build_kernel


@dataclass
class FigureResult:
    """A reproduced table/figure: labelled rows plus summary values."""

    figure: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    notes: str = ""
    #: Non-empty when the sweep ran under ambient ``REPRO_SAMPLE`` —
    #: interval-sampled timing is approximate (≤2 % on certified
    #: points; see repro.gpu.sampling), and reports must say so rather
    #: than pass extrapolated numbers off as exact.
    sampled: str = ""

    def __post_init__(self) -> None:
        sample = SampleConfig.from_env()
        if sample is not None:
            self.sampled = (
                f"interval-sampled {sample.warmup}:{sample.measure}:"
                f"{sample.skip} ({sample.detail_fraction:.0%} detail) — "
                "timing values are extrapolated, not exact"
            )


def _default_config(config: GPUConfig | None) -> GPUConfig:
    return config if config is not None else GPUConfig.small()


# ----------------------------------------------------------------------
# Figure 1: issue-cycle breakdown vs. off-chip bandwidth
# ----------------------------------------------------------------------
def fig1_cycle_breakdown(
    config: GPUConfig | None = None,
    apps: Sequence[str] = FIGURE1_APPS,
    bw_scales: Sequence[float] = (0.5, 1.0, 2.0),
) -> FigureResult:
    """Breakdown of total issue cycles at 1/2x, 1x and 2x bandwidth."""
    config = _default_config(config)
    columns = ["app", "category", "bw"] + [
        SLOT_LABELS[s] for s in Slot
    ]
    result = FigureResult(
        figure="fig1",
        title="Breakdown of total issue cycles (Figure 1)",
        columns=columns,
    )
    memory_stall_fracs: dict[float, list[float]] = {s: [] for s in bw_scales}
    runs = iter(run_specs([
        RunSpec(name, designs.base(), config.with_bandwidth_scale(scale))
        for name in apps for scale in bw_scales
    ], label="fig1"))
    for name in apps:
        app = get_app(name)
        for scale in bw_scales:
            run = next(runs)
            row = {
                "app": name,
                "category": app.category,
                "bw": scale,
            }
            for slot in Slot:
                row[SLOT_LABELS[slot]] = run.slot_breakdown[slot]
            result.rows.append(row)
            if app.category == "memory":
                memory_stall_fracs[scale].append(
                    run.slot_breakdown[Slot.MEMORY_STALL]
                    + run.slot_breakdown[Slot.DATA_STALL]
                )
    for scale, fracs in memory_stall_fracs.items():
        if fracs:
            result.summary[f"mem+dep_stalls@{scale}x"] = sum(fracs) / len(fracs)
    result.notes = (
        "Paper: memory + data-dependence stalls dominate memory-bound "
        "apps (~61% at 1x), shrink with 2x bandwidth, grow at 1/2x."
    )
    return result


# ----------------------------------------------------------------------
# Figure 2: statically unallocated registers
# ----------------------------------------------------------------------
def fig2_unallocated_registers(
    config: GPUConfig | None = None,
    apps: Sequence[str] = FIGURE1_APPS,
) -> FigureResult:
    """Fraction of the register file left unallocated per application.

    Uses the paper's reference machine (128 KB register file, 1536
    threads, 8 blocks per SM) regardless of the simulation config, as
    the figure is a static property of the full architecture.
    """
    config = config if config is not None else GPUConfig()
    result = FigureResult(
        figure="fig2",
        title="Fraction of statically unallocated registers (Figure 2)",
        columns=["app", "blocks_per_sm", "limiting_factor", "unallocated"],
    )
    fractions = []
    for name in apps:
        app = get_app(name)
        kernel = build_kernel(app, config)
        occ = compute_occupancy(config, kernel)
        frac = occ.unallocated_register_fraction
        fractions.append(frac)
        result.rows.append({
            "app": name,
            "blocks_per_sm": occ.blocks_per_sm,
            "limiting_factor": occ.limiting_factor,
            "unallocated": frac,
        })
    result.summary["average_unallocated"] = sum(fractions) / len(fractions)
    result.notes = "Paper: on average 24% of the register file is unallocated."
    return result


# ----------------------------------------------------------------------
# Figure 5: the BDI worked example
# ----------------------------------------------------------------------
def fig5_bdi_example() -> FigureResult:
    """The PVC cache line of Figure 5: 64 B -> 17 B under BDI."""
    words = [
        0x00, 0x80001D000, 0x10, 0x80001D008,
        0x20, 0x80001D010, 0x30, 0x80001D018,
    ]
    data = b"".join(w.to_bytes(8, "little") for w in words)
    bdi = make_algorithm("bdi", line_size=64)
    line = bdi.compress(data)
    result = FigureResult(
        figure="fig5",
        title="BDI compression of a PVC cache line (Figure 5)",
        columns=["encoding", "compressed_bytes", "saved_bytes", "round_trip"],
    )
    result.rows.append({
        "encoding": line.encoding,
        "compressed_bytes": line.size_bytes,
        "saved_bytes": line.line_size - line.size_bytes,
        "round_trip": bdi.decompress(line) == data,
    })
    result.summary["compressed_bytes"] = line.size_bytes
    result.notes = "Paper: 64-byte line -> 17 bytes (47 bytes saved)."
    return result


# ----------------------------------------------------------------------
# Figures 7/8/9: the five designs
# ----------------------------------------------------------------------
def _design_study(
    config: GPUConfig,
    apps: Sequence[str],
    points: Sequence[DesignPoint],
    label: str | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run every app under every design; results keyed [app][design].

    The full (app x design) matrix is enumerated up front and submitted
    through the shared parallel engine, so independent points simulate
    concurrently when the engine has workers. ``label`` names the
    calling figure in failure reports."""
    results = run_specs([
        RunSpec(name, point, config) for name in apps for point in points
    ], label=label)
    table: dict[str, dict[str, RunResult]] = {}
    it = iter(results)
    for name in apps:
        table[name] = {point.name: next(it) for point in points}
    return table


def fig7_performance(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
) -> FigureResult:
    """Normalized performance of the five designs (Figure 7)."""
    config = _default_config(config)
    points = (
        designs.base(),
        designs.hw_mem(algorithm),
        designs.hw(algorithm),
        designs.caba(algorithm),
        designs.ideal(algorithm),
    )
    runs = _design_study(config, apps, points, label="fig7")
    names = [p.name for p in points]
    result = FigureResult(
        figure="fig7",
        title="Normalized performance of CABA (Figure 7)",
        columns=["app"] + names,
    )
    per_design: dict[str, list[float]] = {n: [] for n in names}
    for app in apps:
        base = runs[app]["Base"]
        row = {"app": app}
        for name in names:
            speedup = runs[app][name].ipc / base.ipc if base.ipc else 0.0
            row[name] = speedup
            per_design[name].append(speedup)
        result.rows.append(row)
    for name in names:
        result.summary[f"geomean_{name}"] = geomean(per_design[name])
    result.notes = (
        "Paper: CABA-BDI +41.7% avg (up to 2.6x), 2.8% under Ideal-BDI, "
        "9.9% over HW-BDI-Mem, 1.6% under HW-BDI."
    )
    return result


def fig8_bandwidth(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
) -> FigureResult:
    """DRAM bandwidth utilization of the five designs (Figure 8)."""
    config = _default_config(config)
    points = (
        designs.base(),
        designs.hw_mem(algorithm),
        designs.hw(algorithm),
        designs.caba(algorithm),
        designs.ideal(algorithm),
    )
    runs = _design_study(config, apps, points, label="fig8")
    names = [p.name for p in points]
    result = FigureResult(
        figure="fig8",
        title="Memory bandwidth utilization (Figure 8)",
        columns=["app"] + names,
    )
    sums = {n: 0.0 for n in names}
    for app in apps:
        row = {"app": app}
        for name in names:
            util = runs[app][name].bandwidth_utilization
            row[name] = util
            sums[name] += util
        result.rows.append(row)
    for name in names:
        result.summary[f"avg_{name}"] = sums[name] / len(apps)
    result.notes = (
        "Paper: CABA-BDI reduces average utilization from 53.6% to 35.6%."
    )
    return result


def fig9_energy(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
) -> FigureResult:
    """Normalized energy of the five designs (Figure 9)."""
    config = _default_config(config)
    points = (
        designs.base(),
        designs.hw_mem(algorithm),
        designs.hw(algorithm),
        designs.caba(algorithm),
        designs.ideal(algorithm),
    )
    runs = _design_study(config, apps, points, label="fig9")
    names = [p.name for p in points]
    result = FigureResult(
        figure="fig9",
        title="Normalized energy consumption (Figure 9)",
        columns=["app"] + names,
    )
    per_design: dict[str, list[float]] = {n: [] for n in names}
    dram_drop = []
    for app in apps:
        base_energy = runs[app]["Base"].energy_total
        row = {"app": app}
        for name in names:
            normalized = (
                runs[app][name].energy_total / base_energy
                if base_energy else 0.0
            )
            row[name] = normalized
            per_design[name].append(normalized)
        result.rows.append(row)
        base_dram = (
            runs[app]["Base"].energy.dram_dynamic
            + runs[app]["Base"].energy.dram_static
        )
        caba_dram = (
            runs[app][points[3].name].energy.dram_dynamic
            + runs[app][points[3].name].energy.dram_static
        )
        if base_dram:
            dram_drop.append(1.0 - caba_dram / base_dram)
    for name in names:
        result.summary[f"avg_{name}"] = (
            sum(per_design[name]) / len(per_design[name])
        )
    if dram_drop:
        result.summary["avg_dram_energy_reduction"] = (
            sum(dram_drop) / len(dram_drop)
        )
    result.notes = (
        "Paper: CABA-BDI cuts system energy 22.2% (29.5% DRAM power), "
        "within ~3.6% of HW-BDI and ~4% of Ideal-BDI."
    )
    return result


# ----------------------------------------------------------------------
# Figures 10/11: algorithm flexibility
# ----------------------------------------------------------------------
ALGORITHM_ORDER = ("fpc", "bdi", "cpack", "bestofall")


def fig10_algorithms(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
) -> FigureResult:
    """Speedup of CABA with different compression algorithms (Figure 10)."""
    config = _default_config(config)
    labels = {a: designs.caba(a).name for a in algorithms}
    result = FigureResult(
        figure="fig10",
        title="Speedup with different compression algorithms (Figure 10)",
        columns=["app"] + [labels[a] for a in algorithms],
    )
    per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
    points = [designs.base()] + [designs.caba(a) for a in algorithms]
    runs = iter(run_specs([
        RunSpec(app, point, config) for app in apps for point in points
    ], label="fig10"))
    for app in apps:
        base = next(runs)
        row = {"app": app}
        for algo in algorithms:
            run = next(runs)
            speedup = run.ipc / base.ipc if base.ipc else 0.0
            row[labels[algo]] = speedup
            per_algo[algo].append(speedup)
        result.rows.append(row)
    for algo in algorithms:
        result.summary[f"geomean_{labels[algo]}"] = geomean(per_algo[algo])
    result.notes = (
        "Paper: CABA-FPC +20.7%, CABA-C-Pack +35.2%, CABA-BDI +41.7%; "
        "BestOfAll can beat each single algorithm."
    )
    return result


def fig11_compression_ratio(
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    line_size: int = 128,
    sample_lines: int = 400,
) -> FigureResult:
    """Compression ratios per algorithm on each app's data (Figure 11).

    Computed by running the real algorithms over a deterministic sample
    of each application's generated lines (burst-granularity ratio, as
    the paper measures it).
    """
    from repro.harness.runner import plane_for_app

    compressors = {a: make_algorithm(a, line_size) for a in algorithms}
    result = FigureResult(
        figure="fig11",
        title="Compression ratio of algorithms with CABA (Figure 11)",
        columns=["app"] + [a.upper() for a in algorithms],
    )
    sums = {a: 0.0 for a in algorithms}
    line_bursts = -(-line_size // 32)
    for app_name in apps:
        app = get_app(app_name)
        gen = None
        row = {"app": app_name}
        for algo in algorithms:
            total_bursts = sample_lines * line_bursts
            # The sampled image is batch-compressed through the shared
            # plane machinery (and its caches); with REPRO_PLANES=0 the
            # plane is None and the scalar reference path runs instead.
            plane = plane_for_app(app, algo, sample_lines, line_size)
            if plane is not None:
                compressed_bursts = sum(
                    plane.bursts(line_addr)
                    for line_addr in range(sample_lines)
                )
            else:
                if gen is None:
                    gen = make_line_generator(app.data, line_size,
                                              seed=app.seed)
                comp = compressors[algo]
                compressed_bursts = sum(
                    comp.compress(gen(line_addr)).bursts()
                    for line_addr in range(sample_lines)
                )
            ratio = total_bursts / compressed_bursts
            row[algo.upper()] = ratio
            sums[algo] += ratio
        result.rows.append(row)
    for algo in algorithms:
        result.summary[f"avg_{algo}"] = sums[algo] / len(apps)
    result.notes = (
        "Paper: BDI ~2.1x average; LPS/JPEG/MUM/nw compress better with "
        "FPC or C-Pack; MM/PVC/PVR better with BDI; BestOfAll is the "
        "upper envelope."
    )
    return result


# ----------------------------------------------------------------------
# Figure 12: bandwidth sensitivity
# ----------------------------------------------------------------------
def fig12_bw_sensitivity(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
    scales: Sequence[float] = (0.5, 1.0, 2.0),
) -> FigureResult:
    """Base vs CABA at 1/2x, 1x and 2x off-chip bandwidth (Figure 12)."""
    config = _default_config(config)
    labels = []
    for scale in scales:
        tag = {0.5: "1/2x", 1.0: "1x", 2.0: "2x"}.get(scale, f"{scale}x")
        labels.append((scale, f"{tag}-Base", f"{tag}-CABA"))
    columns = ["app"]
    for _, b, c in labels:
        columns += [b, c]
    result = FigureResult(
        figure="fig12",
        title="Sensitivity of CABA to memory bandwidth (Figure 12)",
        columns=columns,
    )
    # Normalize against 1x-Base, as the paper does.
    per_label: dict[str, list[float]] = {}
    specs = []
    for app in apps:
        specs.append(RunSpec(app, designs.base(),
                             config.with_bandwidth_scale(1.0)))
        for scale, _, _ in labels:
            scaled = config.with_bandwidth_scale(scale)
            specs.append(RunSpec(app, designs.base(), scaled))
            specs.append(RunSpec(app, designs.caba(algorithm), scaled))
    runs = iter(run_specs(specs, label="fig12"))
    for app in apps:
        ref = next(runs)
        row = {"app": app}
        for scale, base_label, caba_label in labels:
            b = next(runs)
            c = next(runs)
            row[base_label] = b.ipc / ref.ipc if ref.ipc else 0.0
            row[caba_label] = c.ipc / ref.ipc if ref.ipc else 0.0
            per_label.setdefault(base_label, []).append(row[base_label])
            per_label.setdefault(caba_label, []).append(row[caba_label])
        result.rows.append(row)
    for label, values in per_label.items():
        result.summary[f"geomean_{label}"] = geomean(values)
    result.notes = (
        "Paper: CABA at each bandwidth outperforms its baseline; "
        "1x-CABA is roughly equivalent to doubling the bandwidth."
    )
    return result


# ----------------------------------------------------------------------
# Figure 13: cache compression
# ----------------------------------------------------------------------
def fig13_cache_compression(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
) -> FigureResult:
    """CABA-based L1/L2 cache compression with 2x/4x tags (Figure 13)."""
    config = _default_config(config)
    points = [
        designs.caba(algorithm),
        designs.caba_cache("l1", 2, algorithm),
        designs.caba_cache("l1", 4, algorithm),
        designs.caba_cache("l2", 2, algorithm),
        designs.caba_cache("l2", 4, algorithm),
    ]
    names = [p.name for p in points]
    result = FigureResult(
        figure="fig13",
        title="Speedup of cache compression with CABA (Figure 13)",
        columns=["app"] + names,
    )
    per_design: dict[str, list[float]] = {n: [] for n in names}
    runs = iter(run_specs([
        RunSpec(app, point, config) for app in apps for point in points
    ], label="fig13"))
    for app in apps:
        by_point = [next(runs) for _ in points]
        baseline = by_point[0]
        row = {"app": app}
        for point, run in zip(points, by_point):
            rel = run.ipc / baseline.ipc if baseline.ipc else 0.0
            row[point.name] = rel
            per_design[point.name].append(rel)
        result.rows.append(row)
    for name in names:
        result.summary[f"geomean_{name}"] = geomean(per_design[name])
    result.notes = (
        "Paper: cache-sensitive apps gain from extra effective capacity; "
        "L1 compression can hurt (decompression on every hit)."
    )
    return result


# ----------------------------------------------------------------------
# Table 1 and the MD-cache study
# ----------------------------------------------------------------------
def tab1_system_config(config: GPUConfig | None = None) -> FigureResult:
    """Echo the simulated system parameters (Table 1)."""
    config = config if config is not None else GPUConfig()
    t = config.dram_timing
    result = FigureResult(
        figure="tab1",
        title="Major parameters of the simulated system (Table 1)",
        columns=["parameter", "value"],
    )
    rows = [
        ("SMs", config.n_sms),
        ("threads/warp", config.warp_size),
        ("warps/SM", config.warps_per_sm),
        ("registers/SM", config.registers_per_sm),
        ("shared memory/SM (KB)", config.smem_per_sm // 1024),
        ("schedulers/SM (GTO)", config.schedulers_per_sm),
        ("core clock (GHz)", config.core_clock_ghz),
        ("L1 (KB, ways)", f"{config.l1_size // 1024}, {config.l1_assoc}"),
        ("L2 (KB, ways)", f"{config.l2_size // 1024}, {config.l2_assoc}"),
        ("memory channels", config.n_mcs),
        ("banks/channel", config.banks_per_mc),
        ("peak bandwidth (GB/s)", config.dram_bw_gbps),
        ("tCL/tRP/tRC/tRAS", f"{t.tCL}/{t.tRP}/{t.tRC}/{t.tRAS}"),
        ("tRCD/tRRD/tCDLR/tWR", f"{t.tRCD}/{t.tRRD}/{t.tCDLR}/{t.tWR}"),
    ]
    result.rows = [{"parameter": k, "value": v} for k, v in rows]
    return result


def md_cache_study(
    config: GPUConfig | None = None,
    apps: Sequence[str] = COMPRESSION_APPS,
    algorithm: str = "bdi",
) -> FigureResult:
    """MD-cache hit rates under CABA (Section 4.3.2: 85% average)."""
    config = _default_config(config)
    result = FigureResult(
        figure="mdcache",
        title="Metadata cache hit rate (Section 4.3.2)",
        columns=["app", "md_hit_rate"],
    )
    rates = []
    runs = iter(run_specs([
        RunSpec(app, designs.caba(algorithm), config) for app in apps
    ], label="mdcache"))
    for app in apps:
        run = next(runs)
        if run.md_cache_hit_rate is None:
            continue
        rates.append(run.md_cache_hit_rate)
        result.rows.append({"app": app, "md_hit_rate": run.md_cache_hit_rate})
    if rates:
        result.summary["average_hit_rate"] = sum(rates) / len(rates)
    result.notes = "Paper: 8KB 4-way MD cache hits 85% on average."
    return result
