"""Plain-text rendering of reproduced figures and tables.

The benchmark drivers print each :class:`FigureResult` through these
helpers so ``pytest benchmarks/ --benchmark-only`` emits the same rows
and series the paper reports, alongside the timing data.
"""

from __future__ import annotations

from typing import Iterable

from repro.harness.figures import FigureResult


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(result: FigureResult, max_rows: int | None = None) -> str:
    """Render a FigureResult as an aligned monospace table."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    header = result.columns
    body = [[_fmt(row.get(col, "")) for col in header] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in body)) if body else len(col)
        for i, col in enumerate(header)
    ]
    lines = [
        f"== {result.title} ==",
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for line in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    if max_rows is not None and len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    if result.summary:
        lines.append("summary:")
        for key, value in result.summary.items():
            lines.append(f"  {key} = {_fmt(value)}")
    if result.notes:
        lines.append(f"paper: {result.notes}")
    return "\n".join(lines)


def print_figure(result: FigureResult, max_rows: int | None = None) -> None:
    print()
    print(render_table(result, max_rows=max_rows))


def render_bars(
    result: FigureResult,
    value_column: str,
    label_column: str = "app",
    width: int = 40,
    reference: float | None = None,
) -> str:
    """Render one column of a FigureResult as a horizontal bar chart.

    ``reference`` draws a marker at that value (e.g. 1.0 for speedups).
    """
    rows = [r for r in result.rows if value_column in r]
    if not rows:
        return f"== {result.title} == (no data for {value_column!r})"
    peak = max(float(r[value_column]) for r in rows)
    if peak <= 0:
        peak = 1.0
    lines = [f"== {result.title} — {value_column} =="]
    for row in rows:
        value = float(row[value_column])
        filled = int(round(width * value / peak))
        bar = "#" * filled
        if reference is not None and 0 < reference <= peak:
            mark = int(round(width * reference / peak))
            if mark < width:
                bar = (bar + " " * width)[:width]
                bar = bar[:mark] + "|" + bar[mark + 1:]
        lines.append(
            f"  {str(row[label_column]):>10s} {bar:<{width}s} {value:.3f}"
        )
    return "\n".join(lines)
