"""Plain-text rendering of reproduced figures and tables.

The benchmark drivers print each :class:`FigureResult` through these
helpers so ``pytest benchmarks/ --benchmark-only`` emits the same rows
and series the paper reports, alongside the timing data.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.harness.figures import FigureResult


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(result: FigureResult, max_rows: int | None = None) -> str:
    """Render a FigureResult as an aligned monospace table."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    header = result.columns
    body = [[_fmt(row.get(col, "")) for col in header] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in body)) if body else len(col)
        for i, col in enumerate(header)
    ]
    lines = [
        f"== {result.title} ==",
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for line in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    if max_rows is not None and len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    if result.summary:
        lines.append("summary:")
        for key, value in result.summary.items():
            lines.append(f"  {key} = {_fmt(value)}")
    if result.notes:
        lines.append(f"paper: {result.notes}")
    if result.sampled:
        lines.append(f"sampling: {result.sampled}")
    return "\n".join(lines)


def print_figure(result: FigureResult, max_rows: int | None = None) -> None:
    print()
    print(render_table(result, max_rows=max_rows))


def _flatten_numeric(record: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path view of a bench record's numeric leaves."""
    out: dict[str, float] = {}
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(_flatten_numeric(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = value
    return out


def render_bench_report(data: dict, title: str) -> str:
    """Render one ``BENCH_*.json`` trajectory as an aligned text table.

    A *record* is any top-level entry carrying a ``python`` stamp (the
    benchmark script writes one per ``--label``: before/after for the
    runner file, baseline/latest for the compression file). Each numeric
    leaf becomes a row with one column per record, in file order, plus a
    derived trend column: wall-clock rows (``*seconds``) get the
    first-to-last speedup, so the before/after trajectory reads directly
    as "how much faster did this path get". Sections with more than one
    wall-clock row additionally get a ``<section> (geomean)`` summary
    row — the per-section trajectory at a glance, robust to one point
    moving against the trend.
    """
    labels = [
        key for key, value in data.items()
        if isinstance(value, dict) and "python" in value
    ]
    if not labels:
        return f"== {title} == (no benchmark records)"
    flat = {
        label: _flatten_numeric(
            {k: v for k, v in data[label].items() if k != "python"}
        )
        for label in labels
    }
    metrics: list[str] = []
    for label in labels:
        for key in flat[label]:
            if key not in metrics:
                metrics.append(key)

    header = ["metric", *labels, "trend"]
    body = []
    section_trends: dict[str, list[float]] = {}
    for metric in metrics:
        row = [metric]
        values = []
        for label in labels:
            value = flat[label].get(metric)
            row.append("" if value is None else _fmt(value))
            if value is not None:
                values.append(value)
        trend = ""
        if metric.endswith("seconds") and len(values) >= 2 and values[-1]:
            ratio = values[0] / values[-1]
            trend = f"{ratio:.2f}x"
            section = metric.split(".", 1)[0]
            section_trends.setdefault(section, []).append(ratio)
        row.append(trend)
        body.append(row)
    for section, ratios in section_trends.items():
        if len(ratios) < 2:
            continue
        gm = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        body.append(
            [f"{section} (geomean)", *[""] * len(labels), f"{gm:.2f}x"]
        )

    widths = [
        max(len(header[i]), *(len(row[i]) for row in body))
        for i in range(len(header))
    ]
    lines = [
        f"== {title} ==",
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip()
        )
    return "\n".join(lines)


def render_bars(
    result: FigureResult,
    value_column: str,
    label_column: str = "app",
    width: int = 40,
    reference: float | None = None,
) -> str:
    """Render one column of a FigureResult as a horizontal bar chart.

    ``reference`` draws a marker at that value (e.g. 1.0 for speedups).
    """
    rows = [r for r in result.rows if value_column in r]
    if not rows:
        return f"== {result.title} == (no data for {value_column!r})"
    peak = max(float(r[value_column]) for r in rows)
    if peak <= 0:
        peak = 1.0
    lines = [f"== {result.title} — {value_column} =="]
    for row in rows:
        value = float(row[value_column])
        filled = int(round(width * value / peak))
        bar = "#" * filled
        if reference is not None and 0 < reference <= peak:
            mark = int(round(width * reference / peak))
            if mark < width:
                bar = (bar + " " * width)[:width]
                bar = bar[:mark] + "|" + bar[mark + 1:]
        lines.append(
            f"  {str(row[label_column]):>10s} {bar:<{width}s} {value:.3f}"
        )
    return "\n".join(lines)
