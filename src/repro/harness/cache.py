"""Persistent, content-addressed run cache.

Every ``(app, design, config, scale, params)`` run of the simulator is
fully deterministic, so its :class:`~repro.harness.runner.RunResult` can
be reused across processes and CI runs. The cache keys each run by a
SHA-256 over

* the canonical ``repr`` of the run spec (all spec components are frozen
  dataclasses with stable reprs), and
* a *version stamp*: a hash of the source of every module in the
  ``repro`` package.

The stamp makes invalidation automatic — any change to the simulator,
the compressors, the workload generators or the energy model produces a
different stamp, so stale entries are simply never looked up again
(``repro cache clear`` removes them from disk).

Layout: one pickle per run under ``<root>/<stamp-prefix>/<key>.pkl``.
Writes are atomic (temp file + rename), so concurrent workers of the
parallel engine can share one cache directory safely.

Knobs (also documented in README.md):

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-caba``).
* ``REPRO_CACHE=0`` — disable the persistent cache entirely.
* ``REPRO_CACHE_TMP_AGE`` — minimum age in seconds before ``sweep_tmp``
  may remove a ``.tmp`` file (default 3600).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path

#: Bump manually on cache-format changes (key scheme, pickle layout).
#: 2: stamp hashes package-relative paths, not bare file names (a module
#:    moved between subpackages with unchanged content now restamps).
CACHE_FORMAT = 2

_version_stamp: str | None = None


def compute_stamp(package_root: Path) -> str:
    """Stamp of one package tree: every ``*.py`` hashed with its
    package-relative posix path. Bare names would make each
    ``__init__.py`` contribute identically and miss moves between
    subpackages."""
    digest = hashlib.sha256(f"format:{CACHE_FORMAT}".encode())
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root.parent).as_posix()
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def version_stamp() -> str:
    """Hash of the whole ``repro`` package source (computed once)."""
    global _version_stamp
    if _version_stamp is None:
        package_root = Path(__file__).resolve().parent.parent
        _version_stamp = compute_stamp(package_root)
    return _version_stamp


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


#: Minimum age (seconds) a ``.tmp`` file must reach before ``sweep_tmp``
#: may remove it. An in-flight atomic write is only milliseconds old;
#: an orphan from a killed worker ages indefinitely, so an hour cleanly
#: separates the two.
DEFAULT_TMP_AGE = 3600.0


def default_tmp_age() -> float:
    """Sweep age threshold from ``REPRO_CACHE_TMP_AGE`` (seconds)."""
    env = os.environ.get("REPRO_CACHE_TMP_AGE", "")
    try:
        value = float(env)
    except ValueError:
        return DEFAULT_TMP_AGE
    return max(0.0, value)


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-caba"


class RunCache:
    """On-disk store of raw-free :class:`RunResult` pickles."""

    def __init__(self, root: Path | str | None = None,
                 stamp: str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stamp = stamp if stamp is not None else version_stamp()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(self, spec) -> str:
        """Content address of one run spec under the current stamp."""
        payload = f"{self.stamp}|{spec.canonical()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / self.stamp / f"{key}.pkl"

    def _plane_path(self, key: str) -> Path:
        """Planes live in a subdirectory so ``info`` can report them
        separately from run entries."""
        return self.root / self.stamp / "planes" / f"{key}.pkl"

    def trace_dir(self) -> Path:
        """Default output directory for exported trace artifacts
        (``repro trace``); lives under the stamp so stale traces are
        reported and cleared alongside stale run entries."""
        return self.root / self.stamp / "traces"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, spec):
        """Cached RunResult for ``spec``, or None."""
        path = self._path(self.key(spec))
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            # A truncated or corrupted entry must read as a miss, never
            # take the run down; pickle.load on garbage bytes can raise
            # nearly any exception type, not just PickleError.
            return None

    def put(self, spec, result, overwrite: bool = False) -> None:
        """Persist ``result`` (which must not carry ``raw`` state).

        Existing entries are left untouched unless ``overwrite`` is set
        (used when a traced recompute carries strictly more data than
        the untraced entry it replaces).
        """
        if result.raw is not None:
            raise ValueError("refusing to persist a RunResult with raw "
                             "simulation state; strip it first")
        self._write_atomic(self._path(self.key(spec)), result,
                           overwrite=overwrite)

    def get_plane(self, key: str):
        """Cached :class:`CompressionPlane` for ``key``, or None.

        Plane keys are already content addresses (see
        :func:`repro.memory.plane.plane_key`); combined with the
        stamp directory they invalidate on any source change.
        """
        try:
            with open(self._plane_path(key), "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None

    def put_plane(self, key: str, plane) -> None:
        """Persist one compression plane under the current stamp."""
        self._write_atomic(self._plane_path(key), plane)

    def _write_atomic(self, path: Path, obj, overwrite: bool = False) -> None:
        if not overwrite and path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Entry counts and sizes: run, plane and trace entries are
        reported separately, each split current-stamp vs. stale.

        Robust against cache directories written by older versions (or
        by hand): unexpected files are counted by where they sit, never
        crashed on — a cache dir predating the planes/traces layout, a
        leftover ``.tmp`` from a killed worker, or a file race (deleted
        between listing and ``stat``) all read as best-effort numbers.
        """
        current = stale = 0
        plane_current = plane_stale = 0
        trace_current = trace_stale = 0
        tmp_entries = tmp_young = 0
        total_bytes = plane_bytes = trace_bytes = tmp_bytes = 0
        tmp_age = default_tmp_age()
        now = time.time()
        if self.root.exists():
            for path in self.root.rglob("*"):
                try:
                    if not path.is_file():
                        continue
                    stat = path.stat()
                    size = stat.st_size
                except OSError:
                    continue  # racing deletion / unreadable entry
                if path.suffix == ".tmp":
                    # Leftover atomic-write temp from a killed worker:
                    # never a real plane/trace/run entry, whatever
                    # directory it sits in. Files younger than the
                    # sweep threshold may still belong to a live
                    # worker, so 'cache sweep' skips them.
                    tmp_entries += 1
                    tmp_bytes += size
                    if now - stat.st_mtime < tmp_age:
                        tmp_young += 1
                    continue
                try:
                    in_stamp = (
                        path.relative_to(self.root).parts[0] == self.stamp
                    )
                except (ValueError, IndexError):
                    in_stamp = False
                parent = path.parent.name
                if parent == "planes":
                    plane_bytes += size
                    if in_stamp:
                        plane_current += 1
                    else:
                        plane_stale += 1
                elif parent == "traces":
                    trace_bytes += size
                    if in_stamp:
                        trace_current += 1
                    else:
                        trace_stale += 1
                elif path.suffix == ".pkl":
                    total_bytes += size
                    if in_stamp:
                        current += 1
                    else:
                        stale += 1
        return {
            "root": str(self.root),
            "stamp": self.stamp,
            "entries": current,
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "plane_entries": plane_current,
            "stale_plane_entries": plane_stale,
            "plane_bytes": plane_bytes,
            "trace_entries": trace_current,
            "stale_trace_entries": trace_stale,
            "trace_bytes": trace_bytes,
            "tmp_entries": tmp_entries,
            "tmp_bytes": tmp_bytes,
            #: Tmp files younger than the sweep age threshold: possible
            #: in-flight atomic writes that ``sweep_tmp`` will skip.
            "tmp_young_entries": tmp_young,
            "tmp_age_threshold": tmp_age,
        }

    def sweep_tmp(self, max_age: float | None = None) -> int:
        """Remove leftover ``.tmp`` files (interrupted atomic writes
        from killed workers, any stamp); returns the number removed.

        Only files older than ``max_age`` seconds (mtime-based; default
        ``REPRO_CACHE_TMP_AGE``, 1 hour) are removed. A younger temp
        file is an atomic write a live worker is about to
        ``os.replace`` — sweeping it would make that replace fail and
        cost a re-simulation — so it is skipped and reported as a young
        entry by :meth:`info`.
        """
        if max_age is None:
            max_age = default_tmp_age()
        removed = 0
        if not self.root.exists():
            return 0
        now = time.time()
        for path in self.root.rglob("*.tmp"):
            try:
                stat = path.stat()
                if not path.is_file():
                    continue
                if now - stat.st_mtime < max_age:
                    continue  # young: likely an in-flight atomic write
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every cached entry and trace artifact (all stamps);
        returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        subdirs = [p for p in self.root.rglob("*") if p.is_dir()]
        for sub in sorted(subdirs, key=lambda p: len(p.parts), reverse=True):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed


_default_cache: RunCache | None = None


def get_cache() -> RunCache | None:
    """Process-wide cache handle, or None when disabled."""
    global _default_cache
    if not cache_enabled():
        return None
    if _default_cache is None:
        _default_cache = RunCache()
    return _default_cache


def reset_cache_handle() -> None:
    """Drop the memoized handle (re-reads env vars on next use)."""
    global _default_cache
    _default_cache = None
