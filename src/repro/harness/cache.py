"""Persistent, content-addressed run cache with pluggable backends.

Every ``(app, design, config, scale, params)`` run of the simulator is
fully deterministic, so its :class:`~repro.harness.runner.RunResult` can
be reused across processes and CI runs. The cache keys each run by a
SHA-256 over

* the canonical ``repr`` of the run spec (all spec components are frozen
  dataclasses with stable reprs), and
* a *version stamp*: a hash of the source of every module in the
  ``repro`` package.

The stamp makes invalidation automatic — any change to the simulator,
the compressors, the workload generators or the energy model produces a
different stamp, so stale entries are simply never looked up again
(``repro cache clear`` removes them from disk).

Storage is a :class:`CacheBackend` — ``get/put/has/list/sweep`` over
opaque ``(kind, key)`` pairs, where ``kind`` is one of ``runs``,
``planes`` or ``traces``. Three implementations:

* :class:`LocalDirBackend` (default) — one pickle per run under
  ``<root>/<stamp>/<key>.pkl`` (planes and traces in subdirectories).
  Writes are atomic (temp file + rename), so concurrent workers of the
  parallel engine can share one cache directory safely.
* :class:`SharedFSBackend` — byte-identical layout plus fsync-before-
  rename durability, for N writers on a shared/network filesystem.
* :class:`HTTPCacheBackend` — reads/writes through the sweep server's
  ``/v1/cache/{kind}/{key}`` endpoints so distributed-fabric workers
  share the coordinator's cache (a spec any node already paid for is
  never re-simulated). Reads degrade to misses on network errors;
  writes raise :class:`CacheBackendError`.

Knobs (also documented in README.md):

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-caba``).
* ``REPRO_CACHE=0`` — disable the persistent cache entirely.
* ``REPRO_CACHE_BACKEND`` — ``local`` (default), ``shared-fs``, or an
  ``http://host:port`` coordinator URL.
* ``REPRO_CACHE_TMP_AGE`` — minimum age in seconds before ``sweep_tmp``
  may remove a ``.tmp`` file (default 3600).
"""

from __future__ import annotations

import hashlib
import http.client
import os
import pickle
import re
import tempfile
import time
from pathlib import Path
from urllib.parse import urlsplit

#: Bump manually on cache-format changes (key scheme, pickle layout).
#: 2: stamp hashes package-relative paths, not bare file names (a module
#:    moved between subpackages with unchanged content now restamps).
CACHE_FORMAT = 2

_version_stamp: str | None = None


def compute_stamp(package_root: Path) -> str:
    """Stamp of one package tree: every ``*.py`` hashed with its
    package-relative posix path. Bare names would make each
    ``__init__.py`` contribute identically and miss moves between
    subpackages."""
    digest = hashlib.sha256(f"format:{CACHE_FORMAT}".encode())
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root.parent).as_posix()
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def version_stamp() -> str:
    """Hash of the whole ``repro`` package source (computed once)."""
    global _version_stamp
    if _version_stamp is None:
        package_root = Path(__file__).resolve().parent.parent
        _version_stamp = compute_stamp(package_root)
    return _version_stamp


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


#: Minimum age (seconds) a ``.tmp`` file must reach before ``sweep_tmp``
#: may remove it. An in-flight atomic write is only milliseconds old;
#: an orphan from a killed worker ages indefinitely, so an hour cleanly
#: separates the two.
DEFAULT_TMP_AGE = 3600.0


def default_tmp_age() -> float:
    """Sweep age threshold from ``REPRO_CACHE_TMP_AGE`` (seconds)."""
    env = os.environ.get("REPRO_CACHE_TMP_AGE", "")
    try:
        value = float(env)
    except ValueError:
        return DEFAULT_TMP_AGE
    return max(0.0, value)


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-caba"


class CacheBackendError(RuntimeError):
    """A cache backend could not persist an entry (e.g. the coordinator
    is unreachable). Reads never raise this — a failed read is a miss —
    but a failed write must surface, or a fabric worker would complete
    a lease whose result nobody can ever fetch."""


#: Entry namespaces every backend must store independently. ``runs``
#: and ``planes`` keys are hex content addresses; ``traces`` keys are
#: artifact file names (``<label>.json`` etc.).
CACHE_KINDS = ("runs", "planes", "traces")

#: Conservative key shape shared by all kinds: content-address digests
#: and trace artifact names both match, path traversal cannot.
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def valid_cache_key(kind: str, key: str) -> bool:
    """True when ``(kind, key)`` is a well-formed cache address. The
    HTTP endpoints validate with this before touching the filesystem."""
    return kind in CACHE_KINDS and bool(_KEY_RE.match(key)) \
        and ".." not in key and len(key) <= 255


class CacheBackend:
    """Opaque ``(kind, key) -> bytes`` store under one version stamp.

    :class:`RunCache` owns keying and (de)serialization; backends only
    move bytes. The contract every implementation must honour:

    * ``get`` returns ``None`` for missing entries *and* on any read
      error — a backend never turns a damaged or unreachable entry
      into an exception (the caller re-simulates instead).
    * ``put`` is atomic (readers never observe a partial entry) and
      keeps an existing entry unless ``overwrite`` is set. Write
      failures raise :class:`CacheBackendError`.
    * ``list`` returns keys, not paths, and may be approximate during
      concurrent writes.
    * ``sweep`` reclaims backend-private debris (e.g. orphaned atomic
      temp files) and returns how many items it removed.
    """

    name = "abstract"

    def get(self, kind: str, key: str) -> bytes | None:
        raise NotImplementedError

    def put(self, kind: str, key: str, data: bytes,
            overwrite: bool = False) -> None:
        raise NotImplementedError

    def has(self, kind: str, key: str) -> bool:
        return self.get(kind, key) is not None

    def list(self, kind: str) -> list[str]:
        raise NotImplementedError

    def sweep(self, max_age: float | None = None) -> int:
        return 0


class LocalDirBackend(CacheBackend):
    """The historical on-disk layout, unchanged byte for byte:
    ``<root>/<stamp>/<key>.pkl`` for runs, ``planes/`` and ``traces/``
    subdirectories for the other kinds. Atomic temp-file + rename
    writes keep concurrent writers of the parallel engine safe."""

    name = "local"
    #: Shared-FS subclass flips this to fsync before the rename.
    durable = False

    def __init__(self, root: Path | str, stamp: str) -> None:
        self.root = Path(root)
        self.stamp = stamp

    def path(self, kind: str, key: str) -> Path:
        base = self.root / self.stamp
        if kind == "runs":
            return base / f"{key}.pkl"
        if kind == "planes":
            return base / "planes" / f"{key}.pkl"
        if kind == "traces":
            # Trace artifacts keep their full file names (the exporter
            # writes .json/.csv/.chrome.json siblings per label).
            return base / "traces" / key
        raise ValueError(f"unknown cache kind {kind!r}")

    def get(self, kind: str, key: str) -> bytes | None:
        try:
            return self.path(kind, key).read_bytes()
        except OSError:
            return None

    def put(self, kind: str, key: str, data: bytes,
            overwrite: bool = False) -> None:
        path = self.path(kind, key)
        if not overwrite and path.exists():
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError as exc:
            raise CacheBackendError(f"cache write failed: {exc}") from exc
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                if self.durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            if self.durable:
                self._fsync_dir(path.parent)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise CacheBackendError(f"cache write failed: {exc}") from exc
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Flush the directory entry so a crashed host cannot forget
        the rename (no-op on filesystems without dir fds)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def has(self, kind: str, key: str) -> bool:
        return self.path(kind, key).is_file()

    def list(self, kind: str) -> list[str]:
        base = self.path(kind, "x").parent
        try:
            names = sorted(p.name for p in base.iterdir()
                           if p.is_file() and p.suffix != ".tmp")
        except OSError:
            return []
        if kind == "traces":
            return names
        return [n[:-4] for n in names if n.endswith(".pkl")]

    def sweep(self, max_age: float | None = None) -> int:
        """Remove leftover ``.tmp`` files (interrupted atomic writes
        from killed workers, any stamp) older than ``max_age``."""
        if max_age is None:
            max_age = default_tmp_age()
        removed = 0
        if not self.root.exists():
            return 0
        now = time.time()
        for path in self.root.rglob("*.tmp"):
            try:
                stat = path.stat()
                if not path.is_file():
                    continue
                if now - stat.st_mtime < max_age:
                    continue  # young: likely an in-flight atomic write
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class SharedFSBackend(LocalDirBackend):
    """Same layout as :class:`LocalDirBackend`, hardened for many
    writers on a shared (e.g. network) filesystem: file contents and
    the directory entry are fsynced around the atomic rename, so a
    node crash cannot leave another node reading a hole where a
    completed entry used to be."""

    name = "shared-fs"
    durable = True


class HTTPCacheBackend(CacheBackend):
    """Entries live on a sweep server, addressed as
    ``/v1/cache/{kind}/{key}``. Used by fabric workers so every node
    shares the coordinator's content-addressed cache.

    Stateless per request (one ``http.client`` connection each) —
    worker processes fork/thread freely without sharing sockets.
    Implemented on ``http.client`` directly rather than
    :mod:`repro.service.client` so the harness layer keeps zero
    service-layer imports.
    """

    name = "http"

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        if "//" not in url:
            url = f"http://{url}"
        parts = urlsplit(url)
        if parts.scheme != "http":
            raise ValueError(f"unsupported cache URL scheme: {url!r}")
        self.url = url
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/octet-stream"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def get(self, kind: str, key: str) -> bytes | None:
        try:
            status, data = self._request("GET", f"/v1/cache/{kind}/{key}")
        except OSError:
            return None  # unreachable coordinator reads as a miss
        return data if status == 200 else None

    def put(self, kind: str, key: str, data: bytes,
            overwrite: bool = False) -> None:
        path = f"/v1/cache/{kind}/{key}"
        if overwrite:
            path += "?overwrite=1"
        try:
            status, body = self._request("PUT", path, body=data)
        except OSError as exc:
            raise CacheBackendError(
                f"cache PUT to {self.url} failed: {exc}") from exc
        if status != 200:
            raise CacheBackendError(
                f"cache PUT {kind}/{key} rejected: HTTP {status} "
                f"{body[:200]!r}")

    def has(self, kind: str, key: str) -> bool:
        try:
            status, _ = self._request("HEAD", f"/v1/cache/{kind}/{key}")
        except OSError:
            return False
        return status == 200

    def list(self, kind: str) -> list[str]:
        try:
            status, data = self._request("GET", f"/v1/cache/{kind}")
        except OSError:
            return []
        if status != 200:
            return []
        try:
            import json
            keys = json.loads(data).get("keys", [])
            return [k for k in keys if isinstance(k, str)]
        except Exception:
            return []


def backend_from_env(root: Path, stamp: str) -> CacheBackend:
    """Backend selected by ``REPRO_CACHE_BACKEND`` (default: the
    historical local-dir layout rooted at ``root``)."""
    value = os.environ.get("REPRO_CACHE_BACKEND", "").strip()
    if not value or value == "local":
        return LocalDirBackend(root, stamp)
    if value in ("shared-fs", "shared_fs", "sharedfs"):
        return SharedFSBackend(root, stamp)
    if value.startswith("http"):
        return HTTPCacheBackend(value)
    raise ValueError(
        f"unknown REPRO_CACHE_BACKEND {value!r} "
        "(expected 'local', 'shared-fs', or an http://host:port URL)")


class RunCache:
    """Keyed, pickled store of raw-free :class:`RunResult` entries over
    a :class:`CacheBackend` (local directory unless configured)."""

    def __init__(self, root: Path | str | None = None,
                 stamp: str | None = None,
                 backend: CacheBackend | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stamp = stamp if stamp is not None else version_stamp()
        self.backend = backend if backend is not None \
            else backend_from_env(self.root, self.stamp)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(self, spec) -> str:
        """Content address of one run spec under the current stamp."""
        payload = f"{self.stamp}|{spec.canonical()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        """Filesystem location of a run entry (file-backed layouts;
        pinned by the compat tests and used by maintenance walks)."""
        return self.root / self.stamp / f"{key}.pkl"

    def _plane_path(self, key: str) -> Path:
        """Planes live in a subdirectory so ``info`` can report them
        separately from run entries."""
        return self.root / self.stamp / "planes" / f"{key}.pkl"

    def trace_dir(self) -> Path:
        """Default output directory for exported trace artifacts
        (``repro trace``); lives under the stamp so stale traces are
        reported and cleared alongside stale run entries."""
        return self.root / self.stamp / "traces"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _load(self, kind: str, key: str):
        """Fetch-and-unpickle. A truncated or corrupted entry must read
        as a miss, never take the run down; ``pickle.loads`` on garbage
        bytes can raise nearly any exception type, not just
        PickleError — so the catch stays this broad deliberately."""
        data = self.backend.get(kind, key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            return None

    def get(self, spec):
        """Cached RunResult for ``spec``, or None."""
        return self._load("runs", self.key(spec))

    def put(self, spec, result, overwrite: bool = False) -> None:
        """Persist ``result`` (which must not carry ``raw`` state).

        Existing entries are left untouched unless ``overwrite`` is set
        (used when a traced recompute carries strictly more data than
        the untraced entry it replaces).
        """
        if result.raw is not None:
            raise ValueError("refusing to persist a RunResult with raw "
                             "simulation state; strip it first")
        data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self.backend.put("runs", self.key(spec), data, overwrite=overwrite)

    def get_plane(self, key: str):
        """Cached :class:`CompressionPlane` for ``key``, or None.

        Plane keys are already content addresses (see
        :func:`repro.memory.plane.plane_key`); combined with the
        stamp directory they invalidate on any source change.
        """
        return self._load("planes", key)

    def put_plane(self, key: str, plane) -> None:
        """Persist one compression plane under the current stamp."""
        data = pickle.dumps(plane, protocol=pickle.HIGHEST_PROTOCOL)
        self.backend.put("planes", key, data)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Entry counts and sizes: run, plane and trace entries are
        reported separately, each split current-stamp vs. stale.

        Robust against cache directories written by older versions (or
        by hand): unexpected files are counted by where they sit, never
        crashed on — a cache dir predating the planes/traces layout, a
        leftover ``.tmp`` from a killed worker, or a file race (deleted
        between listing and ``stat``) all read as best-effort numbers.
        """
        current = stale = 0
        plane_current = plane_stale = 0
        trace_current = trace_stale = 0
        tmp_entries = tmp_young = 0
        total_bytes = plane_bytes = trace_bytes = tmp_bytes = 0
        tmp_age = default_tmp_age()
        now = time.time()
        if self.root.exists():
            for path in self.root.rglob("*"):
                try:
                    if not path.is_file():
                        continue
                    stat = path.stat()
                    size = stat.st_size
                except OSError:
                    continue  # racing deletion / unreadable entry
                if path.suffix == ".tmp":
                    # Leftover atomic-write temp from a killed worker:
                    # never a real plane/trace/run entry, whatever
                    # directory it sits in. Files younger than the
                    # sweep threshold may still belong to a live
                    # worker, so 'cache sweep' skips them.
                    tmp_entries += 1
                    tmp_bytes += size
                    if now - stat.st_mtime < tmp_age:
                        tmp_young += 1
                    continue
                try:
                    in_stamp = (
                        path.relative_to(self.root).parts[0] == self.stamp
                    )
                except (ValueError, IndexError):
                    in_stamp = False
                parent = path.parent.name
                if parent == "planes":
                    plane_bytes += size
                    if in_stamp:
                        plane_current += 1
                    else:
                        plane_stale += 1
                elif parent == "traces":
                    trace_bytes += size
                    if in_stamp:
                        trace_current += 1
                    else:
                        trace_stale += 1
                elif path.suffix == ".pkl":
                    total_bytes += size
                    if in_stamp:
                        current += 1
                    else:
                        stale += 1
        return {
            "root": str(self.root),
            "stamp": self.stamp,
            "backend": self.backend.name,
            "entries": current,
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "plane_entries": plane_current,
            "stale_plane_entries": plane_stale,
            "plane_bytes": plane_bytes,
            "trace_entries": trace_current,
            "stale_trace_entries": trace_stale,
            "trace_bytes": trace_bytes,
            "tmp_entries": tmp_entries,
            "tmp_bytes": tmp_bytes,
            #: Tmp files younger than the sweep age threshold: possible
            #: in-flight atomic writes that ``sweep_tmp`` will skip.
            "tmp_young_entries": tmp_young,
            "tmp_age_threshold": tmp_age,
        }

    def sweep_tmp(self, max_age: float | None = None) -> int:
        """Remove leftover ``.tmp`` files (interrupted atomic writes
        from killed workers, any stamp); returns the number removed.

        Only files older than ``max_age`` seconds (mtime-based; default
        ``REPRO_CACHE_TMP_AGE``, 1 hour) are removed. A younger temp
        file is an atomic write a live worker is about to
        ``os.replace`` — sweeping it would make that replace fail and
        cost a re-simulation — so it is skipped and reported as a young
        entry by :meth:`info`.
        """
        return self.backend.sweep(max_age)

    def clear(self) -> int:
        """Delete every cached entry and trace artifact (all stamps);
        returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        subdirs = [p for p in self.root.rglob("*") if p.is_dir()]
        for sub in sorted(subdirs, key=lambda p: len(p.parts), reverse=True):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed


_default_cache: RunCache | None = None


def get_cache() -> RunCache | None:
    """Process-wide cache handle, or None when disabled."""
    global _default_cache
    if not cache_enabled():
        return None
    if _default_cache is None:
        _default_cache = RunCache()
    return _default_cache


def reset_cache_handle() -> None:
    """Drop the memoized handle (re-reads env vars on next use)."""
    global _default_cache
    _default_cache = None
