"""CABA: Core-Assisted Bottleneck Acceleration in GPUs (ISCA 2015).

A full-system reproduction of Vijaykumar et al.'s assist-warp framework
for flexible data compression in GPUs, built on a from-scratch
cycle-level GPU simulator.

Quickstart::

    from repro import run_app, designs

    base = run_app("PVC", designs.base())
    caba = run_app("PVC", designs.caba("bdi"))
    print(f"speedup: {caba.ipc / base.ipc:.2f}x")

Packages:
    - :mod:`repro.compression` -- BDI / FPC / C-Pack / BestOfAll algorithms
    - :mod:`repro.gpu` -- SIMT cores, warp schedulers, the simulator
    - :mod:`repro.memory` -- L1/L2 caches, crossbar, GDDR5, MD cache
    - :mod:`repro.core` -- the CABA framework (AWS/AWC/AWT/AWB, subroutines)
    - :mod:`repro.workloads` -- the 27-application synthetic pool
    - :mod:`repro.energy` -- activity-based energy model
    - :mod:`repro.harness` -- per-figure experiment harnesses
"""

from repro import design as designs
from repro.design import DesignPoint
from repro.gpu.config import GPUConfig
from repro.harness.runner import RunResult, clear_caches, geomean, run_app, speedup
from repro.workloads.apps import APPLICATIONS, COMPRESSION_APPS, FIGURE1_APPS

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS",
    "COMPRESSION_APPS",
    "DesignPoint",
    "FIGURE1_APPS",
    "GPUConfig",
    "RunResult",
    "clear_caches",
    "designs",
    "geomean",
    "run_app",
    "speedup",
]
