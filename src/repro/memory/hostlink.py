"""Capacity-mode device-memory model: placement plan + host link.

Bandwidth mode (the paper's flagship use case) assumes every line of the
working set is resident in device DRAM. Capacity mode — motivated by
Buddy Compression — instead checks the app's *stored* footprint against
a configurable device-memory budget: lines are placed in ascending
address order, each charged its stored size (compressed when the design
point compresses DRAM), and lines that do not fit *spill* to host
memory. Accesses to spilled lines bypass the GDDR5 controllers and
travel a :class:`HostLink` — a single reservation timeline with a long
fixed latency and a fraction of one DRAM channel's bandwidth, the
PCIe/NVLink regime — so capacity pressure turns into real latency and
bandwidth penalties inside the timing model rather than a footnote.

The placement is deterministic and computed once per run from the same
compression plane the hierarchy reads, so the capacity figures
(effective-capacity ratio, spill traffic) are measured on the exact
bytes the simulator moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.memory.timeline import Timeline


@dataclass(frozen=True)
class CapacityConfig:
    """Knobs of the capacity model (content-addressed via RunSpec).

    device_bytes: device-memory budget the stored footprint must fit in.
    host_latency: fixed one-way cycles added to every host transfer
        (PCIe/NVLink round-trip seen from the memory partition).
    host_bw_scale: host-link bandwidth as a fraction of one DRAM
        channel (0.25 ~= a 16 GB/s link against a 64 GB/s channel).
    """

    device_bytes: int
    host_latency: float = 600.0
    host_bw_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.device_bytes <= 0:
            raise ValueError("device_bytes must be positive")
        if self.host_latency < 0:
            raise ValueError("host_latency must be >= 0")
        if not 0.0 < self.host_bw_scale <= 1.0:
            raise ValueError("host_bw_scale must be in (0, 1]")


@dataclass(frozen=True)
class CapacityPlan:
    """Deterministic placement of an app's lines under a budget."""

    #: Global line addresses that did not fit on-device.
    spilled: frozenset[int]
    total_lines: int
    device_bytes: int
    #: Stored bytes actually placed on-device.
    resident_bytes: int
    #: Uncompressed footprint (total_lines * line_size).
    footprint_bytes: int
    #: Total stored footprint (what placement had to fit).
    stored_bytes: int
    line_size: int

    @property
    def spill_fraction(self) -> float:
        if not self.total_lines:
            return 0.0
        return len(self.spilled) / self.total_lines

    @property
    def effective_capacity_ratio(self) -> float:
        """Uncompressed bytes the budget effectively holds, per budget
        byte (Buddy Compression's capacity metric; 1.0 = no gain)."""
        resident_lines = self.total_lines - len(self.spilled)
        return (resident_lines * self.line_size) / self.device_bytes


def plan_capacity(
    extents: Iterable[tuple[int, int]],
    line_size: int,
    stored_size_of: Callable[[int], int],
    config: CapacityConfig,
) -> CapacityPlan:
    """Place every line of ``extents`` (ascending address order) until
    the budget is exhausted; the rest spill.

    ``stored_size_of`` maps a line address to its stored size — the
    plane-backed compressed size when the design compresses DRAM, the
    full line size otherwise.
    """
    spilled: list[int] = []
    used = 0
    total_lines = 0
    stored_total = 0
    for start, length in sorted(extents):
        for line in range(start, start + length):
            size = stored_size_of(line)
            total_lines += 1
            stored_total += size
            if used + size <= config.device_bytes:
                used += size
            else:
                spilled.append(line)
    return CapacityPlan(
        spilled=frozenset(spilled),
        total_lines=total_lines,
        device_bytes=config.device_bytes,
        resident_bytes=used,
        footprint_bytes=total_lines * line_size,
        stored_bytes=stored_total,
        line_size=line_size,
    )


@dataclass(frozen=True)
class CapacityModel:
    """What the hierarchy needs: the knobs plus the computed plan."""

    config: CapacityConfig
    plan: CapacityPlan


@dataclass
class HostLinkStats:
    reads: int = 0
    writes: int = 0
    read_bursts: int = 0
    write_bursts: int = 0

    @property
    def total_bursts(self) -> int:
        return self.read_bursts + self.write_bursts


class HostLink:
    """The host interface: one serial bus behind a long fixed latency.

    Mirrors the DRAM controller's conservation contract: every burst
    reserves exactly ``burst_cycles`` on the bus, so
    ``stats.total_bursts * burst_cycles == bus.busy_time`` holds by
    construction (checked by ``repro check``).

    ``burst_cycles`` is quantized with ``ceil`` at construction: a
    non-divisor ``host_bw_scale`` (e.g. 0.3) would otherwise yield
    fractional burst cycles, whose repeated float accumulation drifts
    the conservation identity and charges sub-cycle bus occupancy the
    integer-cycle core never observes. Rounding up keeps the link
    conservatively no faster than the configured fraction.
    """

    def __init__(self, config: CapacityConfig, dram_burst_cycles: float) -> None:
        self.bus = Timeline()
        self.latency = config.host_latency
        self.burst_cycles = math.ceil(
            dram_burst_cycles / config.host_bw_scale
        )
        self.stats = HostLinkStats()

    def transfer(self, at: float, bursts: int, is_write: bool) -> float:
        """Move ``bursts`` line bursts across the link; returns the
        completion time of the transfer."""
        duration = bursts * self.burst_cycles
        start = self.bus.reserve(at + self.latency, duration)
        if is_write:
            self.stats.writes += 1
            self.stats.write_bursts += bursts
        else:
            self.stats.reads += 1
            self.stats.read_bursts += bursts
        return start + duration

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.bus.busy_time / elapsed
