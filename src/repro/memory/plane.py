"""Precomputed compression planes.

The paper's bandwidth-compression results only need the *size* and
*burst count* of each compressed line to model timing — the bytes
themselves matter only when decompression correctness is under test.
A :class:`CompressionPlane` exploits that split: the application's whole
memory image is batch-compressed once per algorithm (through the
whole-image kernels behind ``CompressionAlgorithm.size_table``) into a
per-line table of ``(stored_size, bursts, encoding)`` plus the
assist-warp cycle cost of each encoding seen in the image. The hot path
then does O(1) lookups instead of calling ``compress()`` per access.

Planes are immutable and content-addressed by
``(image parameters, algorithm, line size)`` — see :func:`plane_key` —
so one plane is shared across every design of a sweep in-process
(``harness/runner.py`` memo) and across sessions via the persistent
cache (``harness/cache.py``). Store mutations never touch a plane: the
per-run :class:`~repro.memory.image.MemoryImage` keeps its private
override map and consults the plane only for baseline (unmutated) line
contents.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Mapping, Sequence

from repro.compression.base import CompressionAlgorithm, bursts_for
from repro.compression.bestofall import compose_size_tables
from repro.memory.image import LineInfo

#: Bump when plane layout or the batch kernels change in a way the
#: version stamp of the persistent cache would not capture on its own.
PLANE_FORMAT = 1


class CompressionPlane:
    """Immutable per-line ``(size, bursts, encoding)`` table of one image.

    Attributes:
        algorithm_name: Name of the algorithm the plane was built with.
        line_size: Uncompressed line size in bytes.
        burst_bytes: DRAM burst granularity used for the burst column.
        key: Content-address of the plane (see :func:`plane_key`).
        table: ``line -> (stored_size, bursts, encoding)``.
        assist_cycles: Assist-warp decompression subroutine length in
            instructions, per encoding present in the image.
    """

    __slots__ = (
        "algorithm_name",
        "line_size",
        "burst_bytes",
        "key",
        "table",
        "assist_cycles",
    )

    def __init__(
        self,
        algorithm_name: str,
        line_size: int,
        burst_bytes: int,
        key: str,
        table: dict[int, tuple[int, int, str]],
        assist_cycles: dict[str, int],
    ) -> None:
        self.algorithm_name = algorithm_name
        self.line_size = line_size
        self.burst_bytes = burst_bytes
        self.key = key
        self.table = table
        self.assist_cycles = assist_cycles

    def __len__(self) -> int:
        return len(self.table)

    def lookup(self, line: int) -> tuple[int, int, str] | None:
        """``(stored_size, bursts, encoding)`` of ``line``, if covered."""
        return self.table.get(line)

    def info(self, line: int) -> LineInfo | None:
        """The :class:`LineInfo` of ``line``, or ``None`` if uncovered."""
        entry = self.table.get(line)
        if entry is None:
            return None
        return LineInfo(entry[0], entry[2])

    def bursts(self, line: int) -> int:
        """Burst count of ``line`` (must be covered by the plane)."""
        return self.table[line][1]

    def encodings(self) -> set[str]:
        """Every encoding tag appearing in the image."""
        return {entry[2] for entry in self.table.values()}


def build_plane(
    line_bytes: Callable[[int], bytes],
    extents: Iterable[tuple[int, int]],
    algorithm: CompressionAlgorithm,
    burst_bytes: int = 32,
    key: str = "",
    chunk: int = 4096,
) -> CompressionPlane:
    """Batch-compress a whole memory image into a plane.

    ``extents`` enumerates ``(base_line, n_lines)`` regions (from
    :func:`repro.workloads.tracegen.footprint_extents`). Lines are
    generated and compressed in ``chunk``-sized blocks to bound peak
    memory while keeping the batch kernels on large inputs.
    """
    table: dict[int, tuple[int, int, str]] = {}
    for base, count in extents:
        for start in range(0, count, chunk):
            stop = min(start + chunk, count)
            block = [line_bytes(base + i) for i in range(start, stop)]
            sizes = algorithm.size_table(block)
            for offset, (size, encoding) in enumerate(sizes):
                table[base + start + offset] = (
                    size,
                    bursts_for(size, burst_bytes),
                    encoding,
                )
    return CompressionPlane(
        algorithm_name=algorithm.name,
        line_size=algorithm.line_size,
        burst_bytes=burst_bytes,
        key=key,
        table=table,
        assist_cycles=assist_cycle_costs(
            {entry[2] for entry in table.values()},
            algorithm.name,
            algorithm.line_size,
        ),
    )


def compose_best_of_all(
    component_planes: Sequence[tuple[str, CompressionPlane]],
    line_size: int,
    burst_bytes: int = 32,
    key: str = "",
    name: str = "bestofall",
) -> CompressionPlane:
    """Derive a best-of-all plane from already-built component planes.

    Reuses :func:`repro.compression.bestofall.compose_size_tables`, so
    the selection (first component with the strictly smallest size wins)
    is exactly the scalar ``BestOfAllCompressor`` rule — without
    recompressing a single line.
    """
    lines = sorted(component_planes[0][1].table)
    tables = [
        (
            comp_name,
            [(plane.table[ln][0], plane.table[ln][2]) for ln in lines],
        )
        for comp_name, plane in component_planes
    ]
    composed = compose_size_tables(tables, line_size)
    table = {
        ln: (size, bursts_for(size, burst_bytes), encoding)
        for ln, (size, encoding) in zip(lines, composed)
    }
    return CompressionPlane(
        algorithm_name=name,
        line_size=line_size,
        burst_bytes=burst_bytes,
        key=key,
        table=table,
        assist_cycles=assist_cycle_costs(
            {entry[2] for entry in table.values()}, name, line_size
        ),
    )


def assist_cycle_costs(
    encodings: Iterable[str], algorithm_name: str, line_size: int
) -> dict[str, int]:
    """Assist-warp decompression program length per encoding.

    Encodings without a subroutine (or ``"uncompressed"``, which never
    spawns an assist warp) are simply omitted.
    """
    from repro.core.subroutines import SubroutineLibrary

    library = SubroutineLibrary(line_size)
    costs: dict[str, int] = {}
    for encoding in encodings:
        if encoding == "uncompressed":
            continue
        try:
            program = library.decompression(algorithm_name, encoding)
        except (ValueError, KeyError):
            continue
        costs[encoding] = len(program.body)
    return costs


def plane_key(
    mixture: Mapping[str, float],
    seed: int,
    algorithm_name: str,
    line_size: int,
    burst_bytes: int,
    extents: Iterable[tuple[int, int]],
) -> str:
    """Content-address of a plane.

    Line bytes are produced by a deterministic generator from
    ``(mixture, seed, line_size)``, so hashing those parameters plus the
    extent list is equivalent to hashing the image itself — without
    generating a single byte.
    """
    payload = repr(
        (
            PLANE_FORMAT,
            sorted(mixture.items()),
            seed,
            algorithm_name,
            line_size,
            burst_bytes,
            tuple(extents),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]
