"""Set-associative tag-store model with LRU replacement.

Used for the L1s, the L2 banks and the compression metadata (MD) cache.
Only tags and dirty bits are modelled; data contents live in the
:class:`~repro.memory.image.MemoryImage`. Addresses handed to this class
are already in *line* units (byte address divided by line size).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one tag access."""

    hit: bool
    evicted_line: int | None = None
    evicted_dirty: bool = False


class Cache:
    """A set-associative cache tag store.

    Args:
        n_sets: Number of sets (power of two not required).
        assoc: Ways per set.
        name: Label used in diagnostics.
    """

    def __init__(self, n_sets: int, assoc: int, name: str = "cache") -> None:
        if n_sets < 1 or assoc < 1:
            raise ValueError(f"{name}: need n_sets >= 1 and assoc >= 1")
        self.n_sets = n_sets
        self.assoc = assoc
        self.name = name
        self.stats = CacheStats()
        # set index -> OrderedDict[line -> dirty]; LRU at the front.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(n_sets)
        ]

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        # XOR-folded set index (as in GPGPU-Sim's hashed set functions):
        # plain modulo pathologically aliases strided / large-offset
        # streams into a couple of sets.
        return self._sets[(line ^ (line >> 7) ^ (line >> 15)) % self.n_sets]

    def probe(self, line: int) -> bool:
        """Tag check without any state change."""
        return line in self._set_for(line)

    def access(
        self, line: int, is_write: bool = False, allocate: bool = True
    ) -> AccessResult:
        """Look up ``line``, update LRU, optionally allocate on miss.

        Returns the hit flag and, on an allocating miss that evicts,
        the victim line and its dirty bit (the caller turns dirty
        victims into writeback traffic).
        """
        target = self._set_for(line)
        self.stats.accesses += 1
        if line in target:
            self.stats.hits += 1
            target.move_to_end(line)
            if is_write:
                target[line] = True
            return AccessResult(hit=True)
        self.stats.misses += 1
        if not allocate:
            return AccessResult(hit=False)
        evicted_line: int | None = None
        evicted_dirty = False
        if len(target) >= self.assoc:
            evicted_line, evicted_dirty = target.popitem(last=False)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.dirty_evictions += 1
        target[line] = is_write
        return AccessResult(
            hit=False, evicted_line=evicted_line, evicted_dirty=evicted_dirty
        )

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present (write-evict policy); returns presence."""
        target = self._set_for(line)
        if line in target:
            del target[line]
            return True
        return False

    def fill(self, line: int, dirty: bool = False) -> AccessResult:
        """Insert ``line`` without counting a demand access (e.g. refills)."""
        target = self._set_for(line)
        if line in target:
            target.move_to_end(line)
            target[line] = target[line] or dirty
            return AccessResult(hit=True)
        evicted_line: int | None = None
        evicted_dirty = False
        if len(target) >= self.assoc:
            evicted_line, evicted_dirty = target.popitem(last=False)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.dirty_evictions += 1
        target[line] = dirty
        return AccessResult(
            hit=False, evicted_line=evicted_line, evicted_dirty=evicted_dirty
        )

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
