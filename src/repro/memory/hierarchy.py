"""The global memory system: L1s, crossbar, L2 banks, GDDR5 channels.

This module glues the memory components into the three-level hierarchy of
Section 4.2 (private L1s, a shared banked L2, GDDR5 DRAM) and implements
the design-point-specific compression placement:

* ``Base`` moves full lines everywhere.
* ``HW-*-Mem`` stores compressed lines in DRAM only and decompresses at
  the memory controller (extra fixed latency, full-size interconnect
  replies).
* ``HW-*``, ``CABA-*`` and ``Ideal-*`` keep L2 and the interconnect
  compressed; decompression happens at the core — in fixed hardware
  latency, via an assist warp (the fill is marked ``needs_assist`` and
  the CABA controller gates the load), or for free (ideal).

Timing uses reservation timelines (see :mod:`repro.memory.timeline`), so
a load's entire downstream trajectory is computed at request time; the
SM schedules completion events from the returned times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.design import DesignPoint
from repro.gpu.config import GPUConfig
from repro.memory.cache import Cache
from repro.memory.compressed_cache import CompressedCache
from repro.memory.dram import MemoryController
from repro.memory.hostlink import CapacityModel, HostLink
from repro.memory.image import MemoryImage
from repro.memory.interconnect import CONTROL_BYTES, Crossbar
from repro.memory.metadata import MetadataCache
from repro.memory.timeline import Timeline

#: Cycles an L2 bank's tag pipeline is occupied per access.
L2_TAG_CYCLES = 2.0

#: Deepest level a fill travelled to (LineFill.source / warp.mem_source).
MEM_SRC_L1 = 0
MEM_SRC_L2 = 1
MEM_SRC_DRAM = 2


@dataclass(frozen=True, slots=True)
class LineFill:
    """Timing outcome for one line of a load.

    ``ready_time`` is when the requesting load may complete — unless
    ``needs_assist`` is set, in which case the CABA controller must run a
    decompression assist warp starting at ``fill_time`` and the load
    completes when the subroutine does.
    """

    line: int
    fill_time: float
    ready_time: float
    needs_assist: bool
    encoding: str
    size_bytes: int
    merged: bool = False
    from_l1: bool = False
    #: Deepest level serving the line (MEM_SRC_*; observability only).
    source: int = MEM_SRC_L2


@dataclass
class TrafficStats:
    """System-wide traffic counters."""

    l1_loads: int = 0
    l1_load_hits: int = 0
    l1_stores: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    mshr_stalls: int = 0
    mshr_allocs: int = 0  # MSHR entries taken by L1 misses
    mshr_releases: int = 0  # MSHR entries freed at fill completion
    rmw_reads: int = 0  # partial writes into compressed lines (Sec. 4.2.2)
    lines_decompressed: int = 0  # compressed lines expanded somewhere
    lines_compressed: int = 0  # store lines written in compressed form
    host_reads: int = 0  # capacity mode: spilled-line fetches over the host link
    host_writes: int = 0  # capacity mode: spilled-line writebacks to host


class MemorySystem:
    """Design-point-aware three-level memory hierarchy."""

    def __init__(
        self,
        config: GPUConfig,
        design: DesignPoint,
        image: MemoryImage,
        capacity: CapacityModel | None = None,
    ) -> None:
        if image.line_size != config.line_size:
            raise ValueError("image line size differs from config line size")
        self.config = config
        self.design = design
        self.image = image
        self.stats = TrafficStats()
        #: Observability layer (repro.obs.RunObservation); None = off.
        self.obs = None

        # Capacity mode: lines the placement plan spilled to host memory
        # bypass the GDDR5 controllers and travel the host link instead.
        self.capacity = capacity
        if capacity is not None:
            self.host: HostLink | None = HostLink(
                capacity.config, config.burst_cycles
            )
            self._spilled = capacity.plan.spilled
        else:
            self.host = None
            self._spilled = frozenset()

        self._l1s = [self._make_l1(i) for i in range(config.n_sms)]
        self._inflight: list[dict[int, LineFill]] = [
            {} for _ in range(config.n_sms)
        ]
        self._mshr_used = [0] * config.n_sms
        #: Bumped whenever an SM's MSHR/in-flight state changes; lets the
        #: SM skip re-checking a stalled load until something changed.
        self.mshr_epoch = [0] * config.n_sms

        self.crossbar = Crossbar(
            config.n_mcs, latency=config.icnt_latency,
            flit_bytes=config.icnt_flit_bytes,
        )
        self._l2_banks = [self._make_l2(i) for i in range(config.n_mcs)]
        self._l2_tag = [Timeline() for _ in range(config.n_mcs)]
        self.mcs = [
            MemoryController(
                mc_id=i,
                burst_cycles=config.burst_cycles,
                timing=config.dram_timing,
                n_banks=config.banks_per_mc,
                metadata_cache=self._make_md_cache(),
            )
            for i in range(config.n_mcs)
        ]

        algo = image.algorithm
        self._hw_decompress = algo.hw_decompression_latency if algo else 0
        self._hw_compress = algo.hw_compression_latency if algo else 0

    def attach_observer(self, obs) -> None:
        """Install the observability layer on the hierarchy and its
        components (crossbar, memory controllers)."""
        self.obs = obs
        self.crossbar.obs = obs
        for mc in self.mcs:
            mc.obs = obs

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_l1(self, sm_id: int):
        cfg = self.config
        if self.design.l1_tag_mult > 1:
            return CompressedCache(
                cfg.l1_sets, cfg.l1_assoc, cfg.line_size,
                tag_mult=self.design.l1_tag_mult,
            )
        return Cache(cfg.l1_sets, cfg.l1_assoc, name=f"l1[{sm_id}]")

    def _make_l2(self, mc: int):
        cfg = self.config
        if self.design.l2_tag_mult > 1:
            return CompressedCache(
                cfg.l2_sets_per_mc, cfg.l2_assoc, cfg.line_size,
                tag_mult=self.design.l2_tag_mult,
            )
        return Cache(cfg.l2_sets_per_mc, cfg.l2_assoc, name=f"l2[{mc}]")

    def _make_md_cache(self) -> MetadataCache | None:
        if not self.design.needs_metadata:
            return None
        cfg = self.config
        return MetadataCache(
            size_bytes=cfg.md_cache_size,
            assoc=cfg.md_cache_assoc,
            lines_per_entry=cfg.md_lines_per_entry,
        )

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def mc_of(self, line: int) -> int:
        return line % self.config.n_mcs

    def _local(self, line: int) -> int:
        return line // self.config.n_mcs

    # ------------------------------------------------------------------
    # Size helpers
    # ------------------------------------------------------------------
    def _stored_size(self, line: int) -> tuple[int, str]:
        """Size/encoding of ``line`` as held in the compressed levels."""
        if not self.design.compression_enabled:
            return self.config.line_size, "uncompressed"
        info = self.image.info(line)
        return info.size_bytes, info.encoding

    def _dram_bursts(self, line: int) -> int:
        if self.design.compress_dram:
            return self.image.bursts_of(line)
        return self.config.bursts_per_line

    def _l1_fill_size(self, size_bytes: int) -> int:
        """Bytes the L1 stores for a line of compressed size ``size_bytes``."""
        if self.design.l1_compressed:
            return size_bytes
        return self.config.line_size

    # ------------------------------------------------------------------
    # Cache access adapters (plain vs. compressed tag stores)
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_access(cache, line, size, is_write, allocate=True):
        """Uniform (hit, victims) access over Cache / CompressedCache."""
        if isinstance(cache, CompressedCache):
            result = cache.access(line, size, is_write=is_write, allocate=allocate)
            return result.hit, list(result.evicted)
        result = cache.access(line, is_write=is_write, allocate=allocate)
        victims = []
        if result.evicted_line is not None:
            victims.append((result.evicted_line, result.evicted_dirty))
        return result.hit, victims

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def mshr_available(self, sm_id: int, line: int) -> bool:
        """Whether a miss on ``line`` could be tracked right now."""
        return (
            line in self._inflight[sm_id]
            or self._mshr_used[sm_id] < self.config.l1_mshrs
        )

    def load(self, sm_id: int, line: int, now: float) -> LineFill | None:
        """Issue a load for one line; ``None`` means MSHRs are full
        (structural memory stall — the SM must replay the instruction)."""
        cfg = self.config
        design = self.design
        self.stats.l1_loads += 1

        # In-flight lines first: the L1 tag is allocated at request time,
        # so a probe would otherwise claim the data already arrived.
        pending = self._inflight[sm_id].get(line)
        if pending is not None:
            return LineFill(
                line=pending.line,
                fill_time=pending.fill_time,
                ready_time=pending.ready_time,
                needs_assist=pending.needs_assist,
                encoding=pending.encoding,
                size_bytes=pending.size_bytes,
                merged=True,
                source=pending.source,
            )

        l1 = self._l1s[sm_id]
        if l1.probe(line):
            self.stats.l1_load_hits += 1
            size, encoding = self._stored_size(line)
            needs_assist = (
                design.l1_compressed
                and design.decompress_at == "core_assist"
                and encoding != "uncompressed"
            )
            ready = now + cfg.l1_latency
            if (
                design.l1_compressed
                and design.decompress_at == "core_hw"
                and encoding != "uncompressed"
                and not design.ideal
            ):
                ready += self._hw_decompress
            # Touch LRU state.
            self._cache_access(l1, line, self._l1_fill_size(size), False)
            fill = LineFill(
                line=line,
                fill_time=now + cfg.l1_latency,
                ready_time=ready,
                needs_assist=needs_assist,
                encoding=encoding,
                size_bytes=size,
                from_l1=True,
                source=MEM_SRC_L1,
            )
            if self.obs is not None:
                self.obs.record_fill(fill, now)
            return fill

        if self._mshr_used[sm_id] >= cfg.l1_mshrs:
            self.stats.mshr_stalls += 1
            return None

        fill = self._miss_path(sm_id, line, now)
        self._mshr_used[sm_id] += 1
        self.stats.mshr_allocs += 1
        self._inflight[sm_id][line] = fill
        self.mshr_epoch[sm_id] += 1
        self._cache_access(
            l1, line, self._l1_fill_size(fill.size_bytes), False
        )
        if self.obs is not None:
            self.obs.record_fill(fill, now)
        return fill

    def _miss_path(self, sm_id: int, line: int, now: float) -> LineFill:
        """Compute the full downstream trajectory of an L1 miss."""
        cfg = self.config
        design = self.design
        mc = self.mc_of(line)
        size, encoding = self._stored_size(line)
        compressed = encoding != "uncompressed"

        t_mc = self.crossbar.send_request(mc, now + 1.0, CONTROL_BYTES)
        t_tag = self._l2_tag[mc].reserve(t_mc, L2_TAG_CYCLES) + L2_TAG_CYCLES
        self.stats.l2_accesses += 1
        l2_compressed = (
            design.compress_interconnect and not design.l2_store_uncompressed
        )
        l2_size = size if l2_compressed else cfg.line_size
        hit, victims = self._cache_access(
            self._l2_banks[mc], line, l2_size, is_write=False
        )
        if hit:
            self.stats.l2_hits += 1
            t_data = t_tag + cfg.l2_latency
        else:
            if line in self._spilled:
                t_dram = self.host.transfer(
                    t_tag + cfg.l2_latency, self._dram_bursts(line),
                    is_write=False,
                )
                self.stats.host_reads += 1
            else:
                t_dram = self.mcs[mc].access(
                    t_tag + cfg.l2_latency, self._local(line),
                    self._dram_bursts(line), is_write=False,
                )
                self.stats.dram_reads += 1
            if design.decompress_at == "mc" and compressed and not design.ideal:
                t_dram += self._hw_decompress
            t_data = t_dram
        # Compressed L2 banks can evict on hits too (a line growing in
        # place pushes LRU lines over the data budget).
        self._write_back_victims(mc, victims, t_tag)

        reply_bytes = size if l2_compressed else cfg.line_size
        fill_time = self.crossbar.send_reply(mc, t_data, reply_bytes)

        # With the Section 6.5 uncompressed-L2 option, only fills that
        # actually came from (compressed) DRAM need expanding; L2 hits
        # serve ready-to-use data.
        needs_expansion = compressed and (
            not design.l2_store_uncompressed or not hit
        )
        if needs_expansion and design.decompress_at != "none":
            self.stats.lines_decompressed += 1
        needs_assist = (
            design.decompress_at == "core_assist" and needs_expansion
        )
        source = MEM_SRC_L2 if hit else MEM_SRC_DRAM
        ready = fill_time
        if (
            design.decompress_at == "core_hw"
            and needs_expansion
            and design.compress_interconnect
            and not design.ideal
        ):
            ready += self._hw_decompress
        return LineFill(
            line=line,
            fill_time=fill_time,
            ready_time=ready,
            needs_assist=needs_assist,
            encoding=encoding,
            size_bytes=size,
            source=source,
        )

    def _write_back_victims(
        self, mc: int, victims: list[tuple[int, bool]], at: float
    ) -> None:
        """Send dirty L2 victims to DRAM (off the critical path)."""
        for victim, dirty in victims:
            if not dirty:
                continue
            if victim in self._spilled:
                self.host.transfer(
                    at, self._dram_bursts(victim), is_write=True
                )
                self.stats.host_writes += 1
                continue
            self.mcs[mc].access(
                at, self._local(victim), self._dram_bursts(victim), is_write=True
            )
            self.stats.dram_writes += 1

    def complete_fill(self, sm_id: int, line: int) -> None:
        """Release the MSHR tracking ``line`` (called at fill time)."""
        if self._inflight[sm_id].pop(line, None) is not None:
            self._mshr_used[sm_id] -= 1
            self.stats.mshr_releases += 1
            self.mshr_epoch[sm_id] += 1

    def drain_inflight(self) -> None:
        """Release every in-flight MSHR (end-of-kernel drain).

        Demand fills always complete before their warp retires, so this
        is a no-op on plain runs; prefetch-scenario runs can finish with
        assist-issued fills still outstanding, whose completion events
        fall in the dead time after the last warp — their MSHRs drain
        here so allocation/release accounting closes on completed runs.
        """
        for sm_id, per_sm in enumerate(self._inflight):
            for line in list(per_sm):
                self.complete_fill(sm_id, line)

    # ------------------------------------------------------------------
    # Store path
    # ------------------------------------------------------------------
    def store(
        self,
        sm_id: int,
        line: int,
        now: float,
        full_line: bool = True,
        compressed_by_core: bool = False,
    ) -> float:
        """Write one line towards L2/DRAM; returns the L2-update time.

        ``compressed_by_core`` marks stores whose data was compressed at
        the core (HW-at-core designs, or a completed CABA compression
        assist warp). With MC-side compression the line travels
        uncompressed on the interconnect but is recorded compressed.
        """
        cfg = self.config
        design = self.design
        self.stats.l1_stores += 1
        mc = self.mc_of(line)

        # Write-evict L1 (global stores do not allocate in the L1).
        self._l1s[sm_id].invalidate(line)

        stored_compressed = (
            design.ideal
            or compressed_by_core
            or design.compress_at in ("mc_hw", "core_hw")
        ) and design.compression_enabled
        if stored_compressed:
            self.stats.lines_compressed += 1
        info = self.image.record_store(line, compressed=stored_compressed)

        wire_compressed = (
            design.compress_interconnect
            and not design.l2_store_uncompressed
            and (compressed_by_core or design.compress_at == "core_hw"
                 or design.ideal)
        )
        wire_bytes = info.size_bytes if wire_compressed else cfg.line_size
        t_mc = self.crossbar.send_request(mc, now, wire_bytes)
        t_tag = self._l2_tag[mc].reserve(t_mc, L2_TAG_CYCLES) + L2_TAG_CYCLES

        l2_size = (
            info.size_bytes
            if design.compress_interconnect and not design.l2_store_uncompressed
            else cfg.line_size
        )
        self.stats.l2_accesses += 1
        hit, victims = self._cache_access(
            self._l2_banks[mc], line, l2_size, is_write=True
        )
        done = t_tag
        if hit:
            self.stats.l2_hits += 1
        else:
            if (
                not full_line
                and design.compress_dram
                and not design.ideal
                and self.image.info(line).is_compressed
            ):
                # Partial write into a compressed line: fetch + decompress
                # before merging (the Section 4.2.2 worst case).
                if line in self._spilled:
                    done = self.host.transfer(
                        t_tag, self._dram_bursts(line), is_write=False
                    )
                else:
                    done = self.mcs[mc].access(
                        t_tag, self._local(line), self._dram_bursts(line),
                        is_write=False,
                    )
                self.stats.rmw_reads += 1
        # Hits may evict as well: a store that grows a compressed line in
        # place can push the set's LRU lines over the data budget.
        self._write_back_victims(mc, victims, done)
        return done

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def bandwidth_utilization(self, elapsed: float) -> float:
        """Paper Fig. 8 metric: mean DRAM data-bus busy fraction."""
        if not self.mcs:
            return 0.0
        return sum(mc.utilization(elapsed) for mc in self.mcs) / len(self.mcs)

    def md_cache_hit_rate(self) -> float | None:
        """Aggregate MD-cache hit rate, or None when no MD cache exists."""
        caches = [mc.metadata_cache for mc in self.mcs if mc.metadata_cache]
        accesses = sum(c.accesses for c in caches)
        if not caches or accesses == 0:
            return None
        hits = sum(c.accesses - c.misses for c in caches)
        return hits / accesses

    def dram_bursts(self) -> dict[str, int]:
        out = {
            "read": sum(mc.stats.read_bursts for mc in self.mcs),
            "write": sum(mc.stats.write_bursts for mc in self.mcs),
            "metadata": sum(mc.stats.metadata_bursts for mc in self.mcs),
        }
        if self.host is not None:
            out["host"] = self.host.stats.total_bursts
        return out

    def l1_stats(self):
        return [l1.stats for l1 in self._l1s]

    def l2_stats(self):
        return [l2.stats for l2 in self._l2_banks]

    @property
    def l1_caches(self):
        return self._l1s
