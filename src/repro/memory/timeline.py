"""Reservation timelines: the contention primitive of the memory model.

Every serial resource in the memory system (an interconnect port, a DRAM
data bus, an L2 tag pipeline) is modelled as a :class:`Timeline`:
requests reserve the resource and the timeline returns when service
actually starts. Queueing delay and utilization fall out of the
reservations without per-cycle simulation.

Reservations are *gap-filling*: the timeline keeps a short list of free
intervals, so a request reserving far in the future (e.g. a DRAM access
serialized behind a metadata fetch) does not block the idle time before
it for requests that arrive later but want earlier service. Without
this, rare latency events punch dead holes into shared buses and
throughput collapses artificially. The list is bounded: when it grows
past :data:`MAX_FREE_INTERVALS`, the oldest gap is forgotten (treated as
busy) — old gaps are almost never reachable by later requests anyway.
"""

from __future__ import annotations

_INF = float("inf")

#: Upper bound on tracked free intervals per timeline. Bounds the cost
#: of a reservation; dropping the oldest gap only forgoes backfill
#: opportunities far in the past.
MAX_FREE_INTERVALS = 24


class Timeline:
    """A serially reusable resource with gap-filling reservations."""

    __slots__ = ("_free", "busy_time")

    def __init__(self) -> None:
        # Sorted, disjoint free intervals; the last one is open-ended.
        self._free: list[tuple[float, float]] = [(0.0, _INF)]
        self.busy_time = 0.0

    def reserve(self, at: float, duration: float) -> float:
        """Reserve ``duration`` units starting no earlier than ``at``;
        returns the actual service start time."""
        if duration <= 0:
            return max(at, 0.0)
        free = self._free
        for index, (start, end) in enumerate(free):
            begin = start if start > at else at
            if begin + duration <= end:
                self.busy_time += duration
                replacement = []
                if start < begin:
                    replacement.append((start, begin))
                if begin + duration < end:
                    replacement.append((begin + duration, end))
                free[index : index + 1] = replacement
                if len(free) > MAX_FREE_INTERVALS:
                    del free[0]
                return begin
        raise AssertionError("open-ended timeline should always fit")

    def peek(self, at: float) -> float:
        """When service of a unit-length request would start (no side
        effects)."""
        for start, end in self._free:
            begin = start if start > at else at
            if begin + 1.0 <= end:
                return begin
        return at

    def is_free(self, at: float) -> bool:
        """Whether the instant ``at`` falls in free time."""
        return any(start <= at < end for start, end in self._free)

    @property
    def next_free(self) -> float:
        """Start of the trailing open-ended free interval (diagnostic)."""
        return self._free[-1][0]

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
