"""The SM <-> memory-partition crossbar.

Table 1: one crossbar per direction clocked at core frequency. Each
memory partition (MC) has one input port for requests and one output
port for replies; a port moves one 32-byte flit per cycle. Data payloads
occupy ``ceil(bytes / flit)`` consecutive cycles, so interconnect
compression (HW-BDI, CABA) directly shortens reply occupancy — this is
the effect that lets CABA/HW-BDI beat HW-BDI-Mem on interconnect-bound
applications like BFS (Section 6.1).
"""

from __future__ import annotations

import math

from repro.memory.timeline import Timeline

#: Control-message size (a read request / write ack header).
CONTROL_BYTES = 8


class Crossbar:
    """Per-direction crossbar with one timeline per memory-partition port."""

    def __init__(
        self, n_mcs: int, latency: int = 16, flit_bytes: int = 32
    ) -> None:
        if n_mcs < 1:
            raise ValueError("need at least one memory controller")
        self.n_mcs = n_mcs
        self.latency = latency
        self.flit_bytes = flit_bytes
        self._request_ports = [Timeline() for _ in range(n_mcs)]
        self._reply_ports = [Timeline() for _ in range(n_mcs)]
        self.request_flits = 0
        self.reply_flits = 0
        #: Observability layer (repro.obs.RunObservation); None = off.
        self.obs = None

    def _flits(self, n_bytes: int) -> int:
        return max(1, math.ceil(n_bytes / self.flit_bytes))

    def send_request(self, mc: int, at: float, n_bytes: int = CONTROL_BYTES) -> float:
        """Send a request (or write data) towards MC ``mc``; returns the
        arrival time at the memory partition."""
        flits = self._flits(n_bytes)
        self.request_flits += flits
        start = self._request_ports[mc].reserve(at, float(flits))
        return start + flits + self.latency

    def send_reply(self, mc: int, at: float, n_bytes: int) -> float:
        """Send reply data from MC ``mc`` back to a core; returns the
        arrival time at the core."""
        flits = self._flits(n_bytes)
        self.reply_flits += flits
        start = self._reply_ports[mc].reserve(at, float(flits))
        if self.obs is not None:
            self.obs.record_icnt_reply(mc, flits, start - at)
        return start + flits + self.latency

    def total_flits(self) -> int:
        return self.request_flits + self.reply_flits

    def reply_utilization(self, elapsed: float) -> float:
        """Mean busy fraction of the reply ports (the contended direction)."""
        if not self._reply_ports:
            return 0.0
        return sum(p.utilization(elapsed) for p in self._reply_ports) / len(
            self._reply_ports
        )
