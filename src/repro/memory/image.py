"""The compressed view of global memory.

The paper prepares input data in compressed form before transferring it
to the GPU (Section 4.3.1), so every global-memory line has a compressed
size from the outset. :class:`MemoryImage` provides that view: it lazily
materializes the bytes of each line through a deterministic generator
(supplied by the workload), runs the active compression algorithm on
them, and caches the resulting size/encoding. Store-written lines can
override their recorded size (e.g. when CABA's compression assist warp
was throttled and the line went back uncompressed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compression.base import CompressionAlgorithm, bursts_for

#: Produces the bytes of one line given its line address.
LineBytesFn = Callable[[int], bytes]


@dataclass(frozen=True)
class LineInfo:
    """Compressed-size record for one global-memory line."""

    size_bytes: int
    encoding: str

    @property
    def is_compressed(self) -> bool:
        return self.encoding != "uncompressed"


class MemoryImage:
    """Per-line compressed sizes of the simulated global memory.

    Args:
        line_bytes: Deterministic generator of each line's contents.
        algorithm: Active compression algorithm, or ``None`` for the
            uncompressed baseline.
        line_size: Line size in bytes.
        burst_bytes: DRAM burst granularity.
    """

    def __init__(
        self,
        line_bytes: LineBytesFn,
        algorithm: CompressionAlgorithm | None,
        line_size: int = 128,
        burst_bytes: int = 32,
        shared_cache: dict[int, LineInfo] | None = None,
        plane=None,
    ) -> None:
        """``shared_cache`` lets several runs of the same workload +
        algorithm share the (immutable) baseline size cache; store
        overrides always stay private to one run. ``plane`` is an
        optional precomputed :class:`~repro.memory.plane.CompressionPlane`
        consulted before falling back to scalar compression."""
        if algorithm is not None and algorithm.line_size != line_size:
            raise ValueError(
                f"algorithm line size {algorithm.line_size} != {line_size}"
            )
        self._line_bytes = line_bytes
        self.algorithm = algorithm
        self.line_size = line_size
        self.burst_bytes = burst_bytes
        self._cache: dict[int, LineInfo] = (
            shared_cache if shared_cache is not None else {}
        )
        self._overrides: dict[int, LineInfo] = {}
        self.plane = plane if algorithm is not None else None

    # ------------------------------------------------------------------
    @property
    def compression_enabled(self) -> bool:
        return self.algorithm is not None

    def info(self, line: int) -> LineInfo:
        """Compressed size and encoding of ``line`` as currently stored."""
        override = self._overrides.get(line)
        if override is not None:
            return override
        return self._baseline_info(line)

    def _baseline_info(self, line: int) -> LineInfo:
        cached = self._cache.get(line)
        if cached is not None:
            return cached
        if self.algorithm is None:
            info = LineInfo(self.line_size, "uncompressed")
        else:
            # Planes are consulted per lookup (never bulk-copied) so the
            # touched-line set — and with it every aggregate statistic —
            # stays identical to the lazy scalar path.
            info = self.plane.info(line) if self.plane is not None else None
            if info is None:
                compressed = self.algorithm.compress(self._line_bytes(line))
                info = LineInfo(compressed.size_bytes, compressed.encoding)
        self._cache[line] = info
        return info

    def size_of(self, line: int) -> int:
        return self.info(line).size_bytes

    def bursts_of(self, line: int) -> int:
        return bursts_for(self.info(line).size_bytes, self.burst_bytes)

    @property
    def line_bursts(self) -> int:
        """Bursts for a full uncompressed line."""
        return bursts_for(self.line_size, self.burst_bytes)

    # ------------------------------------------------------------------
    # Store-side updates
    # ------------------------------------------------------------------
    def record_store(self, line: int, compressed: bool) -> LineInfo:
        """Record the stored form of ``line`` after a writeback.

        When ``compressed`` the line keeps its algorithmic size (stored
        data is assumed to follow the application's data patterns, as the
        baseline image does); otherwise the line is marked uncompressed
        until a later compressed store replaces it.
        """
        if compressed and self.algorithm is not None:
            info = self._baseline_info(line)
        else:
            info = LineInfo(self.line_size, "uncompressed")
        self._overrides[line] = info
        return info

    # ------------------------------------------------------------------
    # Aggregate statistics (used by the Fig. 11 harness)
    # ------------------------------------------------------------------
    def observed_compression_ratio(self) -> float:
        """Burst-weighted compression ratio over every line touched so far."""
        seen = {**self._cache, **self._overrides}
        if not seen:
            return 1.0
        uncompressed = len(seen) * self.line_bursts
        compressed = sum(
            bursts_for(info.size_bytes, self.burst_bytes) for info in seen.values()
        )
        return uncompressed / compressed

    def lines_touched(self) -> int:
        return len({**self._cache, **self._overrides})
