"""Memory-hierarchy substrate: caches, interconnect, GDDR5, metadata.

The hierarchy mirrors Section 4.2's baseline: private L1s per SM, a
shared L2 banked across six memory controllers, and GDDR5 DRAM; the
compressed designs store compressed data in L2/DRAM (bandwidth benefit
only — no capacity benefit) and, for Fig. 13, optionally in
tag-extended compressed caches.
"""

from repro.memory.cache import AccessResult, Cache, CacheStats
from repro.memory.compressed_cache import CompressedAccessResult, CompressedCache
from repro.memory.dram import DramStats, MemoryController, LINES_PER_ROW
from repro.memory.hierarchy import LineFill, MemorySystem, TrafficStats
from repro.memory.image import LineInfo, MemoryImage
from repro.memory.interconnect import CONTROL_BYTES, Crossbar
from repro.memory.metadata import MdLookup, MetadataCache
from repro.memory.timeline import Timeline

__all__ = [
    "AccessResult",
    "CONTROL_BYTES",
    "Cache",
    "CacheStats",
    "CompressedAccessResult",
    "CompressedCache",
    "Crossbar",
    "DramStats",
    "LINES_PER_ROW",
    "LineFill",
    "LineInfo",
    "MdLookup",
    "MemoryController",
    "MemoryImage",
    "MemorySystem",
    "MetadataCache",
    "Timeline",
    "TrafficStats",
]
