"""Tag-extended compressed caches (Section 6.5, Figure 13).

Bandwidth compression alone gives no capacity benefit: a compressed line
still occupies a full slot. The Fig. 13 designs additionally provision
2x or 4x the tags so several compressed lines can share the data space
of one uncompressed slot. The model keeps per-set byte budgets equal to
the uncompressed data array and admits up to ``assoc * tag_mult`` tagged
lines per set as long as their compressed sizes fit — the standard
"number of tags limits the effective compressed cache size" model the
paper cites from BDI/Adaptive Cache Compression.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.memory.cache import CacheStats


@dataclass(frozen=True)
class CompressedAccessResult:
    """Outcome of a compressed-cache access; may evict several victims."""

    hit: bool
    evicted: tuple[tuple[int, bool], ...] = ()  # (line, dirty)


@dataclass
class _Entry:
    dirty: bool
    size: int


class CompressedCache:
    """A set-associative cache whose lines occupy their compressed size.

    Args:
        n_sets: Sets, as in the uncompressed organization.
        assoc: *Data* ways per set (the byte budget is ``assoc * line_size``).
        line_size: Uncompressed line size.
        tag_mult: Tag multiplier (2x/4x in the paper).
    """

    def __init__(
        self, n_sets: int, assoc: int, line_size: int, tag_mult: int = 2
    ) -> None:
        if tag_mult < 1:
            raise ValueError("tag_mult must be >= 1")
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_size = line_size
        self.tag_mult = tag_mult
        self.max_tags = assoc * tag_mult
        self.data_budget = assoc * line_size
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, _Entry]] = [
            OrderedDict() for _ in range(n_sets)
        ]

    def _set_for(self, line: int) -> OrderedDict[int, _Entry]:
        # Same XOR-folded set hashing as the plain Cache model.
        return self._sets[(line ^ (line >> 7) ^ (line >> 15)) % self.n_sets]

    def probe(self, line: int) -> bool:
        return line in self._set_for(line)

    def stored_size(self, line: int) -> int | None:
        """Compressed size the cache holds for ``line`` (None if absent)."""
        entry = self._set_for(line).get(line)
        return entry.size if entry is not None else None

    def access(
        self,
        line: int,
        size: int,
        is_write: bool = False,
        allocate: bool = True,
    ) -> CompressedAccessResult:
        """Look up ``line``; on an allocating miss, insert its compressed
        ``size`` bytes, evicting LRU lines until both the tag count and the
        byte budget fit."""
        if not 1 <= size <= self.line_size:
            raise ValueError(f"bad compressed size {size}")
        target = self._set_for(line)
        self.stats.accesses += 1
        entry = target.get(line)
        if entry is not None:
            self.stats.hits += 1
            target.move_to_end(line)
            if is_write:
                entry.dirty = True
            entry.size = size
            return CompressedAccessResult(hit=True)
        self.stats.misses += 1
        if not allocate:
            return CompressedAccessResult(hit=False)
        evicted = self._make_room(target, size)
        target[line] = _Entry(dirty=is_write, size=size)
        return CompressedAccessResult(hit=False, evicted=tuple(evicted))

    def _make_room(
        self, target: OrderedDict[int, _Entry], size: int
    ) -> list[tuple[int, bool]]:
        evicted: list[tuple[int, bool]] = []
        used = sum(e.size for e in target.values())
        while target and (
            len(target) >= self.max_tags or used + size > self.data_budget
        ):
            victim_line, victim = target.popitem(last=False)
            used -= victim.size
            evicted.append((victim_line, victim.dirty))
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        return evicted

    def invalidate(self, line: int) -> bool:
        target = self._set_for(line)
        if line in target:
            del target[line]
            return True
        return False

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def occupancy(self) -> float:
        """Fraction of the data budget in use (mean over sets)."""
        if not self._sets:
            return 0.0
        fractions = [
            sum(e.size for e in s.values()) / self.data_budget for s in self._sets
        ]
        return sum(fractions) / len(fractions)
