"""Tag-extended compressed caches (Section 6.5, Figure 13).

Bandwidth compression alone gives no capacity benefit: a compressed line
still occupies a full slot. The Fig. 13 designs additionally provision
2x or 4x the tags so several compressed lines can share the data space
of one uncompressed slot. The model keeps per-set byte budgets equal to
the uncompressed data array and admits up to ``assoc * tag_mult`` tagged
lines per set as long as their compressed sizes fit — the standard
"number of tags limits the effective compressed cache size" model the
paper cites from BDI/Adaptive Cache Compression.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.memory.cache import CacheStats


@dataclass(frozen=True)
class CompressedAccessResult:
    """Outcome of a compressed-cache access; may evict several victims."""

    hit: bool
    evicted: tuple[tuple[int, bool], ...] = ()  # (line, dirty)


@dataclass(slots=True)
class _Entry:
    dirty: bool
    size: int


class CompressedCache:
    """A set-associative cache whose lines occupy their compressed size.

    Args:
        n_sets: Sets, as in the uncompressed organization.
        assoc: *Data* ways per set (the byte budget is ``assoc * line_size``).
        line_size: Uncompressed line size.
        tag_mult: Tag multiplier (2x/4x in the paper).
    """

    def __init__(
        self, n_sets: int, assoc: int, line_size: int, tag_mult: int = 2
    ) -> None:
        if tag_mult < 1:
            raise ValueError("tag_mult must be >= 1")
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_size = line_size
        self.tag_mult = tag_mult
        self.max_tags = assoc * tag_mult
        self.data_budget = assoc * line_size
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, _Entry]] = [
            OrderedDict() for _ in range(n_sets)
        ]
        #: Bytes in use per set, maintained incrementally so misses do
        #: not re-sum the whole set on every allocation.
        self._used: list[int] = [0] * n_sets

    def _set_index(self, line: int) -> int:
        # Same XOR-folded set hashing as the plain Cache model.
        return (line ^ (line >> 7) ^ (line >> 15)) % self.n_sets

    def _set_for(self, line: int) -> OrderedDict[int, _Entry]:
        return self._sets[self._set_index(line)]

    def probe(self, line: int) -> bool:
        return line in self._set_for(line)

    def stored_size(self, line: int) -> int | None:
        """Compressed size the cache holds for ``line`` (None if absent)."""
        entry = self._set_for(line).get(line)
        return entry.size if entry is not None else None

    def access(
        self,
        line: int,
        size: int,
        is_write: bool = False,
        allocate: bool = True,
    ) -> CompressedAccessResult:
        """Look up ``line``; on an allocating miss, insert its compressed
        ``size`` bytes, evicting LRU lines until both the tag count and the
        byte budget fit."""
        if not 1 <= size <= self.line_size:
            raise ValueError(f"bad compressed size {size}")
        index = self._set_index(line)
        target = self._sets[index]
        self.stats.accesses += 1
        entry = target.get(line)
        if entry is not None:
            self.stats.hits += 1
            target.move_to_end(line)
            if is_write:
                entry.dirty = True
            self._used[index] += size - entry.size
            entry.size = size
            if self._used[index] <= self.data_budget:
                return CompressedAccessResult(hit=True)
            # A line growing in place can push the set over its byte
            # budget; evict LRU lines until it fits again. The hit line
            # is MRU and fits on its own, so it is never its own victim.
            evicted: list[tuple[int, bool]] = []
            used = self._used[index]
            while used > self.data_budget:
                victim_line, victim = target.popitem(last=False)
                used -= victim.size
                evicted.append((victim_line, victim.dirty))
                self.stats.evictions += 1
                if victim.dirty:
                    self.stats.dirty_evictions += 1
            self._used[index] = used
            return CompressedAccessResult(hit=True, evicted=tuple(evicted))
        self.stats.misses += 1
        if not allocate:
            return CompressedAccessResult(hit=False)
        evicted = self._make_room(index, size)
        target[line] = _Entry(dirty=is_write, size=size)
        self._used[index] += size
        return CompressedAccessResult(hit=False, evicted=tuple(evicted))

    def _make_room(self, index: int, size: int) -> list[tuple[int, bool]]:
        target = self._sets[index]
        evicted: list[tuple[int, bool]] = []
        used = self._used[index]
        while target and (
            len(target) >= self.max_tags or used + size > self.data_budget
        ):
            victim_line, victim = target.popitem(last=False)
            used -= victim.size
            evicted.append((victim_line, victim.dirty))
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        self._used[index] = used
        return evicted

    def invalidate(self, line: int) -> bool:
        index = self._set_index(line)
        target = self._sets[index]
        entry = target.pop(line, None)
        if entry is not None:
            self._used[index] -= entry.size
            return True
        return False

    def audit(self) -> list[str]:
        """Check internal invariants; return a list of violation strings.

        Empty list = healthy. Used by the ``repro check`` differential
        harness to assert that no set ever exceeds its byte budget or
        tag count and that the incremental ``_used`` accounting matches
        a from-scratch re-sum of the entries.
        """
        problems: list[str] = []
        for index, target in enumerate(self._sets):
            actual = sum(entry.size for entry in target.values())
            if actual != self._used[index]:
                problems.append(
                    f"set {index}: tracked used={self._used[index]} "
                    f"but entries sum to {actual}"
                )
            if self._used[index] > self.data_budget:
                problems.append(
                    f"set {index}: used {self._used[index]} exceeds "
                    f"data budget {self.data_budget}"
                )
            if len(target) > self.max_tags:
                problems.append(
                    f"set {index}: {len(target)} tags exceed "
                    f"max_tags {self.max_tags}"
                )
            for line, entry in target.items():
                if not 1 <= entry.size <= self.line_size:
                    problems.append(
                        f"set {index}: line {line} has bad size "
                        f"{entry.size}"
                    )
        return problems

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def occupancy(self) -> float:
        """Fraction of the data budget in use (mean over sets)."""
        if not self._sets:
            return 0.0
        used = sum(self._used)
        return used / (self.data_budget * len(self._sets))
