"""GDDR5 memory-controller and DRAM-channel model.

Each controller owns 16 banks and one data bus. Requests pay row-buffer
timing (tCL on a row hit, tRP+tRCD+tCL on a conflict — Table 1's Hynix
GDDR5 parameters) on their bank and then occupy the data bus for one
reservation per burst. Bandwidth utilization — the paper's Figure 8
metric, "the fraction of total DRAM cycles that the DRAM data bus is
busy" — is the bus timeline's busy fraction.

Compression enters in two ways: compressed lines reserve fewer bursts,
and (Section 4.3.2) every access first consults the metadata cache;
an MD miss inserts an extra metadata fetch on the same channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import DramTiming
from repro.memory.metadata import MetadataCache
from repro.memory.timeline import Timeline

#: DRAM row-buffer size in cache lines (2 KB row / 128 B line).
LINES_PER_ROW = 16


@dataclass
class DramStats:
    """Aggregate counters for one memory controller."""

    reads: int = 0
    writes: int = 0
    read_bursts: int = 0
    write_bursts: int = 0
    metadata_bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def total_bursts(self) -> int:
        return self.read_bursts + self.write_bursts + self.metadata_bursts

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


#: FR-FCFS approximation: a request counts as a row hit if its row was
#: served on the same bank within this many cycles. The reservation-based
#: model serves requests in arrival order, whereas a real FR-FCFS queue
#: reorders to batch same-row requests; the window recreates that
#: batching for the interleaved multi-stream traffic GPUs generate.
ROW_HIT_WINDOW = 256.0

#: Row-history entries tracked per bank (bounded like a real FR-FCFS
#: queue's reach).
MAX_TRACKED_ROWS = 8


class _Bank:
    __slots__ = ("rows", "ready_at")

    def __init__(self) -> None:
        # row -> last service time, insertion-ordered for pruning.
        self.rows: dict[int, float] = {}
        self.ready_at = 0.0


class MemoryController:
    """One GDDR5 channel: banks, a shared data bus and an MD cache.

    Args:
        mc_id: Channel index (used only for diagnostics).
        burst_cycles: Core cycles one 32 B burst occupies the data bus
            (derived from the configured peak bandwidth).
        timing: GDDR5 timing parameters.
        n_banks: Banks per channel.
        metadata_cache: MD cache, or ``None`` when the design stores
            data uncompressed (no metadata needed).
    """

    def __init__(
        self,
        mc_id: int,
        burst_cycles: float,
        timing: DramTiming,
        n_banks: int = 16,
        metadata_cache: MetadataCache | None = None,
    ) -> None:
        self.mc_id = mc_id
        self.burst_cycles = burst_cycles
        self.timing = timing
        self.bus = Timeline()
        self.banks = [_Bank() for _ in range(n_banks)]
        self.metadata_cache = metadata_cache
        self.stats = DramStats()
        #: Observability layer (repro.obs.RunObservation); None = off.
        self.obs = None

    # ------------------------------------------------------------------
    def _bank_and_row(self, local_line: int) -> tuple[_Bank, int]:
        bank_index = (local_line // LINES_PER_ROW) % len(self.banks)
        row = local_line // (LINES_PER_ROW * len(self.banks))
        return self.banks[bank_index], row

    def _row_latency(self, bank: _Bank, row: int, at: float) -> int:
        last = bank.rows.get(row)
        if last is not None and at - last <= ROW_HIT_WINDOW:
            self.stats.row_hits += 1
            bank.rows[row] = at
            return self.timing.row_hit_latency
        self.stats.row_misses += 1
        latency = (
            self.timing.row_empty_latency
            if not bank.rows
            else self.timing.row_miss_latency
        )
        if last is not None:
            del bank.rows[row]
        bank.rows[row] = at
        if len(bank.rows) > MAX_TRACKED_ROWS:
            oldest = next(iter(bank.rows))
            del bank.rows[oldest]
        return latency

    def access(
        self, at: float, local_line: int, bursts: int, is_write: bool
    ) -> float:
        """Serve one line transfer; returns the data-ready time.

        ``local_line`` is the channel-local line index (global line
        address with the channel bits stripped by the caller), so row
        locality reflects the interleaving actually seen by this channel.
        """
        if bursts < 1:
            raise ValueError(f"bursts must be >= 1, got {bursts}")
        at = self._metadata_fetch(at, local_line)
        bank, row = self._bank_and_row(local_line)
        start = max(at, bank.ready_at)
        latency = self._row_latency(bank, row, start)
        transfer = bursts * self.burst_cycles
        # Column-access latency pipelines with data movement (the next CAS
        # issues while earlier data is still on the bus), so the bus is
        # reserved from the bank-ready point and the row latency only
        # extends this request's completion time.
        bus_start = self.bus.reserve(start, transfer)
        done = bus_start + transfer + latency
        # Bank occupancy throttles throughput: back-to-back column accesses
        # on an open row are tCCD apart; a row change holds the bank for
        # the activate-to-activate window (~tRC); writes add recovery.
        row_hit = latency == self.timing.row_hit_latency
        hold = self.timing.tCDLR if row_hit else self.timing.tRC
        bank.ready_at = start + hold + (self.timing.tWR if is_write else 0)
        if is_write:
            self.stats.writes += 1
            self.stats.write_bursts += bursts
        else:
            self.stats.reads += 1
            self.stats.read_bursts += bursts
        if self.obs is not None:
            self.obs.record_dram(self.mc_id, bursts, is_write,
                                 bus_start - at)
        return done

    def _metadata_fetch(self, at: float, local_line: int) -> float:
        """Consult the MD cache; a miss fetches metadata from DRAM first."""
        if self.metadata_cache is None:
            return at
        lookup = self.metadata_cache.lookup(local_line)
        if lookup.hit:
            return at
        self.stats.metadata_bursts += lookup.extra_bursts
        # Metadata lives in a dense reserved region (~0.2% of DRAM): one
        # 64 B entry per `lines_per_entry` data lines, entries striped
        # across banks so metadata fetches never pile onto one bank.
        entry = local_line // self.metadata_cache.lines_per_entry
        bank = self.banks[entry % len(self.banks)]
        row = (1 << 30) + entry // 32  # 32 entries per 2 KB row
        start = max(at, bank.ready_at)
        latency = self._row_latency(bank, row, start)
        transfer = lookup.extra_bursts * self.burst_cycles
        bus_start = self.bus.reserve(start, transfer)
        bank.ready_at = start + self.timing.tCDLR
        return bus_start + transfer + latency

    # ------------------------------------------------------------------
    def utilization(self, elapsed: float) -> float:
        """Busy fraction of this channel's data bus."""
        return self.bus.utilization(elapsed)
