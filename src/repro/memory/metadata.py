"""The compression metadata (MD) cache of Section 4.3.2.

With bandwidth compression the memory controller must know how many
bursts each line occupies *before* reading it. The paper reserves ~8 MB
of DRAM for per-line burst-count metadata and fronts it with a small
8 KB 4-way MD cache near the controller; an MD miss costs one extra DRAM
access. The paper reports an 85% average hit rate (>99% for many
applications), making the second DRAM access rare.

One metadata cache line covers ``lines_per_entry`` consecutive data
lines (4 bits of burst count per line), which is where the MD cache's
spatial locality — and its high hit rate on streaming workloads — comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache


@dataclass(frozen=True)
class MdLookup:
    """Outcome of one metadata lookup."""

    hit: bool
    #: Extra DRAM bursts needed to fetch the metadata line on a miss.
    extra_bursts: int


class MetadataCache:
    """The on-chip cache of per-line compression metadata.

    Args:
        size_bytes: Total capacity (paper: 8 KB).
        assoc: Associativity (paper: 4).
        entry_bytes: Metadata cache line size.
        lines_per_entry: Data lines covered by one metadata entry.
    """

    def __init__(
        self,
        size_bytes: int = 8 * 1024,
        assoc: int = 4,
        entry_bytes: int = 64,
        lines_per_entry: int = 128,
    ) -> None:
        n_entries = size_bytes // entry_bytes
        n_sets = max(1, n_entries // assoc)
        self._cache = Cache(n_sets=n_sets, assoc=assoc, name="md-cache")
        self.lines_per_entry = lines_per_entry
        self.entry_bytes = entry_bytes

    def lookup(self, line: int) -> MdLookup:
        """Consult the metadata for data line ``line``.

        A miss allocates the metadata entry and reports one extra DRAM
        burst's worth of traffic (a 64 B metadata line fits in two 32 B
        bursts; we charge the transfer rounded up from ``entry_bytes``).
        """
        entry = line // self.lines_per_entry
        result = self._cache.access(entry)
        if result.hit:
            return MdLookup(hit=True, extra_bursts=0)
        extra = max(1, -(-self.entry_bytes // 32))
        return MdLookup(hit=False, extra_bursts=extra)

    @property
    def hit_rate(self) -> float:
        return self._cache.stats.hit_rate

    @property
    def accesses(self) -> int:
        return self._cache.stats.accesses

    @property
    def misses(self) -> int:
        return self._cache.stats.misses
