"""Activity-based energy model (the GPUWattch/CACTI substitute).

Figure 9's claims are *relative*: compression reduces energy mainly by
cutting DRAM traffic and execution time, CABA costs a few percent more
than dedicated hardware because assist warps run through the general
pipelines, and the MD cache adds a small overhead. An activity-counter
model with per-event energies plus leakage reproduces exactly those
relationships; the per-event values below are order-of-magnitude figures
for a ~32 nm GPU (events in picojoules, leakage in watts), consistent
with the published GPUWattch/CACTI breakdowns the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.design import DesignPoint
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) and static power (W)."""

    alu_op_pj: float = 25.0
    sfu_op_pj: float = 100.0
    register_access_pj: float = 6.0
    instruction_issue_pj: float = 12.0
    shared_access_pj: float = 30.0
    l1_access_pj: float = 60.0
    l2_access_pj: float = 180.0
    icnt_flit_pj: float = 80.0
    dram_burst_pj: float = 900.0
    md_cache_access_pj: float = 8.0
    #: Dedicated-hardware BDI-class (de)compression per line (from the
    #: paper's Synopsys 65 nm synthesis scaled to 32 nm — tiny next to a
    #: DRAM access).
    hw_decompress_line_pj: float = 40.0
    hw_compress_line_pj: float = 80.0
    #: Static (leakage + constant) power for the whole chip and DRAM.
    chip_static_w: float = 18.0
    dram_static_w: float = 8.0


@dataclass
class EnergyBreakdown:
    """Energy per component, in joules."""

    core_dynamic: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    interconnect: float = 0.0
    dram_dynamic: float = 0.0
    compression: float = 0.0
    metadata: float = 0.0
    static: float = 0.0
    dram_static: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.core_dynamic + self.l1 + self.l2 + self.interconnect
            + self.dram_dynamic + self.compression + self.metadata
            + self.static + self.dram_static
        )

    @property
    def dram_power_share(self) -> float:
        """DRAM energy (dynamic + static) as a fraction of total."""
        if self.total == 0:
            return 0.0
        return (self.dram_dynamic + self.dram_static) / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "core_dynamic": self.core_dynamic,
            "l1": self.l1,
            "l2": self.l2,
            "interconnect": self.interconnect,
            "dram_dynamic": self.dram_dynamic,
            "compression": self.compression,
            "metadata": self.metadata,
            "static": self.static,
            "dram_static": self.dram_static,
            "total": self.total,
        }


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from a finished simulation."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params if params is not None else EnergyParams()

    def evaluate(self, result, config: GPUConfig, design: DesignPoint) -> EnergyBreakdown:
        """Energy for one :class:`~repro.gpu.simulator.SimulationResult`."""
        p = self.params
        stats = result.stats
        memory = result.memory
        counters = stats.counters()
        pj = EnergyBreakdown()

        pj.core_dynamic = (
            counters["alu_ops"] * p.alu_op_pj
            + counters["sfu_ops"] * p.sfu_op_pj
            + counters["instructions"] * p.instruction_issue_pj
            + (counters["register_reads"] + counters["register_writes"])
            * p.register_access_pj
            + counters["shared_accesses"] * p.shared_access_pj
        )
        l1_accesses = memory.stats.l1_loads + memory.stats.l1_stores
        pj.l1 = l1_accesses * p.l1_access_pj
        pj.l2 = memory.stats.l2_accesses * p.l2_access_pj
        pj.interconnect = memory.crossbar.total_flits() * p.icnt_flit_pj

        bursts = memory.dram_bursts()
        pj.dram_dynamic = (bursts["read"] + bursts["write"]) * p.dram_burst_pj
        pj.metadata = bursts["metadata"] * p.dram_burst_pj
        md_accesses = sum(
            mc.metadata_cache.accesses
            for mc in memory.mcs
            if mc.metadata_cache is not None
        )
        pj.metadata += md_accesses * p.md_cache_access_pj

        pj.compression = self._compression_energy(memory, design)

        seconds = stats.cycles / (config.core_clock_ghz * 1e9)
        # Scale leakage with machine size relative to the Table-1 chip.
        size_scale = config.n_sms / 15
        pj_total_static = p.chip_static_w * size_scale * seconds * 1e12
        pj_dram_static = p.dram_static_w * (config.n_mcs / 6) * seconds * 1e12

        joule = 1e-12
        return EnergyBreakdown(
            core_dynamic=pj.core_dynamic * joule,
            l1=pj.l1 * joule,
            l2=pj.l2 * joule,
            interconnect=pj.interconnect * joule,
            dram_dynamic=pj.dram_dynamic * joule,
            compression=pj.compression * joule,
            metadata=pj.metadata * joule,
            static=pj_total_static * joule,
            dram_static=pj_dram_static * joule,
        )

    def _compression_energy(self, memory, design: DesignPoint) -> float:
        """Dedicated-hardware (de)compression energy in pJ.

        CABA's compression work is already charged through its assist
        instructions (issue + ALU + register + L1 energy), which is why
        CABA lands a few percent above HW designs in total energy; the
        ideal design pays nothing.
        """
        if not design.compression_enabled or design.ideal:
            return 0.0
        p = self.params
        energy = 0.0
        if design.decompress_at in ("mc", "core_hw"):
            energy += memory.stats.lines_decompressed * p.hw_decompress_line_pj
        if design.compress_at in ("mc_hw", "core_hw"):
            energy += memory.stats.lines_compressed * p.hw_compress_line_pj
        return energy
