"""Activity-based energy model (GPUWattch/CACTI substitute)."""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
