"""Simulator conservation invariants, checked on real replayed runs.

Every check replays a (small, traced) simulation with ``keep_raw=True``
and asserts an accounting identity that must hold by construction:

* **Issue slots** — the stall ledger's per-SM counts regroup exactly to
  ``SmStats.slots``, and every SM attributes exactly
  ``cycles * schedulers_per_sm`` slots: no issue slot is lost or
  double-charged.
* **MSHRs** — every allocated MSHR is released (completed runs), or
  still accounted in the in-flight maps (truncated runs), and the used
  counters match the in-flight maps entry for entry.
* **Interconnect flits** — flits counted in equal the port-cycles
  reserved: each flit occupies exactly one cycle of one port timeline.
* **DRAM bursts** — bursts charged to the stats equal the data-bus
  cycles reserved, channel by channel.
* **Compressed caches** — no set ever exceeds its byte budget or tag
  count, and incremental occupancy accounting matches a re-sum
  (:meth:`~repro.memory.compressed_cache.CompressedCache.audit`).
* **Host link** (capacity mode only) — spill bursts charged to the
  host-link stats equal the host-bus cycles reserved, so every spilled
  access the hierarchy observed also paid for host bandwidth.

These identities connect independently-maintained counters, so a bug in
either side (or a code path that forgets to charge one) breaks them.

:func:`check_scenarios` extends the same replay/check loop to the
diversity scenarios: capacity-mode runs with a budget tight enough to
force real spill traffic, and prefetch/memoization scenario runs (exact
and interval-sampled) — proving the ledger still closes when assist
warps come from a scenario controller rather than the compression
subroutine library, and that extrapolated sampled slots stay accounted.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.harness.runner import clear_caches, run_app
from repro.memory.compressed_cache import CompressedCache
from repro.verify.report import CheckResult
from repro.workloads.tracegen import TraceScale

#: Apps spanning memory-bound (PVC), compute/memory mixed (MM) and
#: compute-bound (CONS) behaviour — same trio the golden-stats suite
#: replays.
DEFAULT_APPS: tuple[str, ...] = ("PVC", "MM", "CONS")

DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "bdi", "fpc", "cpack", "fvc", "bestofall",
)


def _check_run(
    label: str, result, config: GPUConfig
) -> list[CheckResult]:
    """All conservation checks for one traced keep_raw run."""
    raw = result.raw
    memory = raw.memory
    stats = raw.stats
    obs = raw.obs
    out: list[CheckResult] = []

    # 1. Issue-slot conservation (ledger vs stats, and total attribution).
    failure = ""
    for sm_id, sm in enumerate(stats.sms):
        if obs.ledger.slot_view(sm_id) != sm.slots:
            failure = (
                f"SM {sm_id}: ledger {obs.ledger.slot_view(sm_id)} != "
                f"stats {sm.slots}"
            )
            break
        expected = stats.cycles * config.schedulers_per_sm
        attributed = obs.ledger.attributed_slots(sm_id)
        if attributed != expected:
            failure = (
                f"SM {sm_id}: {attributed} slots attributed, expected "
                f"{expected} (= {stats.cycles} cycles x "
                f"{config.schedulers_per_sm} schedulers)"
            )
            break
    out.append(CheckResult(
        name=f"invariant.slots.{label}", passed=not failure,
        checked=len(stats.sms), detail=failure,
    ))

    # 2. MSHR conservation.
    traffic = memory.stats
    inflight = sum(len(per_sm) for per_sm in memory._inflight)
    failure = ""
    if traffic.mshr_allocs != traffic.mshr_releases + inflight:
        failure = (
            f"{traffic.mshr_allocs} allocs != {traffic.mshr_releases} "
            f"releases + {inflight} in flight"
        )
    elif not raw.truncated and inflight:
        failure = f"completed run left {inflight} MSHRs in flight"
    else:
        for sm_id, per_sm in enumerate(memory._inflight):
            if memory._mshr_used[sm_id] != len(per_sm):
                failure = (
                    f"SM {sm_id}: used counter "
                    f"{memory._mshr_used[sm_id]} != "
                    f"{len(per_sm)} in-flight entries"
                )
                break
    out.append(CheckResult(
        name=f"invariant.mshr.{label}", passed=not failure,
        checked=traffic.mshr_allocs, detail=failure,
    ))

    # 3. Interconnect flit conservation (each flit = one port-cycle).
    xbar = memory.crossbar
    counted = xbar.request_flits + xbar.reply_flits
    reserved = sum(
        port.busy_time
        for port in xbar._request_ports + xbar._reply_ports
    )
    failure = ""
    if not math.isclose(counted, reserved, rel_tol=1e-9, abs_tol=1e-6):
        failure = (
            f"{counted} flits counted but {reserved} port-cycles reserved"
        )
    out.append(CheckResult(
        name=f"invariant.flits.{label}", passed=not failure,
        checked=counted, detail=failure,
    ))

    # 4. DRAM burst conservation, per channel.
    failure = ""
    bursts = 0
    for mc in memory.mcs:
        bursts += mc.stats.total_bursts
        charged = mc.stats.total_bursts * mc.burst_cycles
        if not math.isclose(charged, mc.bus.busy_time,
                            rel_tol=1e-9, abs_tol=1e-6):
            failure = (
                f"MC {mc.mc_id}: {mc.stats.total_bursts} bursts charge "
                f"{charged} bus cycles but {mc.bus.busy_time} reserved"
            )
            break
    out.append(CheckResult(
        name=f"invariant.dram.{label}", passed=not failure,
        checked=bursts, detail=failure,
    ))

    # 5. Compressed-cache budgets (only present under tag_mult > 1).
    compressed = [
        cache
        for cache in list(memory._l1s) + list(memory._l2_banks)
        if isinstance(cache, CompressedCache)
    ]
    problems = [p for cache in compressed for p in cache.audit()]
    out.append(CheckResult(
        name=f"invariant.cache.{label}",
        passed=not problems,
        checked=len(compressed),
        detail="; ".join(problems[:3]),
    ))

    # 6. Host-link burst conservation (capacity mode only): every spill
    #    burst charged to the stats reserved host-bus cycles.
    host = getattr(memory, "host", None)
    if host is not None:
        charged = host.stats.total_bursts * host.burst_cycles
        failure = ""
        if not math.isclose(charged, host.bus.busy_time,
                            rel_tol=1e-9, abs_tol=1e-6):
            failure = (
                f"{host.stats.total_bursts} host bursts charge {charged} "
                f"bus cycles but {host.bus.busy_time} reserved"
            )
        elif (host.stats.reads + host.stats.writes) == 0 \
                and host.stats.total_bursts:
            failure = (
                f"{host.stats.total_bursts} host bursts but no host "
                "accesses counted"
            )
        out.append(CheckResult(
            name=f"invariant.hostlink.{label}", passed=not failure,
            checked=host.stats.total_bursts, detail=failure,
        ))
    return out


def check_invariants(
    apps: Sequence[str] = DEFAULT_APPS,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
) -> list[CheckResult]:
    """Replay ``apps x algorithms`` traced runs and check conservation.

    Each pair runs the CABA design for that algorithm; additionally one
    compressed-cache design (L2, 2x tags) runs per app so the cache
    budget invariant sees a populated :class:`CompressedCache`.
    """
    config = config or GPUConfig.small()
    scale = scale or TraceScale(work=0.25, waves=0.25)
    results: list[CheckResult] = []
    clear_caches()
    for app in apps:
        design_points = [
            designs.caba(algorithm) for algorithm in algorithms
        ]
        design_points.append(designs.caba_cache("l2", 2))
        for design in design_points:
            run = run_app(
                app, design, config=config, scale=scale,
                use_cache=False, keep_raw=True, trace=True,
            )
            results.extend(
                _check_run(f"{app}.{design.name}", run, config)
            )
    return results


def check_scenarios(
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
    budget_fraction: float = 0.25,
) -> list[CheckResult]:
    """Conservation checks on capacity-mode and scenario runs.

    Replays, traced with ``keep_raw=True``:

    * capacity-mode PVC under the baseline and under CABA-BDI, with a
      device budget of ``budget_fraction`` of the footprint — tight
      enough that lines really spill *even compressed* and the host
      link carries traffic (a vacuity check asserts both), so the
      host-link burst identity is exercised for real on both the plain
      and the compressed-DRAM spill paths;
    * the prefetch and memoization scenarios with assist warps on,
      exact mode — the ledger/MSHR/flit/DRAM identities must close when
      assist warps come from scenario controllers;
    * both scenarios again under interval sampling — extrapolated slots
      must stay attributed (charged to the extrapolation pseudo-warp),
      keeping the slot identity exact on sampled runs.
    """
    from repro.gpu.sampling import SampleConfig
    from repro.harness.runner import run_spec, scenario_spec
    from repro.memory.hostlink import CapacityConfig
    from repro.workloads import get_app
    from repro.workloads.tracegen import footprint_extents

    config = config or GPUConfig.small()
    scale = scale or TraceScale(work=0.25, waves=0.25)
    results: list[CheckResult] = []
    clear_caches()

    # -- Capacity mode: budget at a fraction of the footprint ----------
    extents = footprint_extents(get_app("PVC"), config, scale)
    total_lines = sum(lines for _, lines in extents)
    budget = max(
        config.line_size,
        int(total_lines * config.line_size * budget_fraction),
    )
    for design in (designs.base(), designs.caba("bdi")):
        run = run_app(
            "PVC", design, config=config, scale=scale,
            use_cache=False, keep_raw=True, trace=True,
            capacity=CapacityConfig(device_bytes=budget),
        )
        label = f"capacity.PVC.{design.name}"
        results.extend(_check_run(label, run, config))
        cap = run.capacity or {}
        vacuous = (
            cap.get("spill_lines", 0) <= 0
            or cap.get("host_bursts", 0) <= 0
        )
        results.append(CheckResult(
            name=f"invariant.spill.{label}",
            passed=not vacuous,
            checked=cap.get("host_bursts", 0),
            detail=(
                f"budget {budget} B spilled {cap.get('spill_lines', 0)} "
                f"lines, {cap.get('host_bursts', 0)} host bursts"
                if vacuous else ""
            ),
        ))

    # -- Prefetch/memoization scenarios: exact and sampled -------------
    sample = SampleConfig(warmup=100, measure=300, skip=1200)
    for kind in ("prefetch", "memoization"):
        for mode, knob in (("exact", None), ("sampled", sample)):
            spec = scenario_spec(kind, config, sample=knob)
            run = run_spec(
                spec, use_cache=False, keep_raw=True, trace=True,
            )
            label = f"scenario.{kind}.{mode}"
            results.extend(_check_run(label, run, config))
            stats = run.scenario or {}
            active = (
                stats.get("prefetches_issued", 0) > 0
                if kind == "prefetch"
                else stats.get("lookups", 0) > 0
            )
            results.append(CheckResult(
                name=f"invariant.assist.{label}",
                passed=active,
                checked=stats.get(
                    "prefetches_issued", stats.get("lookups", 0)
                ),
                detail="" if active else (
                    f"assist controller idle in {kind} run: {stats}"
                ),
            ))
    return results
