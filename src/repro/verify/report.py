"""Check results and report rendering for the differential harness.

Every verification pass (round-trip fuzzing, cross-backend differential
testing, simulator conservation invariants) reduces to a flat list of
:class:`CheckResult` rows; :class:`CheckReport` aggregates them and
renders the terminal report ``repro check`` prints. Keeping the result
type dumb (name / passed / detail / units checked) lets the CLI exit
code, the report text and the test assertions all read the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named verification check.

    Attributes:
        name: Stable dotted identifier, e.g. ``"roundtrip.bdi.zeros"``
            or ``"invariant.mshr.PVC.bestofall"``. Failures are reported
            by this name, so it must be specific enough to act on.
        passed: Whether the check held.
        checked: How many units were examined (lines fuzzed, SMs
            audited, ...) — lets the report show coverage, not just
            pass/fail.
        detail: Human-readable elaboration; on failure it carries the
            first counterexample.
    """

    name: str
    passed: bool
    checked: int = 0
    detail: str = ""


@dataclass
class CheckReport:
    """An ordered collection of check results plus rendering."""

    results: list[CheckResult] = field(default_factory=list)

    def extend(self, results: list[CheckResult]) -> None:
        self.results.extend(results)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def checked(self) -> int:
        return sum(r.checked for r in self.results)

    def render(self, verbose: bool = False) -> str:
        """The terminal report.

        Groups results by their first name component (``roundtrip``,
        ``differential``, ``invariant``), prints one summary line per
        group, and lists every failing check by full name with its
        counterexample. ``verbose`` additionally lists passing checks.
        """
        lines: list[str] = []
        groups: dict[str, list[CheckResult]] = {}
        for result in self.results:
            groups.setdefault(result.name.split(".", 1)[0], []).append(
                result
            )
        for group, rows in groups.items():
            passed = sum(1 for r in rows if r.passed)
            units = sum(r.checked for r in rows)
            status = "ok" if passed == len(rows) else "FAIL"
            lines.append(
                f"{group:<14} {status:<4} "
                f"{passed}/{len(rows)} checks, {units} units"
            )
            shown = rows if verbose else [r for r in rows if not r.passed]
            for row in shown:
                mark = "pass" if row.passed else "FAIL"
                detail = f" — {row.detail}" if row.detail else ""
                lines.append(f"  {mark} {row.name}{detail}")
        lines.append("")
        if self.ok:
            lines.append(
                f"all {len(self.results)} checks passed "
                f"({self.checked} units)"
            )
        else:
            names = ", ".join(r.name for r in self.failures)
            lines.append(
                f"{len(self.failures)} of {len(self.results)} checks "
                f"FAILED: {names}"
            )
        return "\n".join(lines)
