"""Sampled-vs-exact simulator differential (``repro check``).

Interval sampling (:mod:`repro.gpu.sampling`) trades accuracy for
speed under a documented bound: at the default 10 % detail fraction the
headline figure metrics — IPC, DRAM bandwidth utilization, compression
ratio — stay within **2 %** of the exact run. This pass enforces that
bound on the calibrated matrix, plus the structural guarantees sampling
makes exactly:

* ``parent_instructions`` matches the exact run bit-for-bit (sampling
  extrapolates *cycles*, never work), and
* sampled runs are deterministic (two sampled runs are identical).

The matrix is pinned: the default machine (``GPUConfig.small()``, the
same one ``run_app`` uses) at default trace scale, on (PVC, MM) x
(Base, CABA-BDI) minus MM-CABA-BDI. Points outside it are not
certified — runs much shorter than a few sampling periods (CONS),
drain-tail-heavy short CABA runs (MM-CABA-BDI at ~2.2 periods, 2.8 %
IPC), and the full Table-1 machine (whose wider DRAM subsystem makes
the utilization-normalized charge underestimate skipped cycles) sit
above the bound, which is exactly why the bound is enforced on a fixed
matrix rather than assumed globally. The knobs (machine, scale,
tolerance) exist for experiments; the defaults are the contract.
"""

from __future__ import annotations

from typing import Sequence

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.harness.runner import run_app
from repro.verify.report import CheckResult
from repro.workloads.tracegen import TraceScale

#: The calibrated certification matrix (app, design factory): both
#: paper-central apps, with and without assist warps. MM-CABA-BDI is
#: excluded (see module docstring).
DEFAULT_POINTS: tuple = (
    ("PVC", designs.base),
    ("PVC", lambda: designs.caba("bdi")),
    ("MM", designs.base),
)

#: The explicit certified matrix: (app, design name) pairs the 2 %
#: bound is calibrated for — on the certified machine and trace scale
#: only. Everything else is *uncertified*: MM-CABA-BDI (~2.8 % IPC
#: drain-tail error), CONS (too few sampling periods), the full
#: Table-1 machine, non-default scales. Requesting certification of an
#: uncertified point is a named failure, never a silent pass or skip.
CERTIFIED_POINTS: frozenset = frozenset(
    (app, factory().name) for app, factory in DEFAULT_POINTS
)


class UncertifiedSamplingPointError(LookupError):
    """Certification was requested for an (app, design, machine, scale)
    point outside the calibrated sampling matrix. The 2 % bound is a
    measured property of specific points, not a global guarantee; an
    uncertified point has no bound to enforce, so the request itself is
    the error."""


def _machine_certified(config: GPUConfig, scale: TraceScale) -> bool:
    """The bound is calibrated on the default machine at default trace
    scale only (the same point ``run_app`` defaults to)."""
    return config == GPUConfig.small() and scale == TraceScale()


def is_certified(
    app: str,
    design_name: str,
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
) -> bool:
    """Whether the 2 % sampling bound is certified for this point."""
    config = config or GPUConfig.small()
    scale = scale or TraceScale()
    return (
        _machine_certified(config, scale)
        and (app, design_name) in CERTIFIED_POINTS
    )


def require_certified(
    app: str,
    design_name: str,
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
) -> None:
    """Raise :class:`UncertifiedSamplingPointError` unless the point is
    in the certified matrix on the certified machine/scale."""
    if is_certified(app, design_name, config, scale):
        return
    config = config or GPUConfig.small()
    scale = scale or TraceScale()
    if not _machine_certified(config, scale):
        why = "machine/scale differs from the calibrated default"
    else:
        why = (
            "the point is outside the calibrated matrix "
            f"({sorted(CERTIFIED_POINTS)})"
        )
    raise UncertifiedSamplingPointError(
        f"sampling error bound is not certified for ({app}, "
        f"{design_name}): {why}; run with certify=False to measure an "
        "uncertified point experimentally"
    )


def parse_point(text: str) -> tuple:
    """Parse an ``APP@DESIGN`` request (e.g. ``MM@CABA-BDI``) into an
    (app, design factory) matrix point. ``DESIGN`` is ``Base`` or
    ``CABA-<ALGO>``, case-insensitive."""
    app, sep, design_name = text.partition("@")
    if not sep or not app or not design_name:
        raise ValueError(f"bad sampling point {text!r} (want APP@DESIGN, "
                         "e.g. MM@Base or PVC@CABA-BDI)")
    lowered = design_name.lower()
    if lowered == "base":
        return app, designs.base
    if lowered.startswith("caba-"):
        from repro.compression import ALGORITHMS

        algorithm = lowered[len("caba-"):]
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r} in "
                             f"sampling point {text!r} "
                             f"(want one of {sorted(ALGORITHMS)})")
        return app, (lambda algorithm=algorithm: designs.caba(algorithm))
    raise ValueError(f"bad design {design_name!r} in sampling point "
                     f"{text!r} (want Base or CABA-<algorithm>)")

#: Relative error bound on each certified metric, at the default
#: 10 % detail fraction.
TOLERANCE = 0.02

#: The metrics the bound covers (attribute names on RunResult).
METRICS = ("ipc", "bandwidth_utilization", "compression_ratio")


def _relerr(sampled: float, exact: float) -> float:
    if exact == 0.0:
        return abs(sampled)
    return abs(sampled - exact) / abs(exact)


def sampling_differential(
    points: Sequence[tuple] = DEFAULT_POINTS,
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
    sample: SampleConfig | None = None,
    tolerance: float = TOLERANCE,
    certify: bool = True,
) -> list[CheckResult]:
    """Run each matrix point exactly and sampled; bound the deltas.

    With ``certify=True`` (the default — what ``repro check`` enforces)
    every requested point must be in :data:`CERTIFIED_POINTS` on the
    certified machine/scale; an uncertified point produces a *failed*
    check naming :class:`UncertifiedSamplingPointError` instead of
    silently measuring a bound nobody calibrated. ``certify=False`` is
    the experimental mode: measure any point, enforce ``tolerance``.
    """
    config = config or GPUConfig.small()
    scale = scale or TraceScale()
    sample = sample or SampleConfig()
    results: list[CheckResult] = []
    for app, factory in points:
        design = factory()
        if certify:
            try:
                require_certified(app, design.name, config, scale)
            except UncertifiedSamplingPointError as exc:
                results.append(CheckResult(
                    name=f"sampling.certified.{app}.{design.name}",
                    passed=False,
                    checked=1,
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                continue
        exact = run_app(app, design, config=config, scale=scale,
                        use_cache=False, sample=None)
        sampled = run_app(app, design, config=config, scale=scale,
                          use_cache=False, sample=sample)
        replay = run_app(app, design, config=config, scale=scale,
                         use_cache=False, sample=sample)
        failures = []
        for metric in METRICS:
            err = _relerr(getattr(sampled, metric), getattr(exact, metric))
            if err > tolerance:
                failures.append(
                    f"{metric} off by {err:.2%} (> {tolerance:.0%}): "
                    f"sampled {getattr(sampled, metric):.6g} vs exact "
                    f"{getattr(exact, metric):.6g}"
                )
        # Parent instructions only: assist-warp instructions are not
        # credited during skips (framework overhead, excluded from IPC).
        sampled_parents = sampled.instructions - sampled.assist_instructions
        exact_parents = exact.instructions - exact.assist_instructions
        if sampled_parents != exact_parents:
            failures.append(
                "parent instructions diverge: sampled "
                f"{sampled_parents} vs exact {exact_parents}"
            )
        if (replay.cycles, replay.ipc) != (sampled.cycles, sampled.ipc):
            failures.append(
                f"sampled run not deterministic: {replay.cycles} vs "
                f"{sampled.cycles} cycles on replay"
            )
        results.append(CheckResult(
            name=f"sampling.differential.{app}.{design.name}",
            passed=not failures,
            checked=len(METRICS) + 2,
            detail="; ".join(failures),
        ))
    return results
