"""Sampled-vs-exact simulator differential (``repro check``).

Interval sampling (:mod:`repro.gpu.sampling`) trades accuracy for
speed under a documented bound: at the default 10 % detail fraction the
headline figure metrics — IPC, DRAM bandwidth utilization, compression
ratio — stay within **2 %** of the exact run. This pass enforces that
bound on the calibrated matrix, plus the structural guarantees sampling
makes exactly:

* ``parent_instructions`` matches the exact run bit-for-bit (sampling
  extrapolates *cycles*, never work), and
* sampled runs are deterministic (two sampled runs are identical).

The matrix is pinned: the default machine (``GPUConfig.small()``, the
same one ``run_app`` uses) at default trace scale, on (PVC, MM) x
(Base, CABA-BDI) minus MM-CABA-BDI. Points outside it are not
certified — runs much shorter than a few sampling periods (CONS),
drain-tail-heavy short CABA runs (MM-CABA-BDI at ~2.2 periods, 2.8 %
IPC), and the full Table-1 machine (whose wider DRAM subsystem makes
the utilization-normalized charge underestimate skipped cycles) sit
above the bound, which is exactly why the bound is enforced on a fixed
matrix rather than assumed globally. The knobs (machine, scale,
tolerance) exist for experiments; the defaults are the contract.
"""

from __future__ import annotations

from typing import Sequence

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.harness.runner import run_app
from repro.verify.report import CheckResult
from repro.workloads.tracegen import TraceScale

#: The calibrated certification matrix (app, design factory): both
#: paper-central apps, with and without assist warps. MM-CABA-BDI is
#: excluded (see module docstring).
DEFAULT_POINTS: tuple = (
    ("PVC", designs.base),
    ("PVC", lambda: designs.caba("bdi")),
    ("MM", designs.base),
)

#: Relative error bound on each certified metric, at the default
#: 10 % detail fraction.
TOLERANCE = 0.02

#: The metrics the bound covers (attribute names on RunResult).
METRICS = ("ipc", "bandwidth_utilization", "compression_ratio")


def _relerr(sampled: float, exact: float) -> float:
    if exact == 0.0:
        return abs(sampled)
    return abs(sampled - exact) / abs(exact)


def sampling_differential(
    points: Sequence[tuple] = DEFAULT_POINTS,
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
    sample: SampleConfig | None = None,
    tolerance: float = TOLERANCE,
) -> list[CheckResult]:
    """Run each matrix point exactly and sampled; bound the deltas."""
    config = config or GPUConfig.small()
    scale = scale or TraceScale()
    sample = sample or SampleConfig()
    results: list[CheckResult] = []
    for app, factory in points:
        design = factory()
        exact = run_app(app, design, config=config, scale=scale,
                        use_cache=False, sample=None)
        sampled = run_app(app, design, config=config, scale=scale,
                          use_cache=False, sample=sample)
        replay = run_app(app, design, config=config, scale=scale,
                         use_cache=False, sample=sample)
        failures = []
        for metric in METRICS:
            err = _relerr(getattr(sampled, metric), getattr(exact, metric))
            if err > tolerance:
                failures.append(
                    f"{metric} off by {err:.2%} (> {tolerance:.0%}): "
                    f"sampled {getattr(sampled, metric):.6g} vs exact "
                    f"{getattr(exact, metric):.6g}"
                )
        # Parent instructions only: assist-warp instructions are not
        # credited during skips (framework overhead, excluded from IPC).
        sampled_parents = sampled.instructions - sampled.assist_instructions
        exact_parents = exact.instructions - exact.assist_instructions
        if sampled_parents != exact_parents:
            failures.append(
                "parent instructions diverge: sampled "
                f"{sampled_parents} vs exact {exact_parents}"
            )
        if (replay.cycles, replay.ipc) != (sampled.cycles, sampled.ipc):
            failures.append(
                f"sampled run not deterministic: {replay.cycles} vs "
                f"{sampled.cycles} cycles on replay"
            )
        results.append(CheckResult(
            name=f"sampling.differential.{app}.{design.name}",
            passed=not failures,
            checked=len(METRICS) + 2,
            detail="; ".join(failures),
        ))
    return results
