"""SoA-vs-reference simulator differential (``repro check``).

``REPRO_SOA`` selects between the vectorized warp-state core
(:mod:`repro.gpu.soa`) and the pure-Python reference issue scan. The
two are contractually byte-identical; this pass replays small traced
runs in both modes and compares everything the paper's figures are
built from — the full stats object (per-SM slot counters included),
memory traffic, and the stall ledger's per-(category, warp) charges.

With numpy unavailable the vectorized core cannot run, so the pass
degrades to a single informational "skipped" result instead of failing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Sequence

from repro import design as designs
from repro.gpu import soa as soa_mod
from repro.gpu.config import GPUConfig
from repro.harness.runner import clear_caches, run_app
from repro.verify.report import CheckResult
from repro.workloads.tracegen import TraceScale

#: Memory-bound + compute-leaning pair; the modes diverge (if they ever
#: do) in the issue scan, which these two stress from opposite sides.
DEFAULT_APPS: tuple[str, ...] = ("PVC", "MM")


@contextmanager
def _soa_mode(flag: str):
    prior = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = flag
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = prior


def _fingerprint(run) -> tuple:
    raw = run.raw
    return (
        repr(raw.stats),
        "".join(repr(sm.__dict__) for sm in raw.stats.sms),
        raw.memory.stats.dram_reads,
        raw.memory.stats.dram_writes,
        raw.obs.export() if raw.obs is not None else None,
    )


def soa_differential(
    apps: Sequence[str] = DEFAULT_APPS,
    algorithm: str = "bdi",
    config: GPUConfig | None = None,
    scale: TraceScale | None = None,
) -> list[CheckResult]:
    """Replay each app in both ``REPRO_SOA`` modes and diff the runs."""
    if soa_mod.np is None:
        return [CheckResult(
            name="soa.differential", passed=True, checked=0,
            detail="numpy unavailable; vectorized core disabled",
        )]
    config = config or GPUConfig.small()
    scale = scale or TraceScale(work=0.25, waves=0.25)
    results: list[CheckResult] = []
    for app in apps:
        design = designs.caba(algorithm)
        prints = {}
        for flag in ("0", "1"):
            with _soa_mode(flag):
                clear_caches()
                run = run_app(
                    app, design, config=config, scale=scale,
                    use_cache=False, keep_raw=True, trace=True,
                )
            prints[flag] = _fingerprint(run)
        reference, vectorized = prints["0"], prints["1"]
        failure = ""
        if vectorized != reference:
            parts = ("stats", "sm_stats", "dram_reads", "dram_writes",
                     "obs")
            diverged = [
                part for part, r, v in
                zip(parts, reference, vectorized) if r != v
            ]
            failure = f"modes diverge in: {', '.join(diverged)}"
        results.append(CheckResult(
            name=f"soa.differential.{app}.{design.name}",
            passed=not failure,
            checked=1,
            detail=failure,
        ))
    return results
