"""Differential correctness harness (``repro check``).

Three independent verification passes over the repository's correctness
surface:

* :mod:`repro.verify.fuzz` — seeded adversarial round-trip fuzzing of
  every compression algorithm, cross-checked against the batch kernels,
* :mod:`repro.verify.differential` — byte-identical agreement of the
  four compressed-size computation paths (scalar, numpy batch, pure
  batch, cached planes) on real application images,
* :mod:`repro.verify.invariants` — conservation laws replayed on traced
  simulation runs (issue slots, MSHRs, flits, DRAM bursts, compressed
  cache budgets),
* :mod:`repro.verify.soa` — byte-identical agreement of the vectorized
  (``REPRO_SOA``) and pure-Python simulator cores on replayed runs
  (skipped gracefully without numpy),
* :mod:`repro.verify.sampling` — bounded-error agreement (≤2 % on IPC /
  bandwidth / compression ratio) of interval-sampled runs against exact
  runs on the calibrated matrix, plus bit-exact parent-instruction
  totals and sampled-run determinism,
* :func:`repro.verify.invariants.check_scenarios` — the same
  conservation laws replayed on capacity-mode runs with real spill
  traffic (host-link bursts = host-bus cycles) and on prefetch /
  memoization scenario runs, exact and interval-sampled.

:func:`run_checks` orchestrates the passes into one
:class:`~repro.verify.report.CheckReport`; the CLI's exit code is
``0`` iff every check passed.
"""

from __future__ import annotations

from typing import Sequence

from repro.verify.differential import differential_check
from repro.verify.differential import DEFAULT_APPS as DIFF_APPS
from repro.verify.fuzz import ALL_ALGORITHMS, fuzz_roundtrip
from repro.verify.generators import GENERATOR_NAMES, make_generator
from repro.verify.invariants import check_invariants, check_scenarios
from repro.verify.invariants import DEFAULT_APPS as INVARIANT_APPS
from repro.verify.report import CheckReport, CheckResult
from repro.verify.sampling import (
    CERTIFIED_POINTS,
    UncertifiedSamplingPointError,
    is_certified,
    parse_point,
    require_certified,
    sampling_differential,
)
from repro.verify.soa import soa_differential

__all__ = [
    "ALL_ALGORITHMS",
    "CERTIFIED_POINTS",
    "CheckReport",
    "CheckResult",
    "GENERATOR_NAMES",
    "UncertifiedSamplingPointError",
    "check_invariants",
    "check_scenarios",
    "differential_check",
    "fuzz_roundtrip",
    "is_certified",
    "make_generator",
    "parse_point",
    "require_certified",
    "run_checks",
    "sampling_differential",
    "soa_differential",
]


def run_checks(
    seed: int = 1,
    lines: int = 256,
    apps: Sequence[str] | None = None,
    algorithms: Sequence[str] | None = None,
    fuzz: bool = True,
    differential: bool = True,
    invariants: bool = True,
    soa: bool = True,
    sampling: bool = True,
    scenarios: bool = True,
    differential_apps: Sequence[str] | None = None,
    differential_lines: int | None = None,
    sampling_points: Sequence[str] | None = None,
) -> CheckReport:
    """Run the selected verification passes and aggregate the results.

    Args:
        seed: Fuzzing seed (every failure replays from it).
        lines: Lines per fuzz generator; the differential pass
            compresses ``max(lines, 512)`` lines per app image unless
            ``differential_lines`` overrides it.
        apps: App image set for the differential and invariant passes
            (defaults per pass: Fig-11 spanning set / golden trio).
        algorithms: Algorithm subset (default: all five).
        fuzz / differential / invariants / soa / sampling / scenarios:
            Enable individual passes. The sampling differential and the
            scenario pass ignore ``apps``/``algorithms``: the sampling
            certification matrix is pinned (see
            :mod:`repro.verify.sampling`) and the scenario pass replays
            its own capacity/prefetch/memoization runs.
        differential_apps: Override ``apps`` for the differential pass
            only (``repro check --all`` widens it to every app without
            also replaying a simulation per app).
        differential_lines: Override the differential pass's image size.
        sampling_points: ``APP@DESIGN`` strings overriding the sampling
            matrix. Certification is still enforced: requesting an
            uncertified point (e.g. ``MM@CABA-BDI``) fails the report
            with a named :class:`UncertifiedSamplingPointError` check
            rather than measuring an uncalibrated bound or skipping.
    """
    report = CheckReport()
    algorithm_set = tuple(algorithms) if algorithms else ALL_ALGORITHMS
    if fuzz:
        report.extend(fuzz_roundtrip(
            algorithms=algorithm_set,
            lines_per_generator=lines,
            seed=seed,
        ))
    if differential:
        diff_apps = differential_apps or apps
        report.extend(differential_check(
            apps=tuple(diff_apps) if diff_apps else DIFF_APPS,
            algorithms=algorithm_set,
            lines=differential_lines or max(lines, 512),
        ))
    if invariants:
        report.extend(check_invariants(
            apps=tuple(apps) if apps else INVARIANT_APPS,
            algorithms=algorithm_set,
        ))
    if soa:
        from repro.verify.soa import DEFAULT_APPS as SOA_APPS

        report.extend(soa_differential(
            apps=tuple(apps) if apps else SOA_APPS,
            algorithm=algorithm_set[0],
        ))
    if sampling:
        if sampling_points:
            points = tuple(parse_point(text) for text in sampling_points)
            report.extend(sampling_differential(points=points))
        else:
            report.extend(sampling_differential())
    if scenarios:
        report.extend(check_scenarios())
    return report
