"""Seeded adversarial cache-line generators for round-trip fuzzing.

Each generator targets a boundary of one (or several) of the compression
algorithms — BDI's delta-width cutoffs and sign wraparound, FPC's
zero-run and narrow-pattern edges, C-Pack's dictionary eviction and
partial-match precedence, plus plain incompressible noise. The
``data_patterns`` mixtures the workloads actually use are included too,
so fuzzing covers the exact byte distributions the simulator compresses.

Everything is a pure function of ``(seed, line index, line_size)``: the
same seed always reproduces the same lines, so any failure the fuzzer
reports is replayable from its ``(generator, seed, index)`` coordinates
alone.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.workloads.data_patterns import PATTERNS, make_line_generator

#: Word values sitting on two's-complement sign boundaries — the inputs
#: most likely to expose off-by-one signed-range checks in delta codes.
_SIGN_EDGES_BY_WIDTH = {
    1: (0x00, 0x01, 0x7F, 0x80, 0x81, 0xFE, 0xFF),
    2: (0x0000, 0x0001, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF),
    4: (0, 1, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFE,
        0xFFFFFFFF),
    8: (0, 1, 0x7FFFFFFFFFFFFFFF, 0x8000000000000000,
        0x8000000000000001, 0xFFFFFFFFFFFFFFFE, 0xFFFFFFFFFFFFFFFF),
}


def _all_zero(rng: random.Random, line_size: int) -> bytes:
    return bytes(line_size)


def _narrow_delta(rng: random.Random, line_size: int) -> bytes:
    """One base plus small deltas at a random word width (BDI's case).

    Deltas straddle the signed-range cutoffs of every BDI delta width
    (±127/±128 for 1-byte deltas and so on), including negative deltas
    that wrap the word, so the encode/fits checks see both sides of
    every boundary.
    """
    width = rng.choice((2, 4, 8))
    mask = (1 << (8 * width)) - 1
    base = rng.getrandbits(8 * width)
    edges = (0, 1, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF,
             0x10000)
    out = bytearray()
    for _ in range(line_size // width):
        delta = rng.choice(edges)
        if rng.getrandbits(1):
            delta = -delta
        out += ((base + delta) & mask).to_bytes(width, "little")
    return bytes(out)


def _sign_boundary(rng: random.Random, line_size: int) -> bytes:
    """Whole words drawn from sign-boundary values at one width."""
    width = rng.choice((1, 2, 4, 8))
    edges = _SIGN_EDGES_BY_WIDTH[width]
    out = bytearray()
    for _ in range(line_size // width):
        out += rng.choice(edges).to_bytes(width, "little")
    return bytes(out)


def _repeated_word(rng: random.Random, line_size: int) -> bytes:
    """A tiny vocabulary of 32-bit words; hits C-Pack's dictionary and
    FPC's repeated-value patterns, with occasional misses mixed in."""
    vocab = [rng.getrandbits(32) for _ in range(rng.choice((1, 2, 4, 8)))]
    out = bytearray()
    for _ in range(line_size // 4):
        if rng.random() < 0.1:
            out += rng.getrandbits(32).to_bytes(4, "little")
        else:
            out += rng.choice(vocab).to_bytes(4, "little")
    return bytes(out)


def _high_entropy(rng: random.Random, line_size: int) -> bytes:
    return rng.randbytes(line_size)


def _zero_runs(rng: random.Random, line_size: int) -> bytes:
    """Alternating zero runs and noise words — FPC's zero-run counting
    (run starts, run lengths, runs ending at the line boundary)."""
    out = bytearray()
    while len(out) < line_size:
        if rng.getrandbits(1):
            out += bytes(4 * (1 + rng.randrange(8)))
        else:
            out += rng.getrandbits(32).to_bytes(4, "little")
    return bytes(out[:line_size])


def _dict_adversarial(rng: random.Random, line_size: int) -> bytes:
    """C-Pack stress: more distinct words than dictionary entries (FIFO
    eviction), words differing only in low bytes (partial matches), and
    re-appearances of evicted words."""
    high = rng.getrandbits(16) << 16
    words = [high | rng.getrandbits(16) for _ in range(24)]
    out = bytearray()
    for i in range(line_size // 4):
        if rng.random() < 0.3:
            word = words[rng.randrange(len(words))]
        else:
            word = words[i % len(words)]
        if rng.random() < 0.2:
            word ^= rng.getrandbits(8)  # low-byte partial match
        out += (word & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


_ADVERSARIAL: dict[str, Callable[[random.Random, int], bytes]] = {
    "all_zero": _all_zero,
    "narrow_delta": _narrow_delta,
    "sign_boundary": _sign_boundary,
    "repeated_word": _repeated_word,
    "high_entropy": _high_entropy,
    "zero_runs": _zero_runs,
    "dict_adversarial": _dict_adversarial,
}

#: All generator names: the adversarial set above plus one
#: ``pattern_<name>`` generator per workload data pattern.
GENERATOR_NAMES: tuple[str, ...] = tuple(_ADVERSARIAL) + tuple(
    f"pattern_{name}" for name in sorted(PATTERNS)
)


def make_generator(
    name: str, line_size: int, seed: int
) -> Callable[[int], bytes]:
    """A deterministic ``line index -> bytes`` function for ``name``.

    ``pattern_*`` names delegate to the workload data-pattern machinery
    (single-pattern mixture); the rest are the adversarial builders
    above, re-seeded per line so each index is independent.
    """
    if name.startswith("pattern_"):
        pattern = name[len("pattern_"):]
        if pattern not in PATTERNS:
            raise ValueError(f"unknown data pattern {pattern!r}")
        return make_line_generator({pattern: 1.0}, line_size, seed)
    try:
        build = _ADVERSARIAL[name]
    except KeyError:
        raise ValueError(
            f"unknown generator {name!r} (known: {', '.join(GENERATOR_NAMES)})"
        )

    def line_bytes(index: int) -> bytes:
        rng = random.Random((seed << 24) ^ (index * 0x9E3779B1) ^ index)
        data = build(rng, line_size)
        assert len(data) == line_size
        return data

    return line_bytes
