"""Round-trip fuzzing of every compression algorithm.

For every algorithm and every adversarial generator this checks, line by
line:

* ``decompress(compress(x)) == x`` — byte-exact losslessness,
* the reported size is within ``[1, line_size]`` and an
  ``"uncompressed"`` encoding always reports exactly ``line_size``,
* the batch ``size_table`` kernel (numpy or pure, whichever backend is
  active) agrees with the scalar ``compress()`` result on ``(size,
  encoding)`` for the very same lines.

A failure is reported with its ``(generator, seed, index)`` coordinates
so it can be replayed deterministically and pinned as a regression test.
"""

from __future__ import annotations

from typing import Sequence

from repro.compression import ALGORITHMS, make_algorithm
from repro.verify.generators import GENERATOR_NAMES, make_generator
from repro.verify.report import CheckResult

#: Default algorithm set: everything in the registry.
ALL_ALGORITHMS: tuple[str, ...] = tuple(ALGORITHMS)

#: Batch size for the size_table cross-check (large enough to exercise
#: the vectorized kernels on real batches, small enough to bound memory).
_BATCH = 512


def fuzz_roundtrip(
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    generators: Sequence[str] = GENERATOR_NAMES,
    lines_per_generator: int = 64,
    line_size: int = 128,
    seed: int = 1,
) -> list[CheckResult]:
    """Fuzz every (algorithm, generator) pair; one result per pair."""
    results: list[CheckResult] = []
    for algorithm_name in algorithms:
        algorithm = make_algorithm(algorithm_name, line_size)
        for generator_name in generators:
            line_bytes = make_generator(generator_name, line_size, seed)
            failure = None
            checked = 0
            for start in range(0, lines_per_generator, _BATCH):
                stop = min(start + _BATCH, lines_per_generator)
                block = [line_bytes(i) for i in range(start, stop)]
                table = algorithm.size_table(block)
                for offset, data in enumerate(block):
                    index = start + offset
                    line = algorithm.compress(data)
                    checked += 1
                    if not 1 <= line.size_bytes <= line_size:
                        failure = (
                            f"index {index}: size {line.size_bytes} "
                            f"outside [1, {line_size}]"
                        )
                        break
                    if (not line.is_compressed
                            and line.size_bytes != line_size):
                        failure = (
                            f"index {index}: uncompressed line reports "
                            f"{line.size_bytes} bytes"
                        )
                        break
                    restored = algorithm.decompress(line)
                    if restored != data:
                        failure = (
                            f"index {index}: round-trip mismatch "
                            f"(encoding {line.encoding!r}, "
                            f"input {data.hex()})"
                        )
                        break
                    if table[offset] != (line.size_bytes, line.encoding):
                        failure = (
                            f"index {index}: size_table says "
                            f"{table[offset]} but compress() says "
                            f"({line.size_bytes}, {line.encoding!r})"
                        )
                        break
                if failure:
                    break
            results.append(CheckResult(
                name=f"roundtrip.{algorithm_name}.{generator_name}",
                passed=failure is None,
                checked=checked,
                detail=failure or "",
            ))
    return results
