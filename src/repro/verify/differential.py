"""Differential testing of the four compressed-size computation paths.

The simulator obtains a line's compressed size four ways, all of which
must agree byte-for-byte or runs become backend-dependent:

1. scalar ``compress()`` per line (the ``REPRO_PLANES=0`` hot path),
2. the numpy whole-image batch kernels (when numpy is installed),
3. the pure-Python whole-image batch kernels (``REPRO_NUMPY=0``),
4. cached :class:`~repro.memory.plane.CompressionPlane` lookups — for
   ``bestofall`` these are *composed* from the component planes, which
   additionally exercises the tie-breaking rule of
   :data:`repro.compression.bestofall.COMPONENT_PRIORITY`.

Each path is reduced to the same ``(size, bursts, encoding)`` triple per
line of a real application image and compared for equality.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

from repro.compression import batch as batch_mod
from repro.compression import make_algorithm
from repro.compression.base import bursts_for
from repro.harness.runner import plane_for_app
from repro.verify.report import CheckResult
from repro.workloads.apps import get_app
from repro.workloads.data_patterns import make_line_generator

#: Apps whose images the differential suite compresses by default —
#: chosen to span the mixtures of Figure 11 (BDI-friendly, FPC-friendly,
#: dictionary-friendly, incompressible).
DEFAULT_APPS: tuple[str, ...] = ("PVC", "MM", "LPS", "MUM")


@contextmanager
def _forced_pure_backend():
    """Temporarily disable the numpy batch backend."""
    saved = batch_mod.np
    batch_mod.np = None
    try:
        yield
    finally:
        batch_mod.np = saved


def _first_diff(
    a: list[tuple[int, int, str]], b: list[tuple[int, int, str]]
) -> str:
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return f"line {index}: {left} != {right}"
    return f"length mismatch: {len(a)} != {len(b)}"


def differential_check(
    apps: Sequence[str] = DEFAULT_APPS,
    algorithms: Sequence[str] = ("bdi", "fpc", "cpack", "fvc", "bestofall"),
    lines: int = 2048,
    line_size: int = 128,
    burst_bytes: int = 32,
) -> list[CheckResult]:
    """Compare all four size paths on every (app, algorithm) pair."""
    results: list[CheckResult] = []
    for app_name in apps:
        profile = get_app(app_name)
        line_bytes = make_line_generator(
            profile.data, line_size=line_size, seed=profile.seed
        )
        image = [line_bytes(i) for i in range(lines)]
        for algorithm_name in algorithms:
            algorithm = make_algorithm(algorithm_name, line_size)
            failure = None

            scalar = [
                (c.size_bytes, bursts_for(c.size_bytes, burst_bytes),
                 c.encoding)
                for c in map(algorithm.compress, image)
            ]

            def to_triples(table: list[tuple[int, str]]):
                return [
                    (size, bursts_for(size, burst_bytes), encoding)
                    for size, encoding in table
                ]

            if batch_mod.np is not None:
                vectorized = to_triples(algorithm.size_table(image))
                if vectorized != scalar:
                    failure = "numpy batch vs scalar: " + _first_diff(
                        vectorized, scalar
                    )

            if failure is None:
                with _forced_pure_backend():
                    pure = to_triples(algorithm.size_table(image))
                if pure != scalar:
                    failure = "pure batch vs scalar: " + _first_diff(
                        pure, scalar
                    )

            if failure is None:
                plane = plane_for_app(
                    profile, algorithm_name, lines,
                    line_size=line_size, burst_bytes=burst_bytes,
                )
                if plane is not None:
                    from_plane = [plane.table[i] for i in range(lines)]
                    if from_plane != scalar:
                        failure = "plane vs scalar: " + _first_diff(
                            from_plane, scalar
                        )

            results.append(CheckResult(
                name=f"differential.{app_name}.{algorithm_name}",
                passed=failure is None,
                checked=lines,
                detail=failure or "",
            ))
    return results
