"""Execution statistics: issue-slot classification and instruction counts.

The issue-slot taxonomy follows Figure 1 of the paper: every scheduler
slot every cycle is classified as Active (an instruction issued), a
Compute structural stall (a ready warp blocked by a backed-up ALU/SFU
pipeline), a Memory structural stall (blocked by the LSU or full MSHRs),
a Data Dependence stall (warps exist but their next instructions wait on
the scoreboard), or Idle (no warp has anything to issue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Slot(enum.IntEnum):
    """Per-cycle, per-scheduler issue-slot classification (Fig. 1)."""

    ACTIVE = 0
    COMPUTE_STALL = 1
    MEMORY_STALL = 2
    DATA_STALL = 3
    IDLE = 4


SLOT_LABELS = {
    Slot.ACTIVE: "Active Cycles",
    Slot.COMPUTE_STALL: "Compute Stalls",
    Slot.MEMORY_STALL: "Memory Stalls",
    Slot.DATA_STALL: "Data Dependence Stalls",
    Slot.IDLE: "Idle Cycles",
}

#: Slots whose classification is a function of scheduler-visible warp
#: state alone (scoreboard masks, barrier/assist gating). The
#: vectorized core (repro.gpu.soa) may replay such a classification
#: verbatim while that state is unchanged.
STATE_ONLY_SLOTS = frozenset({Slot.DATA_STALL, Slot.IDLE})

#: Slots additionally gated by shared execution-unit state (LSU/SFU/
#: heavy-ALU reservations, MSHR occupancy); replaying them also
#: requires the unit state to be provably unchanged.
UNIT_SLOTS = frozenset({Slot.COMPUTE_STALL, Slot.MEMORY_STALL})


@dataclass
class SmStats:
    """Counters for one SM."""

    slots: list[int] = field(default_factory=lambda: [0] * len(Slot))
    parent_instructions: int = 0
    assist_instructions: int = 0
    assist_warps_completed: int = 0
    assist_warps_cancelled: int = 0
    alu_ops: int = 0
    sfu_ops: int = 0
    loads: int = 0
    stores: int = 0
    shared_accesses: int = 0
    warps_finished: int = 0
    blocks_finished: int = 0
    register_reads: int = 0
    register_writes: int = 0
    #: Issue slots charged by interval-sampling extrapolation rather
    #: than detailed execution (subset of ``slots``; zero on exact
    #: runs). See :mod:`repro.gpu.sampling`.
    extrapolated_slots: int = 0

    @property
    def instructions(self) -> int:
        return self.parent_instructions + self.assist_instructions


@dataclass
class SimStats:
    """Aggregated machine statistics for one run."""

    cycles: int = 0
    sms: list[SmStats] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(sm, attr) for sm in self.sms)

    @property
    def instructions(self) -> int:
        return self._sum("parent_instructions") + self._sum("assist_instructions")

    @property
    def parent_instructions(self) -> int:
        return self._sum("parent_instructions")

    @property
    def assist_instructions(self) -> int:
        return self._sum("assist_instructions")

    @property
    def ipc(self) -> float:
        """Parent-instruction IPC — the paper's performance metric.

        Assist-warp instructions are framework overhead, not application
        progress, so they are excluded (otherwise CABA would get credit
        for its own overhead work).
        """
        if self.cycles == 0:
            return 0.0
        return self.parent_instructions / self.cycles

    @property
    def extrapolated_slots(self) -> int:
        """Slots accounted by interval-sampling extrapolation (0 on
        exact runs)."""
        return self._sum("extrapolated_slots")

    def slot_totals(self) -> dict[Slot, int]:
        totals = {slot: 0 for slot in Slot}
        for sm in self.sms:
            for slot in Slot:
                totals[slot] += sm.slots[slot]
        return totals

    def slot_breakdown(self) -> dict[Slot, float]:
        """Normalized Figure-1 breakdown over all issue slots."""
        totals = self.slot_totals()
        denom = sum(totals.values())
        if denom == 0:
            return {slot: 0.0 for slot in Slot}
        return {slot: totals[slot] / denom for slot in Slot}

    def counters(self) -> dict[str, int]:
        """Raw activity counters consumed by the energy model."""
        return {
            "alu_ops": self._sum("alu_ops"),
            "sfu_ops": self._sum("sfu_ops"),
            "loads": self._sum("loads"),
            "stores": self._sum("stores"),
            "shared_accesses": self._sum("shared_accesses"),
            "register_reads": self._sum("register_reads"),
            "register_writes": self._sum("register_writes"),
            "instructions": self.instructions,
            "assist_instructions": self.assist_instructions,
        }
