"""GPU core substrate: SIMT ISA, warps, schedulers, SMs, simulator."""

from repro.gpu.config import DramTiming, GPUConfig
from repro.gpu.isa import (
    ASSIST_REG_BASE,
    AssistProgram,
    Instr,
    MemSpace,
    OpKind,
    Program,
    alu,
    load,
    reg_mask,
    sfu,
    store,
    sync,
)
from repro.gpu.kernel import Kernel
from repro.gpu.occupancy import Occupancy, OccupancyError, compute_occupancy
from repro.gpu.simulator import SimulationResult, Simulator
from repro.gpu.sm import SM
from repro.gpu.stats import SLOT_LABELS, SimStats, Slot, SmStats
from repro.gpu.warp import BlockContext, WarpContext

__all__ = [
    "ASSIST_REG_BASE",
    "AssistProgram",
    "BlockContext",
    "DramTiming",
    "GPUConfig",
    "Instr",
    "Kernel",
    "MemSpace",
    "Occupancy",
    "OccupancyError",
    "OpKind",
    "Program",
    "SLOT_LABELS",
    "SM",
    "SimStats",
    "SimulationResult",
    "Simulator",
    "Slot",
    "SmStats",
    "WarpContext",
    "alu",
    "compute_occupancy",
    "load",
    "reg_mask",
    "sfu",
    "store",
    "sync",
]
