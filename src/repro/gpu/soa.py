"""Structure-of-arrays mirror of scheduler-visible warp state.

The per-warp issue scan in :mod:`repro.gpu.sm` is the innermost loop of
the simulator: every scheduler, every cycle, walks its warps and asks
each one "could you issue?". Almost every answer is "no, same reason as
last cycle" — the warp is scoreboard-blocked on an in-flight load, or
parked at a barrier, or the whole scheduler is idle. This module holds
the machinery that lets the SM answer those questions in bulk:

* ``SoAState`` mirrors the fields the scan reads (pc, scoreboard
  pending mask, finished/barrier/assist gating) into flat numpy arrays,
  one slot per resident warp, so one vectorized pass per cycle can
  pre-classify every warp of every SM as *candidate*, *scoreboard
  blocked* or *inactive* (the "screen").
* A per-scheduler *sequence counter* is bumped by every mutation of a
  screen-visible field of that scheduler's warps (every mutation site
  calls ``repro.gpu.warp.touch``). A screen — or any memoized scan
  result — is valid for a scheduler exactly while its sequence counter
  is unchanged; anything that could change the scan outcome (an event
  callback clearing a scoreboard bit, a barrier release, a block
  dispatch) invalidates by construction, and the SM falls back to the
  reference scan for that scheduler.

The arrays are mirrors, synced at mutation sites: Python-side reads
keep using the plain warp attributes (scalar numpy reads are slower
than attribute access), and the arrays are only ever read by the
batched screen.

Enabled via ``REPRO_SOA`` (default on when numpy is importable),
mirroring the ``REPRO_NUMPY`` pattern from ``repro.compression.batch``.
The flag is read per simulation, so tests can flip modes per run.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via both CI legs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.gpu.isa import MemSpace, OpKind


def soa_enabled() -> bool:
    """Whether new simulations should use the vectorized core."""
    if np is None:
        return False
    return os.environ.get("REPRO_SOA", "1") != "0"


#: Screen codes (one per warp slot, from the batched per-cycle pass).
#: A candidate's code is its *instruction class*: the execution unit
#: whose reservation every issue path for that op kind checks before
#: any side effect. When that unit is busy the scan can skip the issue
#: attempt entirely — the status and wake hint the attempt would have
#: produced are determined by the class alone.
KLASS_ANY = 0  # always structurally issuable (light ALU, SYNC, MEMO)
KLASS_MEM = 1  # STORE / on-chip LOAD: gated on the LSU port
KLASS_SFU = 2  # gated on the SFU initiation interval
KLASS_HEAVY = 3  # long-latency ALU: gated on the narrow heavy pipe
#: Global LOAD: gated on the LSU port, then on the armed per-warp MSHR
#: pre-check (same instruction, MSHR state untouched since the last
#: failed attempt -> fails again, side-effect free).
KLASS_GLOAD = 4
SCREEN_BLOCKED = 16  # scoreboard-blocked on its next instruction
SCREEN_INACTIVE = 32  # finished, at a barrier, or assist-gated


class SoAState:
    """Flat per-warp arrays plus the per-scheduler invalidation seqs.

    Warp slots are global across the machine: SM ``i`` owns slots
    ``[i * cap, (i + 1) * cap)`` where ``cap`` is the per-SM residency
    limit. Scheduler ids ("gids") are global too:
    ``gid = sm_id * schedulers_per_sm + sched``. A slot that is not
    bound to a scheduler points at a sentinel gid whose seq counter
    absorbs stray touches.
    """

    def __init__(self, n_sms: int, n_sched: int, cap: int, program) -> None:
        if np is None:  # pragma: no cover - guarded by soa_enabled()
            raise RuntimeError("SoAState requires numpy")
        self.cap = cap
        n_slots = n_sms * cap
        self.n_gids = n_sms * n_sched
        #: Scoreboard masks; register indices are < 64 (repro.gpu.isa
        #: validates), so a warp's pending mask fits uint64 exactly.
        self.pending = np.zeros(n_slots, dtype=np.uint64)
        self.pc = np.zeros(n_slots, dtype=np.int64)
        #: Per-SM wake hint, written at the end of every tick_soa —
        #: exactly what ``SM.next_wake`` returns for a SM without a
        #: CABA controller, so the simulator's fast-forward can take
        #: one batched min instead of calling into every SM. A plain
        #: list, deliberately: at n_sms elements the builtin ``min``
        #: beats ``ndarray.min``'s per-call overhead, and the per-tick
        #: store is hot.
        self.wake = [float("inf")] * n_sms
        #: 1 when the warp is finished, at a barrier, or assist-gated;
        #: the scheduler skips such a warp without attempting issue.
        self.inactive = np.zeros(n_slots, dtype=np.int8)
        #: Per-scheduler invalidation counters (+1 sentinel for unbound
        #: slots); plain list — single-element bumps dominate.
        self.seq: list[int] = [0] * (self.n_gids + 1)
        #: Scheduler owning each slot (sentinel ``n_gids`` = unbound).
        self.gid_of: list[int] = [self.n_gids] * n_slots
        #: Free slots per SM; popped lowest-first for determinism.
        self._free: list[list[int]] = [
            list(range(cap * (i + 1) - 1, cap * i - 1, -1))
            for i in range(n_sms)
        ]

        body = program.body
        #: Registers the instruction at each pc waits on: the issue
        #: scan's scoreboard check is ``pending & (src | dst)``.
        self.need_lut = np.array(
            [(instr.src_mask | instr.dst_mask) for instr in body]
            or [0],
            dtype=np.uint64,
        )
        # sm.py never imports this module (the simulator wires the two
        # together), so pulling the heavy-pipe threshold from it is
        # cycle-free.
        from repro.gpu.sm import HEAVY_ALU_LATENCY

        def klass(instr) -> int:
            kind = instr.kind
            if kind is OpKind.LOAD and instr.space is MemSpace.GLOBAL:
                return KLASS_GLOAD
            if kind is OpKind.LOAD or kind is OpKind.STORE:
                return KLASS_MEM
            if kind is OpKind.SFU:
                return KLASS_SFU
            if kind is OpKind.ALU and instr.latency >= HEAVY_ALU_LATENCY:
                return KLASS_HEAVY
            return KLASS_ANY

        #: Instruction class at each pc (candidate screen codes).
        self.klass_lut = np.array(
            [klass(instr) for instr in body] or [0], dtype=np.int8
        )
        self._program = program

        # Lazily computed per-cycle screen (see screen()).
        self._screen: list[int] = []
        self._screen_seq: list[int] = []
        self._screen_cycle = -1

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def alloc(self, sm_id: int, program) -> int:
        """Claim a slot for a new resident warp of ``sm_id``."""
        if program is not self._program:  # pragma: no cover - one kernel
            raise AssertionError("SoAState is specialized to one program")
        return self._free[sm_id].pop()

    def bind(self, slot: int, gid: int) -> None:
        """Attach a slot to its scheduler; the scheduler's warp set
        changed, so its memoized state is invalidated."""
        self.gid_of[slot] = gid
        self.seq[gid] += 1

    def release(self, slot: int) -> None:
        """Return a retired warp's slot to the free pool."""
        self.seq[self.gid_of[slot]] += 1
        self.gid_of[slot] = self.n_gids
        self.pending[slot] = 0
        self.pc[slot] = 0
        self.inactive[slot] = 0
        self._free[slot // self.cap].append(slot)

    # ------------------------------------------------------------------
    # The batched screen
    # ------------------------------------------------------------------
    def screen(self, gid: int, cycle: int) -> list[int] | None:
        """Screen codes for ``cycle``, or None if scheduler ``gid``
        mutated since the codes were computed (caller must fall back to
        the reference scan).

        Computed at most once per cycle, for all SMs at once: one
        vectorized scoreboard check against the need-LUT plus the
        inactive flags, folded with the instruction class so a
        candidate's code tells the scan which unit gates it
        (``code < SCREEN_BLOCKED``). Per-scheduler validity comes from
        comparing the seq counters captured at compute time.
        """
        if self._screen_cycle != cycle:
            pc = self.pc
            blocked = (self.pending & self.need_lut[pc]) != 0
            inactive = self.inactive != 0
            self._screen = (
                self.klass_lut[pc]
                + blocked.view(np.int8) * SCREEN_BLOCKED
                + inactive.view(np.int8) * SCREEN_INACTIVE
            ).tolist()
            self._screen_seq = self.seq.copy()
            self._screen_cycle = cycle
        if self._screen_seq[gid] != self.seq[gid]:
            return None
        return self._screen
