"""Simulated machine configuration (Table 1 of the paper).

The default :class:`GPUConfig` reproduces the paper's baseline: a
Fermi-class GPU with 15 SMs, two warp schedulers per SM (GTO), 48 warps
per SM, a 128 KB register file, 16 KB L1s, a 768 KB shared L2 and six
GDDR5 memory controllers totalling 177.4 GB/s. ``GPUConfig.small()``
yields a proportionally scaled machine used by the unit tests so full
runs stay fast; normalized metrics (speedups, utilizations, ratios) are
robust to this scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DramTiming:
    """GDDR5 timing parameters in memory-controller cycles (Table 1)."""

    tCL: int = 12
    tRP: int = 12
    tRC: int = 40
    tRAS: int = 28
    tRCD: int = 12
    tRRD: int = 6
    tCDLR: int = 5
    tWR: int = 12

    @property
    def row_hit_latency(self) -> int:
        """Command-to-data latency when the row is already open."""
        return self.tCL

    @property
    def row_miss_latency(self) -> int:
        """Precharge + activate + CAS for a row-buffer conflict."""
        return self.tRP + self.tRCD + self.tCL

    @property
    def row_empty_latency(self) -> int:
        """Activate + CAS when the bank is precharged."""
        return self.tRCD + self.tCL


@dataclass(frozen=True)
class GPUConfig:
    """Top-level machine description consumed by the simulator."""

    # --- Core organization -------------------------------------------------
    n_sms: int = 15
    warp_size: int = 32
    warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    max_threads_per_sm: int = 1536
    registers_per_sm: int = 32768
    smem_per_sm: int = 32 * 1024
    schedulers_per_sm: int = 2
    scheduler: str = "gto"
    core_clock_ghz: float = 1.4

    # --- SFU throughput (one new SFU op per this many cycles per SM) -------
    sfu_initiation_interval: int = 4

    # --- Caches -------------------------------------------------------------
    line_size: int = 128
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l1_mshrs: int = 32
    l1_latency: int = 28
    l2_size: int = 768 * 1024
    l2_assoc: int = 16
    l2_latency: int = 32
    shared_mem_latency: int = 24
    #: Latency of assist-warp L1-local accesses (reading a just-arrived
    #: compressed fill from the fill/merge buffers and writing the
    #: expanded line back) — shorter than a full L1 load-use round trip.
    assist_l1_latency: int = 12

    # --- Interconnect (one crossbar per direction, Table 1) -----------------
    icnt_latency: int = 16
    icnt_flit_bytes: int = 32

    # --- Memory system -------------------------------------------------------
    n_mcs: int = 6
    banks_per_mc: int = 16
    dram_bw_gbps: float = 177.4
    burst_bytes: int = 32
    dram_timing: DramTiming = field(default_factory=DramTiming)
    dram_queue_depth: int = 32

    # --- Metadata cache for compression (Section 4.3.2) ---------------------
    md_cache_size: int = 8 * 1024
    md_cache_assoc: int = 4
    #: Cache lines covered by one metadata cache line. 4 bits of burst-count
    #: metadata per line -> a 64 B metadata line covers 128 data lines.
    md_lines_per_entry: int = 128

    # --- Simulation control --------------------------------------------------
    max_cycles: int = 2_000_000

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def bytes_per_cycle_per_mc(self) -> float:
        """DRAM data-bus bandwidth per controller in bytes per core cycle."""
        total = self.dram_bw_gbps * 1e9 / (self.core_clock_ghz * 1e9)
        return total / self.n_mcs

    @property
    def burst_cycles(self) -> float:
        """Core cycles one 32-byte burst occupies a controller's data bus."""
        return self.burst_bytes / self.bytes_per_cycle_per_mc

    @property
    def bursts_per_line(self) -> int:
        return -(-self.line_size // self.burst_bytes)

    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.line_size * self.l1_assoc)

    @property
    def l2_sets_per_mc(self) -> int:
        per_mc = self.l2_size // self.n_mcs
        return per_mc // (self.line_size * self.l2_assoc)

    @property
    def warps_per_scheduler(self) -> int:
        return self.warps_per_sm // self.schedulers_per_sm

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_bandwidth_scale(self, scale: float) -> "GPUConfig":
        """The paper's 1/2x / 1x / 2x off-chip bandwidth sensitivity knob."""
        if scale <= 0:
            raise ValueError(f"bandwidth scale must be positive, got {scale}")
        return replace(self, dram_bw_gbps=self.dram_bw_gbps * scale)

    @classmethod
    def small(cls) -> "GPUConfig":
        """A scaled machine for fast tests: 2 SMs, 2 MCs, smaller caches.

        Per-SM and per-MC ratios (warps per scheduler, bandwidth per
        controller, cache per SM) match the full configuration so the
        bottleneck structure carries over.
        """
        return cls(
            n_sms=3,
            warps_per_sm=16,
            max_blocks_per_sm=4,
            max_threads_per_sm=512,
            registers_per_sm=12288,
            smem_per_sm=8 * 1024,
            l1_size=8 * 1024,
            l1_mshrs=32,
            l2_size=64 * 1024,
            n_mcs=1,
            dram_bw_gbps=177.4 / 6,
            # One channel sees every line here (the full machine spreads
            # them over six MD caches), so the MD cache keeps full size.
            md_cache_size=8 * 1024,
            max_cycles=400_000,
        )

    @classmethod
    def medium(cls) -> "GPUConfig":
        """A mid-size machine for the benchmark harness: 6 SMs, 3 MCs."""
        return cls(
            n_sms=6,
            warps_per_sm=32,
            max_blocks_per_sm=8,
            max_threads_per_sm=1024,
            registers_per_sm=24576,
            smem_per_sm=16 * 1024,
            l1_size=16 * 1024,
            l2_size=256 * 1024,
            n_mcs=2,
            dram_bw_gbps=177.4 * 2 / 6,
            md_cache_size=8 * 1024,
            max_cycles=1_000_000,
        )
