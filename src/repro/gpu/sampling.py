"""Interval sampling: detailed-sample + extrapolate simulation.

Wall clock of the exact simulator is linear in simulated cycles — every
cycle of every SM runs in detail. This module trades a bounded amount of
accuracy for asymptotic speed by alternating:

* **detailed intervals** — ``warmup + measure`` cycles of full
  execution (SoA or reference path, stats/ledger charging, real memory
  timing), exactly as the exact simulator would run them; then
* **skipped intervals** — ``skip`` cycles whose issue slots and stall
  mix are *extrapolated* from the rates observed during the most recent
  measure window, while the warps' *work* is bulk-advanced so the
  kernel still executes every parent instruction.

Because the simulated kernels are fixed-work (not fixed-time), a skip
must advance warp progress, not just the clock: each SM's resident
blocks are advanced by whole loop iterations at the SM's measured
parent-issue rate, crediting the per-instruction counters exactly from
per-pc suffix tables. The total ``parent_instructions`` of a completed
sampled run therefore equals the exact run's count bit-for-bit; all of
the IPC error comes from the extrapolated cycle count.

Memory traffic is not extrapolated — it is *functionally warmed*:
address streams are pure functions of ``(warp, iteration)``, so the
bulk advance replays every skipped global load/store through the real
memory hierarchy (cache state, DRAM row buffers, traffic counters,
bus/port reservations) without any warp-side timing. Traffic totals,
compression ratios and the conservation invariants therefore track the
exact run closely; only *when* the traffic happened is approximated.
Queued events (cache fills, MSHR releases, register writebacks) are
delivered while the clock advances through the skipped window, so
in-flight state is realistic when the next detailed interval resumes.

Extrapolated slots are tagged separately (``SmStats.extrapolated_slots``
and the ledger's :data:`~repro.obs.ledger.EXTRAP_WARP` synthetic warp)
but charged so every conservation invariant still closes: per-SM slot
counts sum to ``cycles * schedulers``, the ledger reconciles bit-exactly
with ``SmStats.slots``, MSHR allocs balance releases, and crossbar/DRAM
byte counters stay consistent with their reserved bus cycles.

Error model (documented bound: **≤2 %** on IPC / bandwidth utilization /
compression-figure metrics at the default 10 % detail, enforced by
``repro check``'s sampling differential and the ``cycle_loop_sampled``
bench gate): error enters through (a) rate drift within a skipped
window, bounded by re-measuring every period; (b) the warmup window
being too short to re-reach steady state after a skip; (c) warmed
traffic being replayed in program order at the skip boundary rather
than interleaved in time. Don't use
sampling for runs shorter than a few sampling periods, for figures that
depend on absolute event counts of rare events, or when auditing
invariants against exact-mode goldens.

Opt-in via ``REPRO_SAMPLE`` (``1`` = the default 500:1000:13500
period, or an explicit ``WARMUP:MEASURE:SKIP``) or the ``--sample``
CLI knob; exact mode remains the default and is byte-identical to
pre-sampling builds.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.gpu.isa import MemSpace, OpKind
from repro.gpu.warp import touch
from repro.obs.ledger import EXTRAP_WARP, N_CATS, SLOT_OF_CAT
from repro.gpu.stats import Slot

ENV_VAR = "REPRO_SAMPLE"

#: A measure window whose busiest serial memory resource is at least
#: this utilized is treated as bandwidth-bound: the skip is charged by
#: utilization-normalized warmed service time instead of the rate-based
#: span (see ``SamplingController._skip``).
_UTIL_BOUND = 0.5

_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})
_ON_VALUES = frozenset({"1", "on", "true", "yes"})

#: Refined ledger categories belonging to each Figure-1 slot, in
#: category order (the inverse of SLOT_OF_CAT; used to split an
#: extrapolated slot's charge across its member categories).
_CATS_OF_SLOT = tuple(
    tuple(c for c in range(N_CATS) if SLOT_OF_CAT[c] is slot)
    for slot in Slot
)


@dataclass(frozen=True)
class SampleConfig:
    """Knobs of one sampling period (all in cycles).

    The defaults run 10 % of cycles in detail (500 warmup + 1000
    measure per 13500 skipped) — the operating point the
    ``cycle_loop_sampled`` bench gate is calibrated for. Longer windows
    at the same detail fraction average over more of the post-skip
    queueing transient (fewer skip boundaries per run), which is worth
    more accuracy than sampling more often.
    """

    warmup: int = 500
    measure: int = 1000
    skip: int = 13500

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("sample warmup must be >= 0")
        if self.measure < 1:
            raise ValueError("sample measure must be >= 1")
        if self.skip < 1:
            raise ValueError("sample skip must be >= 1")

    @property
    def period(self) -> int:
        return self.warmup + self.measure + self.skip

    @property
    def detail_fraction(self) -> float:
        return (self.warmup + self.measure) / self.period

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "SampleConfig":
        """Parse a knob value: ``1``/``on`` for the defaults, or an
        explicit ``WARMUP:MEASURE:SKIP`` triple."""
        text = text.strip().lower()
        if text in _ON_VALUES:
            return cls()
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad sample spec {text!r}: expected '1' or 'WARMUP:MEASURE:SKIP'"
            )
        try:
            warmup, measure, skip = (int(p) for p in parts)
        except ValueError as exc:
            raise ValueError(f"bad sample spec {text!r}: {exc}") from None
        return cls(warmup=warmup, measure=measure, skip=skip)

    @classmethod
    def from_env(cls) -> "SampleConfig | None":
        """The process-wide default: None (exact mode) unless
        ``REPRO_SAMPLE`` asks for sampling."""
        value = os.environ.get(ENV_VAR, "").strip().lower()
        if value in _OFF_VALUES:
            return None
        return cls.parse(value)


def sampling_enabled() -> bool:
    return SampleConfig.from_env() is not None


# ----------------------------------------------------------------------
# Deterministic integer apportionment
# ----------------------------------------------------------------------
def apportion(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``
    by largest remainder (pure integer arithmetic; remainder ties break
    to the lowest index). All-zero weights dump into the last bin — by
    convention the Idle slot/category."""
    n = len(weights)
    shares = [0] * n
    if total <= 0:
        return shares
    wsum = 0
    for w in weights:
        wsum += w
    if wsum <= 0:
        shares[-1] = total
        return shares
    rems = []
    left = total
    for i, w in enumerate(weights):
        q, r = divmod(total * w, wsum)
        shares[i] = q
        left -= q
        rems.append((-r, i))
    if left:
        rems.sort()
        for k in range(left):
            shares[rems[k][1]] += 1
    return shares


# ----------------------------------------------------------------------
# Per-program suffix tables
# ----------------------------------------------------------------------
def _suffix_counts(program) -> list[tuple]:
    """``tails[pc]`` = instruction-counter credit for executing
    ``body[pc:]`` once: (parent instructions, alu ops, sfu ops, global
    loads, global stores, on-chip accesses, register reads, register
    writes) — the exact deltas the issue paths in ``gpu.sm`` would have
    charged, so bulk-advanced work keeps every counter exact."""
    body = program.body
    n = len(body)
    tails: list[tuple] = [(0,) * 8] * (n + 1)
    for p in range(n - 1, -1, -1):
        instr = body[p]
        kind = instr.kind
        alu = sfu = loads = stores = shared = 0
        if kind is OpKind.ALU or kind is OpKind.NOP:
            alu = 1
        elif kind is OpKind.SFU:
            sfu = 1
        elif kind is OpKind.LOAD or kind is OpKind.STORE:
            if instr.space is MemSpace.GLOBAL:
                if kind is OpKind.LOAD:
                    loads = 1
                else:
                    stores = 1
            else:
                shared = 1
        prev = tails[p + 1]
        tails[p] = (
            prev[0] + 1,
            prev[1] + alu,
            prev[2] + sfu,
            prev[3] + loads,
            prev[4] + stores,
            prev[5] + shared,
            prev[6] + instr.src_mask.bit_count(),
            prev[7] + instr.dst_mask.bit_count(),
        )
    return tails


def _mem_suffixes(program) -> list[tuple]:
    """``mem_tails[pc]`` = the global memory instructions of
    ``body[pc:]`` as ``(is_load, addr_fn)`` pairs — the accesses the
    functional-warming pass replays when a warp's remaining iteration
    is bulk-advanced."""
    body = program.body
    n = len(body)
    tails: list[tuple] = [()] * (n + 1)
    for p in range(n - 1, -1, -1):
        instr = body[p]
        kind = instr.kind
        if (
            (kind is OpKind.LOAD or kind is OpKind.STORE)
            and instr.space is MemSpace.GLOBAL
        ):
            tails[p] = ((kind is OpKind.LOAD, instr.addr_fn),) + tails[p + 1]
        else:
            tails[p] = tails[p + 1]
    return tails


class SamplingController:
    """Drives one :class:`~repro.gpu.simulator.Simulator` in sampled
    mode: detailed (warmup + measure) intervals interleaved with
    extrapolated skips. Owned by ``Simulator.run``; everything here is
    deterministic, so sampled runs are exactly reproducible."""

    def __init__(self, sim, cfg: SampleConfig) -> None:
        self._sim = sim
        self._cfg = cfg
        self._tails = _suffix_counts(sim.kernel.program)
        self._mem_tails = _mem_suffixes(sim.kernel.program)
        # Instructions advanced beyond (or short of) each SM's budget in
        # previous skips; repaid against the next budget. Bulk advance
        # works in whole block-iterations, so without the carry the
        # per-skip overshoot would systematically inflate progress (and
        # deflate the extrapolated cycle count).
        self._carry = [0.0] * len(sim.sms)
        # Per-SM block-rotation cursor for the interleaved bulk advance.
        self._rot = [0] * len(sim.sms)
        # Cumulative measure-window busy time per serial memory resource
        # and the cycles they were observed over (see run()).
        self._window_busy = [0.0] * len(self._resource_busy())
        self._window_cycles = 0
        # Whether a warmed store reaches memory compressed at the core:
        # HW-at-core and Ideal compress inline; CABA designs compress
        # through the assist warp, whose (rare) buffer-overflow
        # uncompressed releases the warming pass ignores.
        design = sim.memory.design
        self._store_compressed = (
            design.compress_at == "core_hw"
            or design.ideal
            or (
                sim._has_caba
                and design.compress_at == "core_assist"
                and sim.memory.image.compression_enabled
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> bool:
        """Alternate detailed and skipped intervals until the kernel
        completes; returns True when truncated at ``max_cycles``."""
        sim = self._sim
        cfg = self._cfg
        limit = sim.config.max_cycles
        while not sim.done:
            if sim._cycle >= limit:
                return True
            if cfg.warmup:
                sim._run_detailed(min(sim._cycle + cfg.warmup, limit))
                if sim.done:
                    break
                if sim._cycle >= limit:
                    return True
            before = self._snapshot()
            busy0 = self._resource_busy()
            start = sim._cycle
            sim._run_detailed(min(start + cfg.measure, limit))
            if sim.done:
                break
            if sim._cycle >= limit:
                return True
            measured = sim._cycle - start
            issued = sum(
                sm.stats.parent_instructions - snap[0]
                for sm, snap in zip(sim.sms, before)
            )
            if issued == 0:
                # Congested window (e.g. the machine is paying down a
                # memory backlog): a skip extrapolated from a zero rate
                # would charge cycles against no work. Keep executing in
                # detail until the rate recovers.
                continue
            for i, (b0, b1) in enumerate(zip(busy0, self._resource_busy())):
                self._window_busy[i] += b1 - b0
            self._window_cycles += measured
            # Cumulative utilization over every measure window so far:
            # single windows ring around the skip boundaries (a stalled
            # window reads near zero, the burst after it reads above
            # one), but the ringing is symmetric and the running average
            # converges on the steady-state utilization the charge
            # model needs. Capped at 1.0 — a window can *reserve* more
            # bus time than it has cycles (offered load), but the
            # resource itself never runs above saturation.
            utils = [
                min(b / self._window_cycles, 1.0) for b in self._window_busy
            ]
            if measured > 0 and self._skip(cfg.skip, before, measured, utils):
                return True
        return False

    # ------------------------------------------------------------------
    def _snapshot(self) -> list:
        """Capture the counters whose measure-window deltas drive the
        extrapolation (issue rates and the slot/category mix)."""
        sim = self._sim
        traced = sim.obs is not None
        if traced:
            for sm in sim.sms:
                sm.flush_ledger()
        sms = []
        for sm in sim.sms:
            sms.append((
                sm.stats.parent_instructions,
                list(sm.stats.slots),
                list(sim.obs.ledger.sm_counts[sm.sm_id]) if traced else None,
            ))
        return sms

    # ------------------------------------------------------------------
    def _skip(self, span: int, before: list, measured: int,
              utils: list) -> bool:
        """Fast-forward up to ``span`` cycles: bulk-advance warp work at
        the measured per-SM issue rates (functionally replaying the
        skipped memory accesses), deliver queued events through the
        window, then charge extrapolated slots. Returns True when the
        run truncates at ``max_cycles``."""
        sim = self._sim
        limit = sim.config.max_cycles
        start = sim._cycle
        span = min(span, limit - start)
        if span <= 0:
            return not sim.done and sim._cycle >= limit
        sms = sim.sms
        deltas = [
            sm.stats.parent_instructions - snap[0]
            for sm, snap in zip(sms, before)
        ]
        carry = self._carry
        targets = [
            delta * span / measured - carry[sm_id]
            for sm_id, delta in enumerate(deltas)
        ]
        busy0 = self._resource_busy()
        advanced = self._advance_all([int(round(t)) for t in targets])
        for sm_id, (target, credited) in enumerate(zip(targets, advanced)):
            if credited and credited >= int(round(target)):
                carry[sm_id] = credited - target
            else:
                # Ran out of resident work: nothing to repay.
                carry[sm_id] = 0.0
        # Clock advance. For a bandwidth-bound phase (some serial memory
        # resource ran near-saturated through the measure windows) the
        # issue rate one window measures is hostage to the queueing
        # transient it happened to sample — but the warmed accesses hold
        # *real* reservations, so the busy time this skip added to the
        # binding resource, normalized by the windows' utilization of
        # it, is the steady-state cycle cost of the advanced work
        # (``busy / util`` ≈ ``span`` when window and skip agree;
        # transient windows measure a skewed rate but the running
        # utilization stays honest, so the quotient self-corrects in
        # both directions — and it scales with the work actually
        # advanced, so it needs no special-casing when the kernel runs
        # out mid-skip). Only the binding resource constrains
        # throughput; a lightly-used resource's busy/util quotient is
        # noise (small numbers over small numbers) and must not set the
        # charge. Compute-bound phases (no resource near saturation)
        # fall back to the rate-based charge: the work was budgeted at
        # ``rate × span``, so ``span`` cycles is exact by construction
        # (scaled down to the work actually found when the kernel
        # completed mid-skip).
        binding = max(range(len(utils)), key=utils.__getitem__)
        if utils[binding] >= _UTIL_BOUND:
            service = (
                self._resource_busy()[binding] - busy0[binding]
            ) / utils[binding]
            used = max(1 if sim.done else span // 4, math.ceil(service))
            used = min(used, 4 * span, limit - start)
        elif sim.done:
            used = 1
            for delta, adv in zip(deltas, advanced):
                if delta > 0 and adv > 0:
                    est = -(-adv * measured // delta)  # ceil
                    if est > used:
                        used = est
            used = min(used, span)
        else:
            used = span
        elapsed = sim._deliver_until(start + used)
        if elapsed < used and sim.done:
            # The kernel retired mid-delivery (or the bulk advance
            # itself finished the last block): the event pump stops at
            # completion, but the advanced work still costs ``used``
            # cycles — leaving the clock behind would credit the final
            # skip's instructions as nearly free.
            sim._cycle = start + used
            elapsed = used
        if elapsed > 0:
            self._charge(before, elapsed)
        return not sim.done and sim._cycle >= limit

    # ------------------------------------------------------------------
    # Work advancement
    # ------------------------------------------------------------------
    def _advance_all(self, budgets: list) -> list:
        """Advance every SM's resident blocks by whole loop iterations
        until each SM's parent-instruction ``budget`` is spent (or it
        runs out of work); returns instructions credited per SM.

        Rounds interleave across SMs (one block-iteration per SM per
        round) so the warmed memory traffic reaches the shared levels —
        L2 banks, metadata caches, DRAM row buffers — in an order close
        to the real machine's interleaving; advancing SM-at-a-time
        would overstate their locality."""
        sms = self._sim.sms
        credited = [0] * len(sms)
        remaining = list(budgets)
        rot = self._rot
        progressed = True
        while progressed:
            progressed = False
            for i, sm in enumerate(sms):
                if remaining[i] <= 0:
                    continue
                blocks = [
                    b for b in sm.resident_blocks if not b.all_finished
                ]
                if not blocks:
                    remaining[i] = 0
                    continue
                block = blocks[rot[i] % len(blocks)]
                rot[i] += 1
                n = self._advance_block(sm, block)
                if n:
                    progressed = True
                    credited[i] += n
                    remaining[i] -= n
                else:  # pragma: no cover - live block always advances
                    remaining[i] = 0
        return credited

    def _advance_block(self, sm, block) -> int:
        """Advance every live warp of ``block`` by one loop iteration's
        worth of work, crediting instruction counters exactly from the
        suffix tables and functionally replaying the global memory
        accesses. The advance is *phase-preserving*: a warp consumes
        the rest of its current iteration plus the start of the next,
        ending at the same pc one iteration later (suffix + prefix = one
        whole body, so the credit is exact). Snapping every warp to
        pc 0 instead would synchronize iteration boundaries machine-wide
        and the next detailed window would measure an artificial convoy
        (burst, then MSHR-starved trough) rather than the steady state.
        Warps on their last iteration take only the suffix and finish.
        Barriers release wholesale (the whole block crosses together)."""
        stats = sm.stats
        tails = self._tails
        mem_tails = self._mem_tails
        whole = tails[0]
        n_ops = len(mem_tails[0])
        total = 0
        finishers = []
        block.barrier_arrivals = 0
        for warp in block.warps:
            if warp.finished:
                continue
            if warp.at_barrier:
                warp.at_barrier = False
            pc = warp.pc
            iteration = warp.iteration
            suffix_ops = mem_tails[pc]
            if suffix_ops:
                self._warm_memory(sm.sm_id, warp.global_index, iteration,
                                  suffix_ops)
            if iteration + 1 >= warp.program.iterations:
                credit = tails[pc]
                warp.pc = 0
                warp.iteration = iteration + 1
                warp.finished = True
                finishers.append(warp)
            else:
                # mem_tails[pc] is a suffix of mem_tails[0], so the ops
                # before pc are the leading n_ops - len(suffix) entries.
                head_ops = mem_tails[0][: n_ops - len(suffix_ops)]
                if head_ops:
                    self._warm_memory(sm.sm_id, warp.global_index,
                                      iteration + 1, head_ops)
                credit = whole
                warp.iteration = iteration + 1
            (instrs, alu, sfu, loads, stores, shared, rreads,
             rwrites) = credit
            stats.parent_instructions += instrs
            stats.alu_ops += alu
            stats.sfu_ops += sfu
            stats.loads += loads
            stats.stores += stores
            stats.shared_accesses += shared
            stats.register_reads += rreads
            stats.register_writes += rwrites
            total += instrs
            if warp.soa is not None:
                touch(warp)
        for warp in finishers:
            sm._on_warp_finished(warp)
        return total

    def _resource_busy(self) -> list:
        """Cumulative busy time of every serial memory resource (DRAM
        data buses, crossbar request/reply ports), in a fixed order —
        measure-window deltas give per-resource utilizations and skip
        deltas give the service time the warmed traffic reserved."""
        memory = self._sim.memory
        busy = [mc.bus.busy_time for mc in memory.mcs]
        xbar = memory.crossbar
        busy.extend(p.busy_time for p in xbar._request_ports)
        busy.extend(p.busy_time for p in xbar._reply_ports)
        return busy

    def _warm_memory(self, sm_id: int, index: int, iteration: int,
                     mem_ops: tuple) -> None:
        """Functionally replay skipped global memory accesses: the real
        load/store paths run (cache state, DRAM row buffers, every
        traffic counter, bus/port reservations) but nothing is scheduled
        and no warp-side effect is applied — the warp's timing is what
        the skip extrapolates. MSHRs are released inline so the warming
        stream can't deadlock on its own occupancy; address streams are
        pure functions of ``(warp, iteration)``, so the replayed traffic
        is exactly what the detailed path would have generated."""
        memory = self._sim.memory
        now = self._sim._cycle
        for is_load, addr_fn in mem_ops:
            raw = addr_fn(index, iteration)
            if len(raw) > 1:
                seen: dict[int, None] = {}
                for line in raw:
                    seen.setdefault(line, None)
                lines = list(seen)
            else:
                lines = raw
            if is_load:
                for line in lines:
                    fill = memory.load(sm_id, line, now)
                    if fill is None:
                        # MSHRs still held by the detailed window's
                        # in-flight fills: retire the oldest early (its
                        # queued completion event becomes a no-op).
                        inflight = memory._inflight[sm_id]
                        if not inflight:
                            continue
                        memory.complete_fill(sm_id, next(iter(inflight)))
                        fill = memory.load(sm_id, line, now)
                        if fill is None:
                            continue
                    if not fill.merged and not fill.from_l1:
                        memory.complete_fill(sm_id, line)
            else:
                full_line = len(lines) == 1
                for line in lines:
                    memory.store(
                        sm_id, line, now, full_line=full_line,
                        compressed_by_core=self._store_compressed,
                    )

    # ------------------------------------------------------------------
    # Extrapolated charging
    # ------------------------------------------------------------------
    def _charge(self, before: list, used: int) -> None:
        """Charge ``used`` skipped cycles' issue slots (and, when
        traced, refined ledger categories) from the measured mix. Slot
        charges are apportioned from the coarse slot mix first and the
        refined categories are split within each slot, so traced and
        untraced sampled runs stay slot-identical and the ledger's
        reconciliation invariant holds bit-exactly."""
        sim = self._sim
        before_sms = before
        traced = sim.obs is not None
        ledger = sim.obs.ledger if traced else None
        if traced:
            for sm in sim.sms:
                sm.flush_ledger()
        n_sched = sim.config.schedulers_per_sm
        for sm, (_, slots0, cats0) in zip(sim.sms, before_sms):
            st = sm.stats
            slot_w = [a - b for a, b in zip(st.slots, slots0)]
            per_sched = apportion(used, slot_w)
            for slot, count in enumerate(per_sched):
                if count:
                    st.slots[slot] += count * n_sched
            st.extrapolated_slots += used * n_sched
            if not traced:
                continue
            cat_w = [
                a - b for a, b in zip(ledger.sm_counts[sm.sm_id], cats0)
            ]
            for slot, count in enumerate(per_sched):
                if not count:
                    continue
                members = _CATS_OF_SLOT[slot]
                shares = apportion(count, [cat_w[c] for c in members])
                for cat, share in zip(members, shares):
                    if share:
                        for s in range(n_sched):
                            ledger.charge_extrapolated(sm.sm_id, s, cat, share)
