"""The streaming-multiprocessor pipeline model.

Each SM runs two warp schedulers (GTO by default, Table 1). Every cycle
each scheduler gets one issue slot, which is classified per Figure 1:
an instruction issues (Active), a ready warp is blocked by a backed-up
ALU/SFU pipe (Compute Stall) or by the LSU/MSHRs (Memory Stall), all
considered warps wait on the scoreboard (Data Dependence Stall), or
nothing is available (Idle).

CABA hooks in at three points (Section 3.4): high-priority assist warps
preempt the parent warps of their scheduler, low-priority assist warps
consume otherwise-idle issue slots, and assist instructions contend for
the very same ALU/SFU/LSU resources as regular instructions.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind
from repro.gpu.stats import STATE_ONLY_SLOTS, Slot, SmStats, UNIT_SLOTS
from repro.gpu.warp import BlockContext, WarpContext, touch
from repro.memory.hierarchy import MEM_SRC_DRAM, MEM_SRC_L1, MemorySystem
from repro.obs.ledger import ASSIST_WARP, NO_WARP, SLOT_OF_CAT, StallCat

#: ALU latency at or above which the op uses the narrow "heavy" pipe.
HEAVY_ALU_LATENCY = 8
#: Initiation interval of the heavy-ALU pipe (one op per this many cycles).
HEAVY_ALU_II = 2

# Issue attempt outcomes (internal). The two structural-memory causes are
# distinct codes so the traced path can tell MSHR pressure from LSU port
# contention; both map to the same Figure-1 Memory Stall slot.
_OK = 0
_DEP = 1
_STRUCT_ALU = 2
_STRUCT_LSU = 3
_STRUCT_MSHR = 4

# Bitmask views of the outcomes seen while scanning a scheduler's warps
# (saw |= 1 << status is cheaper than three boolean updates per warp).
_SAW_DEP = 1 << _DEP
_SAW_ALU = 1 << _STRUCT_ALU
_SAW_LSU = 1 << _STRUCT_LSU
_SAW_MSHR = 1 << _STRUCT_MSHR
_SAW_MEM = _SAW_LSU | _SAW_MSHR

# Refined slot categories (plain ints in the hot path; see
# repro.obs.ledger.StallCat for semantics).
_CAT_ISSUE = int(StallCat.ISSUE)
_CAT_ASSIST = int(StallCat.ASSIST)
_CAT_COMPUTE = int(StallCat.COMPUTE)
_CAT_SCOREBOARD = int(StallCat.SCOREBOARD)
_CAT_MSHR_FULL = int(StallCat.MSHR_FULL)
_CAT_LSU = int(StallCat.LSU)
_CAT_INTERCONNECT = int(StallCat.INTERCONNECT)
_CAT_DRAM = int(StallCat.DRAM)
_CAT_ASSIST_WAIT = int(StallCat.ASSIST_WAIT)
_CAT_IDLE = int(StallCat.IDLE)

#: Refined category -> Figure-1 slot (indexable by the plain ints above).
_CAT_SLOT = SLOT_OF_CAT

#: Figure-1 slot -> stall-memo tier for the vectorized core: 0 = not
#: memoizable (an instruction issued), 1 = valid while the scheduler's
#: warp state is unchanged, 2 = additionally requires unchanged
#: execution-unit/MSHR state.
_MEMO_KIND = tuple(
    1 if slot in STATE_ONLY_SLOTS else (2 if slot in UNIT_SLOTS else 0)
    for slot in Slot
)

_INF = float("inf")


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        memory: MemorySystem,
        schedule: Callable[[int, Callable[[], None]], None],
        on_block_retired: Callable[["SM"], None],
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.memory = memory
        self.schedule = schedule
        self.on_block_retired = on_block_retired
        self.stats = SmStats()
        #: CABA controller; installed by the simulator for CABA designs.
        self.caba = None

        n = config.schedulers_per_sm
        self.sched_warps: list[list[WarpContext]] = [[] for _ in range(n)]
        self._current: list[WarpContext | None] = [None] * n
        self._last_slots: list[Slot] = [Slot.IDLE] * n
        if config.scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler {config.scheduler!r}")
        self._greedy = config.scheduler == "gto"
        self._rr: list[int] = [0] * n

        # Execution-unit reservation state (cycle when next op may start).
        self._sfu_free = 0
        self._heavy_alu_free = 0
        self._lsu_free = 0

        self.resident_blocks: list[BlockContext] = []
        self._wake_hint: float = _INF
        self._age_counter = 0
        #: Current cycle (updated at every tick; used by controllers
        #: whose callbacks fire from the event queue).
        self.now = 0

        #: Stall-attribution ledger (repro.obs); None = tracing off, the
        #: default, in which case the traced refinements are never run.
        self._ledger = None
        #: Refined (category, warp) of each scheduler's last real cycle,
        #: mirrored alongside _last_slots for fast-forward replay.
        self._last_cats: list[tuple[int, int]] = [(_CAT_IDLE, NO_WARP)] * n
        #: Warp charged for the most recent ACTIVE slot (traced path).
        self._attr_warp = NO_WARP
        # Pending ledger charge per scheduler: consecutive identical
        # (category, warp) charges coalesce into one ledger call
        # (stall runs dominate traced runs), flushed on change and by
        # flush_ledger() at run end / sampling snapshots.
        self._pend_cat: list[int] = [_CAT_IDLE] * n
        self._pend_wid: list[int] = [NO_WARP] * n
        self._pend_n: list[int] = [0] * n

        #: Vectorized-core state (repro.gpu.soa); None = reference path.
        self._soa = None
        self._gid0 = 0
        #: Per-scheduler stall memos, rebuilt by every scanned slot:
        #: (seq, cat, warp_id, kind, lsu_free, sfu_free, heavy_free,
        #:  mshr_epoch, expiry_cycle, scan_wake_hint); mshr_epoch -1
        #: marks a stall whose outcome is independent of MSHR state.
        self._memos: list[tuple | None] = [None] * n
        # Scratch written by the scan for memo creation: whether the
        # outcome is replay-stable, and the scan's own wake-hint
        # contribution (excluding assist-warp issue attempts).
        self._scan_safe = False
        self._scan_hint = _INF

    def attach_observer(self, obs) -> None:
        """Install the observability layer's stall ledger (must happen
        before the first tick so attribution is complete)."""
        self._ledger = obs.ledger

    def attach_soa(self, soa) -> None:
        """Adopt the vectorized issue path (``tick_soa``); must be
        called before any block is dispatched."""
        self._soa = soa
        self._gid0 = self.sm_id * self.config.schedulers_per_sm

    # ------------------------------------------------------------------
    # Block / warp management
    # ------------------------------------------------------------------
    def add_block(self, block: BlockContext) -> None:
        """Make a dispatched block's warps resident and schedulable."""
        self.resident_blocks.append(block)
        n = self.config.schedulers_per_sm
        for warp in block.warps:
            warp.sched = self._age_counter % n
            warp.age = self._age_counter
            self._age_counter += 1
            self.sched_warps[warp.sched].append(warp)
        soa = self._soa
        if soa is not None:
            gid0 = self._gid0
            for warp in block.warps:
                soa.bind(warp.slot, gid0 + warp.sched)

    def _retire_block(self, block: BlockContext) -> None:
        if block.retired:
            return
        block.retired = True
        self.stats.blocks_finished += 1
        self.resident_blocks.remove(block)
        retired = set(block.warps)
        for s, warps in enumerate(self.sched_warps):
            self.sched_warps[s] = [w for w in warps if w not in retired]
            if self._current[s] in retired:
                self._current[s] = None
        soa = self._soa
        if soa is not None:
            # Free the slots before on_block_retired may dispatch a
            # replacement block into them. detach() first: late
            # register-release events on these warps must not write
            # into a reassigned slot.
            for warp in block.warps:
                warp.detach()
                soa.release(warp.slot)
        self.on_block_retired(self)

    def _check_block_drain(self, warp: WarpContext) -> None:
        block = warp.block
        if block.all_finished and not block.retired and block.drained:
            self._retire_block(block)

    @property
    def resident_warps(self) -> int:
        return sum(len(w) for w in self.sched_warps)

    # ------------------------------------------------------------------
    # Main per-cycle step
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Run one cycle; returns the number of instructions issued."""
        self.now = cycle
        self._wake_hint = _INF
        caba = self.caba
        if caba is not None:
            caba.tick(cycle)
        issued = 0
        slots = self.stats.slots
        last = self._last_slots
        ledger = self._ledger
        n_sched = self.config.schedulers_per_sm
        for s in range(n_sched):
            cat = self._issue_slot(s, cycle)
            if ledger is not None:
                cat = self._charge(ledger, s, cat)
            slot = _CAT_SLOT[cat]
            slots[slot] += 1
            last[s] = slot
            if slot is Slot.ACTIVE:
                issued += 1
        if caba is not None:
            caba.observe(issued, n_sched)
        return issued

    def tick_soa(self, cycle: int) -> int:
        """``tick`` for the vectorized core: byte-identical observable
        behaviour, but a scheduler slot is classified without a warp
        scan wherever a memoized outcome is provably still valid, and
        scans that do run pre-screen their warps against the batched
        SoA scoreboard pass instead of attempting issue per warp.

        A memo is valid while the scheduler's seq counter is unchanged
        (tier 1: scoreboard/idle outcomes) and, for unit-gated stalls
        (tier 2), while the LSU/SFU/heavy-ALU reservations and the SM's
        MSHR epoch are also unchanged and no reserved unit has freed up
        (``expiry``). Assist warps still get their reference-order
        chance at every slot — ``issue_high``/``issue_low`` rotate
        their queues and consume unit state even on stall cycles, so
        they are re-run for real, never replayed.
        """
        self.now = cycle
        self._wake_hint = _INF
        caba = self.caba
        if caba is not None:
            caba.tick(cycle)
        issued = 0
        slots = self.stats.slots
        last = self._last_slots
        ledger = self._ledger
        pend_n = self._pend_n
        pend_cat = self._pend_cat
        pend_wid = self._pend_wid
        n_sched = self.config.schedulers_per_sm
        soa = self._soa
        seq = soa.seq
        memos = self._memos
        gid0 = self._gid0
        for s in range(n_sched):
            g = gid0 + s
            m = memos[s]
            if m is not None and m[0] == seq[g] and (
                m[3] == 1
                or (
                    self._lsu_free == m[4]
                    and self._sfu_free == m[5]
                    and self._heavy_alu_free == m[6]
                    and cycle < m[8]
                    and (
                        m[7] < 0
                        or self.memory.mshr_epoch[self.sm_id] == m[7]
                    )
                )
            ):
                if caba is not None and (
                    caba.issue_high(s, cycle) or caba.issue_low(s, cycle)
                ):
                    # An assist warp took the slot, exactly as it would
                    # have after the (unchanged) parent scan stalled.
                    self._attr_warp = ASSIST_WARP
                    cat = _CAT_ASSIST
                    if ledger is not None:
                        cat = self._charge(ledger, s, cat)
                    slot = _CAT_SLOT[cat]
                    slots[slot] += 1
                    last[s] = slot
                    issued += 1
                    continue
                hint = m[9]
                if hint < self._wake_hint:
                    self._wake_hint = hint
                cat = m[1]
                if ledger is not None:
                    wid = m[2]
                    self._last_cats[s] = (cat, wid)
                    # Inlined _charge_slot fast path: stall runs repeat
                    # the same (category, warp) for thousands of
                    # consecutive cycles, and the call overhead itself
                    # is most of the traced-run cost at this site.
                    if (
                        pend_n[s]
                        and pend_cat[s] == cat
                        and pend_wid[s] == wid
                    ):
                        pend_n[s] += 1
                    else:
                        self._charge_slot(s, cat, wid, 1)
                slot = _CAT_SLOT[cat]
                slots[slot] += 1
                last[s] = slot
                continue
            screen = soa.screen(g, cycle)
            if screen is None:
                # Scheduler state changed after this cycle's screen was
                # computed (an earlier slot issued, a barrier released,
                # a block dispatched): run the reference scan verbatim.
                self._scan_safe = False
                cat = self._issue_slot(s, cycle)
            else:
                cat = self._issue_slot_soa(s, cycle, screen)
            if ledger is not None:
                cat = self._charge(ledger, s, cat)
            slot = _CAT_SLOT[cat]
            slots[slot] += 1
            last[s] = slot
            if slot is Slot.ACTIVE:
                issued += 1
                memos[s] = None
                continue
            kind = _MEMO_KIND[slot]
            if kind == 1:
                # Scoreboard/idle: a pure function of seq-tracked warp
                # state. No structural candidate was reached, so the
                # parent scan contributed no wake hint.
                wid = self._last_cats[s][1] if ledger is not None else NO_WARP
                memos[s] = (seq[g], cat, wid, 1, 0, 0, 0, 0, 0, _INF)
            elif kind == 2 and self._scan_safe:
                lsu = self._lsu_free
                sfu = self._sfu_free
                heavy = self._heavy_alu_free
                expiry = _INF
                if lsu > cycle:
                    expiry = lsu
                if cycle < sfu < expiry:
                    expiry = sfu
                if cycle < heavy < expiry:
                    expiry = heavy
                wid = self._last_cats[s][1] if ledger is not None else NO_WARP
                # A stall that never saw an MSHR status is independent
                # of MSHR state: every memory candidate failed on the
                # LSU-port gate (or there were none), which an epoch
                # bump cannot change. -1 marks the memo epoch-free.
                memos[s] = (
                    seq[g], cat, wid, 2, lsu, sfu, heavy,
                    self.memory.mshr_epoch[self.sm_id]
                    if cat == _CAT_MSHR_FULL else -1,
                    expiry, self._scan_hint,
                )
            else:
                memos[s] = None
        if caba is not None:
            caba.observe(issued, n_sched)
        soa.wake[self.sm_id] = self._wake_hint
        return issued

    def _issue_slot_soa(self, s: int, cycle: int, screen: list[int]) -> int:
        """``_issue_slot`` with the per-warp scoreboard checks replaced
        by the pre-computed screen codes: ``< SCREEN_BLOCKED`` is a
        candidate (the code is its instruction class), ``< 32`` is
        scoreboard-blocked, the rest are finished/barrier/assist-gated.

        Unit reservations cannot change across a scan's *failed*
        attempts, so the structural gates every issue path checks first
        are hoisted out of the per-candidate work: a candidate whose
        class targets a busy unit is skipped with exactly the status
        and wake hint its issue attempt would have produced.

        Also separates the parent scan's wake-hint contribution from
        assist-warp attempts (``_scan_hint``) and records whether the
        outcome is replay-stable (``_scan_safe``): a deep MSHR probe
        that did not arm the per-warp epoch pre-check — a partial line
        send — can make progress on the very next retry, so such a
        stall must not be memoized.
        """
        caba = self.caba
        if caba is not None and caba.issue_high(s, cycle):
            self._attr_warp = ASSIST_WARP
            return _CAT_ASSIST
        self._scan_safe = True
        h0 = self._wake_hint
        self._wake_hint = _INF
        saw = 0
        lsu_free = self._lsu_free
        lsu_busy = lsu_free > cycle
        sfu_free = self._sfu_free
        sfu_busy = sfu_free > cycle
        heavy_free = self._heavy_alu_free
        heavy_busy = heavy_free > cycle
        mshr_epoch = self.memory.mshr_epoch[self.sm_id]
        current = self._current[s] if self._greedy else None
        # A stale greedy current whose block has retired is detached
        # from the arrays (its slot may have been reassigned); it is
        # finished, so the reference scan would skip it too.
        if current is not None and current.soa is not None:
            code = screen[current.slot]
            if code < 16:
                if (code == 1 or code == 4) and lsu_busy:
                    saw = _SAW_LSU
                    if lsu_free < self._wake_hint:
                        self._wake_hint = lsu_free
                elif code == 4 and (
                    current.mshr_fail_epoch == mshr_epoch
                    and current.coal_key == (current.pc, current.iteration)
                ):
                    saw = _SAW_MSHR
                elif code == 2 and sfu_busy:
                    saw = _SAW_ALU
                    if sfu_free < self._wake_hint:
                        self._wake_hint = sfu_free
                elif code == 3 and heavy_busy:
                    saw = _SAW_ALU
                    if heavy_free < self._wake_hint:
                        self._wake_hint = heavy_free
                else:
                    status = self._try_issue(current, cycle)
                    if status == _OK:
                        self._attr_warp = current.global_index
                        self._merge_scan_hint(h0)
                        return _CAT_ISSUE
                    saw = 1 << status
                    if status == _STRUCT_MSHR and (
                        current.mshr_fail_epoch != mshr_epoch
                    ):
                        self._scan_safe = False
            elif code < 32:
                saw = _SAW_DEP
        warps = self.sched_warps[s]
        n = len(warps)
        if self._greedy:
            for warp in warps:
                if warp is current:
                    continue
                code = screen[warp.slot]
                if code:
                    if code >= 32:
                        continue
                    if code >= 16:
                        saw |= _SAW_DEP
                        continue
                    if code == 4:
                        if lsu_busy:
                            saw |= _SAW_LSU
                            if lsu_free < self._wake_hint:
                                self._wake_hint = lsu_free
                            continue
                        if warp.mshr_fail_epoch == mshr_epoch and (
                            warp.coal_key == (warp.pc, warp.iteration)
                        ):
                            saw |= _SAW_MSHR
                            continue
                    elif code == 1:
                        if lsu_busy:
                            saw |= _SAW_LSU
                            if lsu_free < self._wake_hint:
                                self._wake_hint = lsu_free
                            continue
                    elif code == 2:
                        if sfu_busy:
                            saw |= _SAW_ALU
                            if sfu_free < self._wake_hint:
                                self._wake_hint = sfu_free
                            continue
                    elif heavy_busy:  # code == 3
                        saw |= _SAW_ALU
                        if heavy_free < self._wake_hint:
                            self._wake_hint = heavy_free
                        continue
                status = self._try_issue(warp, cycle)
                if status == _OK:
                    self._current[s] = warp
                    self._attr_warp = warp.global_index
                    self._merge_scan_hint(h0)
                    return _CAT_ISSUE
                saw |= 1 << status
                if status == _STRUCT_MSHR and (
                    warp.mshr_fail_epoch != mshr_epoch
                ):
                    self._scan_safe = False
        else:
            # LRR never has a greedy current warp.
            start = self._rr[s] % max(1, n)
            for k in range(n):
                warp = warps[(start + k) % n]
                code = screen[warp.slot]
                if code:
                    if code >= 32:
                        continue
                    if code >= 16:
                        saw |= _SAW_DEP
                        continue
                    if code == 4:
                        if lsu_busy:
                            saw |= _SAW_LSU
                            if lsu_free < self._wake_hint:
                                self._wake_hint = lsu_free
                            continue
                        if warp.mshr_fail_epoch == mshr_epoch and (
                            warp.coal_key == (warp.pc, warp.iteration)
                        ):
                            saw |= _SAW_MSHR
                            continue
                    elif code == 1:
                        if lsu_busy:
                            saw |= _SAW_LSU
                            if lsu_free < self._wake_hint:
                                self._wake_hint = lsu_free
                            continue
                    elif code == 2:
                        if sfu_busy:
                            saw |= _SAW_ALU
                            if sfu_free < self._wake_hint:
                                self._wake_hint = sfu_free
                            continue
                    elif heavy_busy:  # code == 3
                        saw |= _SAW_ALU
                        if heavy_free < self._wake_hint:
                            self._wake_hint = heavy_free
                        continue
                status = self._try_issue(warp, cycle)
                if status == _OK:
                    self._current[s] = warp
                    self._attr_warp = warp.global_index
                    self._rr[s] = (start + k + 1) % max(1, n)
                    self._merge_scan_hint(h0)
                    return _CAT_ISSUE
                saw |= 1 << status
                if status == _STRUCT_MSHR and (
                    warp.mshr_fail_epoch != mshr_epoch
                ):
                    self._scan_safe = False
        self._merge_scan_hint(h0)
        if caba is not None and caba.issue_low(s, cycle):
            self._attr_warp = ASSIST_WARP
            return _CAT_ASSIST
        if saw & _SAW_MEM:
            return _CAT_MSHR_FULL if saw & _SAW_MSHR else _CAT_LSU
        if saw & _SAW_ALU:
            return _CAT_COMPUTE
        if saw & _SAW_DEP:
            return _CAT_SCOREBOARD
        return _CAT_IDLE

    def _merge_scan_hint(self, h0: float) -> None:
        """End the parent-scan wake-hint capture window: remember the
        scan's own contribution (for memo replay) and fold the
        pre-scan accumulator back in."""
        hint = self._wake_hint
        self._scan_hint = hint
        if h0 < hint:
            self._wake_hint = h0

    def replay_stall(self, skipped: int) -> None:
        """Account ``skipped`` fast-forwarded cycles with the last
        classification (no state changed during the gap)."""
        for s, slot in enumerate(self._last_slots):
            self.stats.slots[slot] += skipped
        if self._ledger is not None:
            for s, (cat, wid) in enumerate(self._last_cats):
                self._charge_slot(s, cat, wid, skipped)

    def _charge_slot(self, s: int, cat: int, wid: int, n: int) -> None:
        """Queue ``n`` ledger slots for scheduler ``s``, coalescing
        consecutive identical (category, warp) charges into one ledger
        call. Never called with the ledger detached."""
        if (
            self._pend_n[s]
            and self._pend_cat[s] == cat
            and self._pend_wid[s] == wid
        ):
            self._pend_n[s] += n
            return
        pn = self._pend_n[s]
        if pn:
            self._ledger.charge(
                self.sm_id, s, self._pend_cat[s], self._pend_wid[s], pn
            )
        self._pend_cat[s] = cat
        self._pend_wid[s] = wid
        self._pend_n[s] = n

    def flush_ledger(self) -> None:
        """Push queued ledger charges through — called at run end and
        around sampling snapshots so ledger reads observe a complete
        account. Safe (and free) with tracing off."""
        ledger = self._ledger
        if ledger is None:
            return
        pend = self._pend_n
        for s in range(self.config.schedulers_per_sm):
            pn = pend[s]
            if pn:
                ledger.charge(
                    self.sm_id, s, self._pend_cat[s], self._pend_wid[s], pn
                )
                pend[s] = 0

    def next_wake(self, cycle: int) -> float:
        """Earliest cycle at which this SM might make progress without an
        external event (used for fast-forwarding).

        ``cycle`` is the most recently *simulated* cycle (the caller has
        already advanced its clock past it, hence the ``cycle - 1`` at
        the call site): with assist work queued the SM must be ticked on
        the very next cycle, and ``_wake_hint`` is an absolute cycle
        collected from the scan's structural-hazard hints during that
        same tick."""
        if self.caba is not None and self.caba.has_pending_work():
            return cycle + 1
        return self._wake_hint

    # ------------------------------------------------------------------
    # Issue-slot logic
    # ------------------------------------------------------------------
    def _issue_slot(self, s: int, cycle: int) -> int:
        caba = self.caba
        if caba is not None and caba.issue_high(s, cycle):
            self._attr_warp = ASSIST_WARP
            return _CAT_ASSIST

        saw = 0
        current = self._current[s] if self._greedy else None
        # can_consider() is inlined as attribute checks below: this is
        # the hottest loop in the simulator and the method-call overhead
        # dominated it under profile.
        if current is not None and not (
            current.finished or current.at_barrier or current.assist_block
        ):
            # GTO: stay greedy on the current warp until it stalls.
            status = self._try_issue(current, cycle)
            if status == _OK:
                self._attr_warp = current.global_index
                return _CAT_ISSUE
            saw |= 1 << status
        warps = self.sched_warps[s]
        n = len(warps)
        if self._greedy:
            for warp in warps:
                if (
                    warp is current
                    or warp.finished
                    or warp.at_barrier
                    or warp.assist_block
                ):
                    continue
                status = self._try_issue(warp, cycle)
                if status == _OK:
                    self._current[s] = warp
                    self._attr_warp = warp.global_index
                    return _CAT_ISSUE
                saw |= 1 << status
        else:
            start = self._rr[s] % max(1, n)
            for k in range(n):
                warp = warps[(start + k) % n]
                if (
                    warp is current
                    or warp.finished
                    or warp.at_barrier
                    or warp.assist_block
                ):
                    continue
                status = self._try_issue(warp, cycle)
                if status == _OK:
                    self._current[s] = warp
                    self._attr_warp = warp.global_index
                    # LRR: next cycle starts after the warp that issued.
                    self._rr[s] = (start + k + 1) % max(1, n)
                    return _CAT_ISSUE
                saw |= 1 << status

        if caba is not None and caba.issue_low(s, cycle):
            self._attr_warp = ASSIST_WARP
            return _CAT_ASSIST
        # Priority order matches the coarse Figure-1 classification
        # (memory > compute > dependence), so SmStats.slots is unchanged.
        if saw & _SAW_MEM:
            return _CAT_MSHR_FULL if saw & _SAW_MSHR else _CAT_LSU
        if saw & _SAW_ALU:
            return _CAT_COMPUTE
        if saw & _SAW_DEP:
            return _CAT_SCOREBOARD
        return _CAT_IDLE

    # ------------------------------------------------------------------
    # Traced-path refinement (never reached with tracing off)
    # ------------------------------------------------------------------
    def _charge(self, ledger, s: int, cat: int) -> int:
        """Refine ``cat`` where the issue scan was too coarse, record it
        in the stall ledger, and return the refined category."""
        if cat == _CAT_ISSUE or cat == _CAT_ASSIST:
            wid = self._attr_warp
        elif cat == _CAT_SCOREBOARD:
            cat, wid = self._refine_dep(s)
        elif cat == _CAT_IDLE:
            cat, wid = self._refine_idle(s)
        else:
            # Structural stalls (pipe/LSU/MSHR) are a shared-resource
            # property of the SM, not of one warp.
            wid = NO_WARP
        self._last_cats[s] = (cat, wid)
        # Inlined _charge_slot fast path (see tick_soa): consecutive
        # identical charges dominate, and this runs once per scheduler
        # per traced cycle.
        if (
            self._pend_n[s]
            and self._pend_cat[s] == cat
            and self._pend_wid[s] == wid
        ):
            self._pend_n[s] += 1
        else:
            self._charge_slot(s, cat, wid, 1)
        return cat

    def _refine_dep(self, s: int) -> tuple[int, int]:
        """Split a data-dependence stall by what the dependence waits
        on: an outstanding DRAM round trip, an on-chip (L1/L2 hit or
        interconnect) round trip, or a plain scoreboard hazard."""
        onchip = None
        first = None
        for warp in self.sched_warps[s]:
            if warp.finished or warp.at_barrier or warp.assist_block:
                continue
            if first is None:
                first = warp
            if warp.outstanding_mem:
                if warp.mem_source == MEM_SRC_DRAM:
                    return _CAT_DRAM, warp.global_index
                if onchip is None:
                    onchip = warp
        if onchip is not None:
            return _CAT_INTERCONNECT, onchip.global_index
        if first is not None:
            return _CAT_SCOREBOARD, first.global_index
        return _CAT_SCOREBOARD, NO_WARP

    def _refine_idle(self, s: int) -> tuple[int, int]:
        """An idle slot where a warp is parked behind an assist warp
        (store-buffer back-pressure) is CABA overhead, not true idle."""
        for warp in self.sched_warps[s]:
            if warp.assist_block and not warp.finished:
                return _CAT_ASSIST_WAIT, warp.global_index
        return _CAT_IDLE, NO_WARP

    # ------------------------------------------------------------------
    # Parent-warp instruction issue
    # ------------------------------------------------------------------
    def _try_issue(self, warp: WarpContext, cycle: int) -> int:
        instr = warp.program.body[warp.pc]
        if warp.pending_mask & (instr.src_mask | instr.dst_mask):
            return _DEP

        kind = instr.kind
        if kind is OpKind.ALU or kind is OpKind.NOP:
            status = self._issue_alu(warp, instr, cycle)
        elif kind is OpKind.SFU:
            status = self._issue_sfu(warp, instr, cycle)
        elif kind is OpKind.LOAD or kind is OpKind.STORE:
            # _issue_memory's dispatch, inlined: replayed (stalled)
            # memory instructions dominate this path.
            if instr.space is not MemSpace.GLOBAL:
                status = self._issue_onchip_memory(warp, instr, cycle)
            elif kind is OpKind.LOAD:
                status = self._issue_global_load(warp, instr, cycle)
            else:
                status = self._issue_global_store(warp, instr, cycle)
        elif kind is OpKind.SYNC:
            status = self._issue_sync(warp, cycle)
        elif kind is OpKind.MEMO:
            status = _OK  # the marker itself is a plain issue slot
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled op kind {kind}")

        if status == _OK:
            self.stats.parent_instructions += 1
            self._count_regs(instr)
            finished = warp.advance()
            if finished:
                self._on_warp_finished(warp)
            elif kind is OpKind.MEMO and self.caba is not None:
                self.caba.on_memo_point(warp, instr.meta, cycle)
        return status

    def _count_regs(self, instr: Instr) -> None:
        self.stats.register_reads += instr.src_mask.bit_count()
        self.stats.register_writes += instr.dst_mask.bit_count()

    # --- ALU / SFU ---------------------------------------------------
    def _issue_alu(self, ctx, instr: Instr, cycle: int) -> int:
        if instr.latency >= HEAVY_ALU_LATENCY:
            if self._heavy_alu_free > cycle:
                self._wake_hint = min(self._wake_hint, self._heavy_alu_free)
                return _STRUCT_ALU
            self._heavy_alu_free = cycle + HEAVY_ALU_II
        self.stats.alu_ops += 1
        self._hold_registers(ctx, instr.dst_mask, cycle + instr.latency)
        return _OK

    def _issue_sfu(self, ctx, instr: Instr, cycle: int) -> int:
        if self._sfu_free > cycle:
            self._wake_hint = min(self._wake_hint, self._sfu_free)
            return _STRUCT_ALU
        self._sfu_free = cycle + self.config.sfu_initiation_interval
        self.stats.sfu_ops += 1
        self._hold_registers(ctx, instr.dst_mask, cycle + instr.latency)
        return _OK

    def _hold_registers(self, ctx, dst_mask: int, until: int) -> None:
        """Mark ``dst_mask`` pending on ``ctx`` (warp or assist warp) and
        release it at ``until``."""
        if not dst_mask:
            return
        ctx.pending_mask |= dst_mask
        if ctx.soa is not None:
            touch(ctx)
        def release() -> None:
            ctx.pending_mask &= ~dst_mask
            if ctx.soa is not None:
                touch(ctx)
        self.schedule(until, release)

    # --- Memory --------------------------------------------------------
    def _issue_memory(self, warp: WarpContext, instr: Instr, cycle: int) -> int:
        if instr.space is not MemSpace.GLOBAL:
            return self._issue_onchip_memory(warp, instr, cycle)
        if instr.kind is OpKind.LOAD:
            return self._issue_global_load(warp, instr, cycle)
        return self._issue_global_store(warp, instr, cycle)

    def _issue_onchip_memory(self, ctx, instr: Instr, cycle: int) -> int:
        """Shared-memory (and assist-warp L1-local) accesses: fixed latency."""
        if self._lsu_free > cycle:
            self._wake_hint = min(self._wake_hint, self._lsu_free)
            return _STRUCT_LSU
        self._lsu_free = cycle + 1
        self.stats.shared_accesses += 1
        latency = (
            self.config.shared_mem_latency
            if instr.space is MemSpace.SHARED
            else self.config.assist_l1_latency
        )
        self._hold_registers(ctx, instr.dst_mask, cycle + latency)
        return _OK

    def _issue_global_load(self, warp: WarpContext, instr: Instr, cycle: int) -> int:
        if self._lsu_free > cycle:
            self._wake_hint = min(self._wake_hint, self._lsu_free)
            return _STRUCT_LSU
        memory = self.memory
        sm_id = self.sm_id
        epoch = memory.mshr_epoch[sm_id]
        if warp.mshr_fail_epoch == epoch and warp.coal_key == (
            warp.pc, warp.iteration
        ):
            # Same instruction, MSHR state untouched since the last
            # failed attempt: the pre-check below would fail again.
            return _STRUCT_MSHR
        lines = self._coalesce(instr, warp)
        for line in lines:
            if not memory.mshr_available(sm_id, line):
                # MSHRs free up via fill events, which also end
                # fast-forwards.
                warp.mshr_fail_epoch = epoch
                return _STRUCT_MSHR
        fills = []
        for line in lines:
            fill = self.memory.load(self.sm_id, line, cycle)
            if fill is None:
                # MSHRs full: replay later; lines already sent keep their
                # MSHR-release events and will merge on the retry.
                return _STRUCT_MSHR
            if not fill.merged and not fill.from_l1:
                self.schedule(
                    math.ceil(fill.fill_time),
                    lambda line=fill.line: self.memory.complete_fill(
                        self.sm_id, line
                    ),
                )
            fills.append(fill)
        self._lsu_free = cycle + len(lines)
        self.stats.loads += 1
        if self.caba is not None:
            self.caba.on_global_load(warp, lines, cycle)
        warp.pending_mask |= instr.dst_mask
        if warp.soa is not None:
            touch(warp)
        warp.outstanding_mem += 1
        if self._ledger is not None:
            # Deepest level any of this warp's fills travelled to; used
            # by _refine_dep to split DRAM from on-chip waits.
            source = MEM_SRC_L1
            for fill in fills:
                if fill.source > source:
                    source = fill.source
            warp.mem_source = source

        remaining = len(fills)
        def line_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                warp.pending_mask &= ~instr.dst_mask
                if warp.soa is not None:
                    touch(warp)
                warp.outstanding_mem -= 1
                self._check_block_drain(warp)

        for fill in fills:
            if fill.needs_assist:
                self.caba.request_decompression(warp, fill, line_done, cycle)
            elif (
                self.caba is not None
                and fill.from_l1
                and self.caba.pending_decompression(fill.line)
            ):
                # The line is mid-decompression from an earlier fill.
                self.caba.attach_to_decompression(fill.line, line_done)
            else:
                self.schedule(math.ceil(fill.ready_time), line_done)
        return _OK

    def _issue_global_store(self, warp: WarpContext, instr: Instr, cycle: int) -> int:
        if self._lsu_free > cycle:
            self._wake_hint = min(self._wake_hint, self._lsu_free)
            return _STRUCT_LSU
        lines = self._coalesce(instr, warp)
        self._lsu_free = cycle + len(lines)
        self.stats.stores += 1
        # A fully coalesced warp store covers whole lines; scattered
        # multi-line stores are partial-line writes (Section 4.2.2).
        full_line = len(lines) == 1
        design = self.memory.design
        if (
            self.caba is not None
            and design.compress_at == "core_assist"
            and self.memory.image.compression_enabled
        ):
            self.caba.buffer_store(warp, lines, full_line, cycle)
        else:
            compressed = design.compress_at == "core_hw" or design.ideal
            for line in lines:
                self.memory.store(
                    self.sm_id, line, cycle,
                    full_line=full_line, compressed_by_core=compressed,
                )
        return _OK

    def _coalesce(self, instr: Instr, warp: WarpContext) -> list[int]:
        """Run the coalescer: unique line addresses, order preserved.

        Memoized per (pc, iteration) so replayed instructions (MSHR or
        LSU structural stalls) do not regenerate their addresses.
        """
        key = (warp.pc, warp.iteration)
        if warp.coal_key == key:
            return warp.coal_lines
        raw = instr.addr_fn(warp.global_index, warp.iteration)
        if len(raw) == 1:
            lines = list(raw)
        else:
            seen: dict[int, None] = {}
            for line in raw:
                seen.setdefault(line, None)
            lines = list(seen)
        warp.coal_key = key
        warp.coal_lines = lines
        return lines

    # --- Barrier ---------------------------------------------------------
    def _issue_sync(self, warp: WarpContext, cycle: int) -> int:
        warp.block.arrive_at_barrier(warp)
        return _OK

    # ------------------------------------------------------------------
    # Warp completion
    # ------------------------------------------------------------------
    def _on_warp_finished(self, warp: WarpContext) -> None:
        self.stats.warps_finished += 1
        if warp.at_barrier:
            warp.at_barrier = False
            if warp.soa is not None:
                touch(warp)
        block = warp.block
        if block.note_warp_finished():
            block.all_finished = True
            if block.drained:
                self._retire_block(block)

    # ------------------------------------------------------------------
    # Assist-warp instruction issue (called by the CABA controller)
    # ------------------------------------------------------------------
    def try_issue_assist(self, assist, cycle: int) -> bool:
        """Attempt to issue the next deployed instruction of an assist
        warp through the regular pipelines; returns True on issue."""
        if assist.pc >= assist.deployed or assist.pc >= len(assist.program.body):
            return False
        instr = assist.program.body[assist.pc]
        if assist.pending_mask & (instr.src_mask | instr.dst_mask):
            return False

        kind = instr.kind
        if kind is OpKind.ALU or kind is OpKind.NOP:
            status = self._issue_alu(assist, instr, cycle)
        elif kind is OpKind.SFU:
            status = self._issue_sfu(assist, instr, cycle)
        elif kind in (OpKind.LOAD, OpKind.STORE):
            status = self._issue_onchip_memory(assist, instr, cycle)
        else:  # pragma: no cover - subroutines never contain SYNC
            raise AssertionError(f"assist warps cannot execute {kind}")
        if status != _OK:
            return False

        self.stats.assist_instructions += 1
        self._count_regs(instr)
        assist.pc += 1
        if assist.pc >= len(assist.program.body):
            done_at = cycle + max(1, instr.latency)
            self.schedule(done_at, lambda: self.caba.finish(assist))
        return True
