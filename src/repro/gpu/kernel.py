"""Kernel launch descriptions.

A :class:`Kernel` is what the simulator dispatches: a grid of thread
blocks, each block a group of warps executing the same
:class:`~repro.gpu.isa.Program`, plus the static resource demands
(registers per thread, shared memory per block) that determine SM
occupancy — the quantities behind Figure 2's unallocated-register study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.isa import Program


@dataclass(frozen=True)
class Kernel:
    """One kernel launch."""

    name: str
    program: Program
    n_blocks: int
    warps_per_block: int
    regs_per_thread: int
    smem_per_block: int = 0
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError(f"{self.name}: need at least one block")
        if self.warps_per_block < 1:
            raise ValueError(f"{self.name}: need at least one warp per block")
        if self.regs_per_thread < 1:
            raise ValueError(f"{self.name}: threads need registers")
        if self.smem_per_block < 0:
            raise ValueError(f"{self.name}: negative shared memory")

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * self.warp_size

    @property
    def total_warps(self) -> int:
        return self.n_blocks * self.warps_per_block

    @property
    def regs_per_block(self) -> int:
        return self.regs_per_thread * self.threads_per_block

    def warp_linear_index(self, block_id: int, warp_in_block: int) -> int:
        """Globally unique warp index used by address generators."""
        return block_id * self.warps_per_block + warp_in_block
