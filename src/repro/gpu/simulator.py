"""Top-level GPU simulator: SMs + memory system + block dispatcher.

The main loop is cycle-driven with event-based fast-forwarding: when no
SM can issue and no assist-warp work is pending, the clock jumps to the
next scheduled event (a writeback, a cache fill, a DRAM completion),
with the skipped issue slots accounted under their last stall
classification — memory-bound applications spend most of their wall
clock inside these jumps, which is what makes a Python cycle-level
model practical.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.design import DesignPoint
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.gpu.sampling import SampleConfig, SamplingController
from repro.gpu.sm import SM
from repro.gpu.soa import SoAState, soa_enabled
from repro.gpu.stats import SimStats
from repro.gpu.warp import BlockContext, SoAWarpContext, WarpContext
from repro.memory.hierarchy import MemorySystem
from repro.memory.image import MemoryImage

_INF = float("inf")


@dataclass
class SimulationResult:
    """Everything a harness needs from one simulation."""

    kernel: str
    design: str
    stats: SimStats
    memory: MemorySystem
    occupancy: Occupancy
    truncated: bool
    #: RunObservation when the run was traced, else None.
    obs: object | None = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def bandwidth_utilization(self) -> float:
        return self.memory.bandwidth_utilization(float(self.stats.cycles))


class Simulator:
    """Drives one kernel to completion on the configured machine."""

    def __init__(
        self,
        config: GPUConfig,
        kernel: Kernel,
        design: DesignPoint,
        image: MemoryImage,
        caba_factory: Callable[[SM], object] | None = None,
        assist_regs_per_thread: int = 0,
        obs: object | None = None,
        fast_forward: bool = True,
        sample: SampleConfig | None = None,
        capacity: object | None = None,
    ) -> None:
        """
        Args:
            config: Machine description.
            kernel: The kernel launch to run.
            design: Compression design point.
            image: Compressed view of global memory for this workload.
            caba_factory: Builds a CABA controller for an SM; required
                when the design uses assist warps.
            assist_regs_per_thread: Extra per-thread register demand of
                the enabled assist subroutines (affects occupancy).
            obs: A ``repro.obs.RunObservation`` to attach to every
                component, or None (the default) for the untraced path.
            fast_forward: Disable to execute every cycle instead of
                jumping uniform-stall gaps (testing/audit only; results
                are identical for designs without a CABA controller,
                whose utilization monitor samples executed cycles).
            sample: Interval-sampling knobs (repro.gpu.sampling), or
                None (the default) for exact, byte-identical
                simulation. The simulator never reads the environment
                itself — callers (the harness RunSpec) resolve
                REPRO_SAMPLE, so directly constructed simulators stay
                exact unless explicitly opted in.
            capacity: A ``repro.memory.hostlink.CapacityModel`` enabling
                capacity mode (spilled lines travel a host link), or
                None (the default) for the bandwidth-mode hierarchy.
        """
        if design.uses_assist_warps and caba_factory is None:
            raise ValueError(f"design {design.name} needs a CABA controller")
        self.config = config
        self.kernel = kernel
        self.design = design
        self.memory = MemorySystem(config, design, image, capacity=capacity)
        self.occupancy = compute_occupancy(
            config, kernel, assist_regs_per_thread=assist_regs_per_thread
        )

        # Events are bucketed per cycle: the heap orders the distinct
        # cycles and each bucket preserves insertion (schedule) order,
        # so delivery order matches the old per-event heap while same-
        # cycle events cost one push/pop instead of one each.
        self._event_cycles: list[int] = []
        self._event_buckets: dict[int, list[Callable[[], None]]] = {}
        self._cycle = 0

        self.sms = [
            SM(
                sm_id=i,
                config=config,
                memory=self.memory,
                schedule=self.schedule,
                on_block_retired=self._on_block_retired,
            )
            for i in range(config.n_sms)
        ]
        if caba_factory is not None:
            for sm in self.sms:
                sm.caba = caba_factory(sm)

        self.obs = obs
        if obs is not None:
            self.memory.attach_observer(obs)
            for sm in self.sms:
                sm.attach_observer(obs)
                if sm.caba is not None:
                    sm.caba.obs = obs

        self._ff_enabled = fast_forward
        self._sample = sample
        self._has_caba = caba_factory is not None

        # Vectorized warp-state mirror (REPRO_SOA, default on with
        # numpy). Must exist before the initial blocks are dispatched:
        # warps are constructed as SoA-backed from the start.
        self._soa = None
        cap = self.occupancy.blocks_per_sm * kernel.warps_per_block
        if cap > 0 and soa_enabled():
            self._soa = SoAState(
                config.n_sms, config.schedulers_per_sm, cap, kernel.program
            )
            for sm in self.sms:
                sm.attach_soa(self._soa)

        self._pending_blocks: deque[int] = deque(range(kernel.n_blocks))
        self._blocks_retired = 0
        self._fill_initial_blocks()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def schedule(self, cycle: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the start of ``cycle`` (never before next cycle)."""
        when = max(self._cycle + 1, math.ceil(cycle))
        bucket = self._event_buckets.get(when)
        if bucket is None:
            self._event_buckets[when] = [fn]
            heapq.heappush(self._event_cycles, when)
        else:
            bucket.append(fn)

    # ------------------------------------------------------------------
    # Block dispatch
    # ------------------------------------------------------------------
    def _fill_initial_blocks(self) -> None:
        for sm in self.sms:
            while (
                len(sm.resident_blocks) < self.occupancy.blocks_per_sm
                and self._pending_blocks
            ):
                self._dispatch_block(sm)

    def _dispatch_block(self, sm: SM) -> None:
        block_id = self._pending_blocks.popleft()
        block = BlockContext(block_id)
        program = self.kernel.program
        soa = self._soa
        for w in range(self.kernel.warps_per_block):
            index = self.kernel.warp_linear_index(block_id, w)
            if soa is None:
                warp = WarpContext(index, block, program, 0)
            else:
                warp = SoAWarpContext(
                    soa, soa.alloc(sm.sm_id, program), index, block,
                    program, 0,
                )
            block.warps.append(warp)
        sm.add_block(block)

    def _on_block_retired(self, sm: SM) -> None:
        self._blocks_retired += 1
        if self._pending_blocks:
            self._dispatch_block(sm)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._blocks_retired >= self.kernel.n_blocks

    def run(self) -> SimulationResult:
        if self._sample is not None:
            truncated = SamplingController(self, self._sample).run()
        else:
            truncated = self._run_detailed(self.config.max_cycles)
        if self.done:
            self._drain()
        for sm in self.sms:
            sm.flush_ledger()
        stats = SimStats(
            cycles=self._cycle, sms=[sm.stats for sm in self.sms]
        )
        if self.obs is not None:
            self.obs.finalize(stats, self.memory, self.sms)
        return SimulationResult(
            kernel=self.kernel.name,
            design=self.design.name,
            stats=stats,
            memory=self.memory,
            occupancy=self.occupancy,
            truncated=truncated,
            obs=self.obs,
        )

    def _run_detailed(self, limit: int) -> bool:
        """Drive cycle-detailed simulation until the kernel completes or
        the clock reaches ``limit``; True when stopped at the limit with
        work remaining. Exact mode is one call with
        ``limit = max_cycles``; the sampling controller calls this once
        per detailed interval, so the per-cycle body is identical in
        both modes."""
        cycles = self._event_cycles
        buckets = self._event_buckets
        heappop = heapq.heappop
        sms = self.sms
        if self._soa is not None:
            ticks = [sm.tick_soa for sm in sms]
        else:
            ticks = [sm.tick for sm in sms]
        ff = self._ff_enabled
        while not self.done:
            cycle = self._cycle
            if cycle >= limit:
                return True
            # Deliver events due this cycle. Callbacks can only schedule
            # for cycle+1 or later, so the bucket cannot grow mid-drain.
            while cycles and cycles[0] <= cycle:
                for fn in buckets.pop(heappop(cycles)):
                    fn()
            issued = 0
            for tick in ticks:
                issued += tick(cycle)
            self._cycle = cycle + 1
            if issued == 0 and ff:
                self._fast_forward(limit)
        return False

    def _deliver_until(self, target: int) -> int:
        """Deliver every queued event due by ``target``, advancing the
        clock with them but ticking no SM — the sampling controller's
        skip primitive (fills complete, MSHRs release, blocks drain, so
        memory state stays warm across the window). Stops early when
        the kernel completes; returns elapsed cycles."""
        start = self._cycle
        cycles = self._event_cycles
        buckets = self._event_buckets
        heappop = heapq.heappop
        while cycles and cycles[0] <= target and not self.done:
            when = heappop(cycles)
            if when > self._cycle:
                self._cycle = when
            for fn in buckets.pop(when):
                fn()
        if not self.done and self._cycle < target:
            self._cycle = target
        return self._cycle - start

    def _fast_forward(self, limit: int) -> None:
        """Jump to the next time anything can happen (capped at
        ``limit``, the detailed window's end).

        ``self._cycle`` has already advanced past the tick that issued
        nothing, so the just-simulated cycle is ``self._cycle - 1`` —
        the "now" that ``SM.next_wake`` expects. Passing ``self._cycle``
        instead would make an SM with pending CABA work report
        ``now + 2`` and the jump would skip a cycle in which an assist
        warp could have issued; tests/gpu/test_simulator.py pins
        fast-forward on/off byte-identity against exactly that class of
        off-by-one.
        """
        wake = float(self._event_cycles[0]) if self._event_cycles else _INF
        cycle = self._cycle
        soa = self._soa
        if soa is not None and not self._has_caba:
            # Without a CABA controller every SM's next_wake is exactly
            # its last tick's wake hint, mirrored into the SoA wake
            # list at the end of tick_soa — one batched min replaces
            # the per-SM next_wake calls.
            if wake > cycle:
                hint = min(soa.wake)
                if hint < wake:
                    wake = hint
        else:
            for sm in self.sms:
                hint = sm.next_wake(cycle - 1)
                if hint < wake:
                    wake = hint
                    if wake <= cycle:
                        return
        if wake == _INF or wake <= cycle:
            return
        target = min(int(wake), limit)
        skipped = target - cycle
        if skipped <= 0:
            return
        for sm in self.sms:
            sm.replay_stall(skipped)
        self._cycle = target

    def _drain(self) -> None:
        """Flush CABA store buffers so end-of-kernel traffic is counted,
        and release MSHRs of assist-issued fills that would complete in
        the dead time after the last warp retires."""
        for sm in self.sms:
            if sm.caba is not None:
                sm.caba.flush(self._cycle)
        self.memory.drain_inflight()
