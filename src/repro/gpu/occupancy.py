"""Static SM occupancy and register-allocation accounting.

Reproduces the analysis behind Figure 2: how many thread blocks fit on
one SM given the hard thread/block limits and the register/shared-memory
partitioning, and what fraction of the register file is left statically
unallocated — the headroom CABA's assist warps live in (Section 3.2.2:
the assist-warp register demand is added to the per-block requirement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel


@dataclass(frozen=True)
class Occupancy:
    """Result of the static occupancy calculation for one kernel."""

    blocks_per_sm: int
    warps_per_sm: int
    limiting_factor: str
    allocated_registers: int
    total_registers: int

    @property
    def unallocated_register_fraction(self) -> float:
        """Figure 2's metric: statically unallocated register-file share."""
        if self.total_registers == 0:
            return 0.0
        return 1.0 - self.allocated_registers / self.total_registers


class OccupancyError(ValueError):
    """The kernel cannot be scheduled on this machine at all."""


def compute_occupancy(
    config: GPUConfig,
    kernel: Kernel,
    assist_regs_per_thread: int = 0,
) -> Occupancy:
    """How many blocks of ``kernel`` fit per SM.

    ``assist_regs_per_thread`` is the extra per-thread register demand of
    enabled assist-warp subroutines; raising it can reduce occupancy —
    the register-pressure overhead of CABA emerges from here.
    """
    regs_per_thread = kernel.regs_per_thread + assist_regs_per_thread
    regs_per_block = regs_per_thread * kernel.threads_per_block

    limits: dict[str, int] = {
        "threads": config.max_threads_per_sm // kernel.threads_per_block,
        "blocks": config.max_blocks_per_sm,
        "warp_slots": config.warps_per_sm // kernel.warps_per_block,
        "registers": config.registers_per_sm // regs_per_block,
    }
    if kernel.smem_per_block > 0:
        limits["shared_memory"] = config.smem_per_sm // kernel.smem_per_block

    limiting_factor = min(limits, key=lambda k: limits[k])
    blocks = limits[limiting_factor]
    if blocks < 1:
        raise OccupancyError(
            f"kernel {kernel.name!r} does not fit on one SM "
            f"(limited by {limiting_factor})"
        )
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * kernel.warps_per_block,
        limiting_factor=limiting_factor,
        allocated_registers=blocks * regs_per_block,
        total_registers=config.registers_per_sm,
    )
