"""Warp and thread-block execution contexts.

A :class:`WarpContext` is the scheduler-visible state of one warp: its
position in the program, its scoreboard (a bitmask of registers with
outstanding writes), barrier state and outstanding-memory accounting.
Assist warps get their own lightweight scoreboard inside the CABA
framework; parent warps additionally carry an ``assist_block`` counter —
a high-priority (blocking) assist warp stalls its parent until it
completes (Section 4.2.1: "stalls the progress of its parent warp").
"""

from __future__ import annotations

from repro.gpu.isa import Instr, Program


class WarpContext:
    """Dynamic state of one resident warp."""

    #: SoA mirror handle. ``None`` on the reference path (and on assist
    #: warps); :class:`SoAWarpContext` overrides it with a real slot.
    #: Mutation sites test ``warp.soa is not None`` before calling
    #: :func:`touch`, so the reference path pays one class-attribute
    #: read per state-changing event and nothing else.
    soa = None

    __slots__ = (
        "global_index",
        "block",
        "program",
        "pc",
        "iteration",
        "pending_mask",
        "finished",
        "at_barrier",
        "outstanding_mem",
        "assist_block",
        "age",
        "sched",
        "coal_key",
        "coal_lines",
        "mshr_fail_epoch",
        "mem_source",
    )

    def __init__(
        self, global_index: int, block: "BlockContext", program: Program, age: int
    ) -> None:
        self.global_index = global_index
        self.block = block
        self.program = program
        self.pc = 0
        self.iteration = 0
        self.pending_mask = 0
        self.finished = False
        self.at_barrier = False
        self.outstanding_mem = 0
        #: Count of blocking assist warps currently gating this warp.
        self.assist_block = 0
        #: Dispatch order; GTO falls back to oldest-first on a switch.
        self.age = age
        #: Scheduler this warp is statically assigned to.
        self.sched = 0
        #: Memo for the coalescer: replayed memory instructions reuse
        #: their line list instead of regenerating addresses.
        self.coal_key: tuple[int, int] | None = None
        self.coal_lines: list[int] = []
        #: MSHR epoch at which this warp's current load last failed the
        #: MSHR pre-check; the SM skips the retry until the epoch moves.
        self.mshr_fail_epoch = -1
        #: Deepest memory level the warp's most recent load reached
        #: (repro.memory.hierarchy.MEM_SRC_*); only maintained while the
        #: observability ledger is attached.
        self.mem_source = 0

    # ------------------------------------------------------------------
    @property
    def current_instr(self) -> Instr:
        return self.program.body[self.pc]

    def can_consider(self) -> bool:
        """Whether the scheduler should look at this warp at all."""
        return not (self.finished or self.at_barrier or self.assist_block > 0)

    def advance(self) -> bool:
        """Move past the just-issued instruction; True when the warp is
        executing its final instruction of the final iteration."""
        self.pc += 1
        if self.pc >= len(self.program.body):
            self.pc = 0
            self.iteration += 1
            if self.iteration >= self.program.iterations:
                self.finished = True
                return True
        return False

    @property
    def drained(self) -> bool:
        """Finished and with no memory operations still in flight."""
        return self.finished and self.outstanding_mem == 0


def touch(warp) -> None:
    """Write one warp's screen-visible state through to its SoA mirror
    slot and invalidate the owning scheduler's memoized scan results.

    Every site that mutates a tracked field (``pc``, ``pending_mask``,
    ``finished``, ``at_barrier``, ``assist_block``) calls this — guarded
    by ``warp.soa is not None`` so the reference path and detached
    warps skip it with a single attribute read. The fields stay plain
    slot attributes: an earlier property-based write-through doubled
    the cost of every hot-path *read* (the issue scan reads
    ``pending_mask``/``pc`` millions of times per run), whereas
    mutations are comparatively rare events.

    Fields that never influence the issue scan or its traced
    refinements independently of a tracked field (``iteration``,
    ``outstanding_mem``, ``mem_source``, the coalescer memo,
    ``mshr_fail_epoch``) are untracked: every behavioural write to
    them is adjacent to a tracked write on the same warp.
    """
    soa = warp.soa
    slot = warp.slot
    soa.pending[slot] = warp.pending_mask
    soa.pc[slot] = warp.pc
    soa.inactive[slot] = (
        1 if (warp.finished or warp.at_barrier or warp.assist_block) else 0
    )
    soa.seq[soa.gid_of[slot]] += 1


class SoAWarpContext(WarpContext):
    """A warp whose screen-visible state is mirrored into a
    :class:`repro.gpu.soa.SoAState` slot.

    The scheduler-facing contract is identical to :class:`WarpContext`
    — same plain attributes, same costs on the read side. The mirror is
    kept in sync by :func:`touch` calls at the mutation sites, plus the
    :meth:`advance` override below for the hottest write (the program
    counter moving past an issued instruction).
    """

    __slots__ = ("soa", "slot")

    def __init__(self, soa, slot: int, global_index: int,
                 block: "BlockContext", program: Program, age: int) -> None:
        self.soa = soa
        self.slot = slot
        super().__init__(global_index, block, program, age)

    def advance(self) -> bool:
        finished = super().advance()
        soa = self.soa
        if soa is not None:
            slot = self.slot
            soa.pc[slot] = self.pc
            if finished:
                soa.inactive[slot] = 1
            soa.seq[soa.gid_of[slot]] += 1
        return finished

    def detach(self) -> None:
        """Disconnect from the arrays (called when the slot is
        released). Late register-release events on retired warps keep
        mutating the plain attributes, but must not write into a slot
        that may already belong to a new warp."""
        self.soa = None


class BlockContext:
    """Dynamic state of one resident thread block."""

    __slots__ = (
        "block_id",
        "warps",
        "barrier_arrivals",
        "finished_warps",
        "all_finished",
        "retired",
    )

    def __init__(self, block_id: int) -> None:
        self.block_id = block_id
        self.warps: list[WarpContext] = []
        self.barrier_arrivals = 0
        self.finished_warps = 0
        self.all_finished = False
        self.retired = False

    def arrive_at_barrier(self, warp: WarpContext) -> bool:
        """Register a barrier arrival; True when the barrier releases."""
        warp.at_barrier = True
        if warp.soa is not None:
            touch(warp)
        self.barrier_arrivals += 1
        # Finished warps never reach the barrier again; they count as
        # permanently arrived (CUDA semantics: exited threads do not
        # participate in __syncthreads()).
        live = len(self.warps) - self.finished_warps
        if self.barrier_arrivals >= live:
            self.barrier_arrivals = 0
            for member in self.warps:
                if member.at_barrier:
                    member.at_barrier = False
                    if member.soa is not None:
                        touch(member)
            return True
        return False

    def note_warp_finished(self) -> bool:
        """Record one warp finishing; True when the whole block is done."""
        self.finished_warps += 1
        return self.finished_warps >= len(self.warps)

    @property
    def drained(self) -> bool:
        return all(w.drained for w in self.warps)
