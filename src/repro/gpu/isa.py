"""SIMT instruction and program representation.

The simulator is trace-driven at warp granularity: every warp executes a
:class:`Program`, a compact static loop body whose memory instructions
carry an address-generator callback evaluated per (warp, iteration). This
mirrors how the paper's workloads exercise the machine — what matters for
bottleneck behaviour is the mix of ALU/SFU/memory operations, their
dependences, and the addresses they touch, not scalar semantics.

Registers are abstract slots 0..63 per warp context. Slots 0..31 belong to
the parent warp; slots 32..63 are the statically provisioned assist-warp
registers (Section 3.2.2 of the paper: assist warps share the parent's
register context, with their requirement added to the per-block register
count). Dependences are tracked through bitmasks for speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

#: First register slot reserved for assist-warp use.
ASSIST_REG_BASE = 32


class OpKind(enum.IntEnum):
    """Instruction classes the pipelines distinguish."""

    ALU = 0  # integer/FP pipeline
    SFU = 1  # special function unit (long latency, low throughput)
    LOAD = 2  # global/shared load through the LSU
    STORE = 3  # global/shared store through the LSU
    SYNC = 4  # block-wide barrier
    NOP = 5  # consumes an issue slot only
    MEMO = 6  # memoizable-region marker (Section 7.1 extension)


class MemSpace(enum.IntEnum):
    """Address spaces a memory instruction may target."""

    GLOBAL = 0  # through L1/L2/DRAM
    SHARED = 1  # on-chip scratchpad, fixed latency
    LOCAL_L1 = 2  # assist-warp accesses that terminate at the L1 (e.g.
    # reading a compressed fill or writing the decompressed line back)


#: Address generator: (warp_linear_index, iteration) -> line addresses.
AddressFn = Callable[[int, int], Sequence[int]]


def reg_mask(*regs: int) -> int:
    """Bitmask over register slots, used for dependence checks."""
    mask = 0
    for reg in regs:
        if not 0 <= reg < 64:
            raise ValueError(f"register slot out of range: {reg}")
        mask |= 1 << reg
    return mask


@dataclass(frozen=True)
class Instr:
    """One static instruction in a warp program.

    Attributes:
        kind: Pipeline class.
        latency: Cycles from issue to writeback (result availability).
        dst_mask: Registers written (bitmask).
        src_mask: Registers read (bitmask).
        space: Address space for LOAD/STORE.
        addr_fn: Address generator for GLOBAL memory instructions;
            ``None`` for non-memory ops and fixed-latency spaces.
        tag: Debug label.
        meta: Kind-specific payload (MEMO: length of the memoizable
            region that follows the marker).
    """

    kind: OpKind
    latency: int = 1
    dst_mask: int = 0
    src_mask: int = 0
    space: MemSpace = MemSpace.GLOBAL
    addr_fn: AddressFn | None = None
    tag: str = ""
    meta: int = 0

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)


def alu(latency: int = 4, dst: int = 1, src: int = 0, tag: str = "alu") -> Instr:
    """An ALU instruction writing register ``dst`` and reading ``src``."""
    return Instr(
        OpKind.ALU,
        latency=latency,
        dst_mask=reg_mask(dst),
        src_mask=reg_mask(src),
        tag=tag,
    )


def sfu(latency: int = 20, dst: int = 2, src: int = 1, tag: str = "sfu") -> Instr:
    """A special-function-unit instruction (e.g. transcendental)."""
    return Instr(
        OpKind.SFU,
        latency=latency,
        dst_mask=reg_mask(dst),
        src_mask=reg_mask(src),
        tag=tag,
    )


def load(
    addr_fn: AddressFn,
    dst: int = 3,
    src: int = 0,
    space: MemSpace = MemSpace.GLOBAL,
    tag: str = "load",
) -> Instr:
    """A load whose completion time the memory hierarchy decides."""
    return Instr(
        OpKind.LOAD,
        latency=0,
        dst_mask=reg_mask(dst),
        src_mask=reg_mask(src),
        space=space,
        addr_fn=addr_fn,
        tag=tag,
    )


def store(
    addr_fn: AddressFn,
    src: int = 3,
    space: MemSpace = MemSpace.GLOBAL,
    tag: str = "store",
) -> Instr:
    """A store; retires without waiting for the memory acknowledgement."""
    return Instr(
        OpKind.STORE,
        latency=1,
        dst_mask=0,
        src_mask=reg_mask(src),
        space=space,
        addr_fn=addr_fn,
        tag=tag,
    )


def sync(tag: str = "sync") -> Instr:
    """A block-wide barrier."""
    return Instr(OpKind.SYNC, latency=1, tag=tag)


@dataclass(frozen=True)
class Program:
    """A static loop body executed ``iterations`` times by each warp.

    The same ``Program`` object is shared by every warp of a kernel; the
    per-warp dynamic behaviour comes from the address generators, which
    receive the warp's linear index.
    """

    body: tuple[Instr, ...]
    iterations: int = 1
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a program needs at least one instruction")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def __len__(self) -> int:
        return len(self.body) * self.iterations

    @property
    def loads_per_iteration(self) -> int:
        return sum(
            1
            for instr in self.body
            if instr.kind is OpKind.LOAD and instr.space is MemSpace.GLOBAL
        )

    @property
    def stores_per_iteration(self) -> int:
        return sum(
            1
            for instr in self.body
            if instr.kind is OpKind.STORE and instr.space is MemSpace.GLOBAL
        )


@dataclass(frozen=True)
class AssistProgram:
    """A short assist-warp subroutine held in the Assist Warp Store.

    Unlike parent programs these never loop; ``register_demand`` is the
    number of architectural registers the compiler must provision per
    warp hosting this subroutine (Section 3.2.2).
    """

    body: tuple[Instr, ...]
    name: str
    register_demand: int = 4
    # Active-mask width: how many SIMT lanes the subroutine really needs
    # (Section 3.4's static lane enable/disable).
    lanes: int = 32
    #: Per-pc scoreboard need masks (src | dst), precomputed so the
    #: assist issue loops can reject a blocked warp without the
    #: try_issue_assist call.
    need: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("an assist subroutine needs at least one instruction")
        if not 1 <= self.lanes <= 32:
            raise ValueError(f"lanes must be in [1, 32], got {self.lanes}")
        object.__setattr__(
            self,
            "need",
            tuple(i.src_mask | i.dst_mask for i in self.body),
        )

    def __len__(self) -> int:
        return len(self.body)
