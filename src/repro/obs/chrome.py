"""Chrome trace_event emitter for visual timeline inspection.

Produces the JSON object format understood by ``chrome://tracing`` /
Perfetto: one process per SM, one thread row per scheduler holding the
run-length-encoded stall-category timeline, plus one extra row per SM
for assist-warp lifetimes. Timestamps are simulated cycles (rendered as
microseconds by the viewer, which only affects axis labels).

The collector samples rather than archives: once ``max_events`` events
have been emitted it stops recording and counts the drops, so tracing a
long run cannot exhaust memory. Event emission is deterministic — the
ledger feeds slots in simulation order and the trailing open segments
are flushed in (sm, scheduler) order.
"""

from __future__ import annotations

from repro.obs.ledger import StallCat

#: Synthetic thread row (per SM) carrying assist-warp lifetime events.
ASSIST_TID = 255

_CAT_NAMES = [cat.name.lower() for cat in StallCat]


class ChromeTraceCollector:
    """Accumulates trace_event dicts; export with :meth:`export`."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        # Per (sm, sched): [clock, segment_start, segment_cat].
        self._lanes: dict[tuple[int, int], list[int]] = {}

    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def note_slot(self, sm: int, sched: int, cat: int, n: int) -> None:
        """Advance scheduler ``sched``'s timeline by ``n`` cycles of
        category ``cat`` (called by the ledger once per charge)."""
        lane = self._lanes.get((sm, sched))
        if lane is None:
            self._lanes[(sm, sched)] = [n, 0, cat]
            return
        if cat == lane[2]:
            lane[0] += n
            return
        self._close(sm, sched, lane)
        lane[1] = lane[0]
        lane[0] += n
        lane[2] = cat

    def _close(self, sm: int, sched: int, lane: list[int]) -> None:
        duration = lane[0] - lane[1]
        if duration <= 0:
            return
        self._emit({
            "name": _CAT_NAMES[lane[2]],
            "cat": "slots",
            "ph": "X",
            "pid": sm,
            "tid": sched,
            "ts": lane[1],
            "dur": duration,
        })

    def assist_event(self, sm: int, task: str, line: int, start: int,
                     end: int, completed: bool) -> None:
        """One assist warp's lifetime, from trigger to retire/cancel."""
        self._emit({
            "name": f"{task}:{line}" if completed else f"{task}:{line} (cancelled)",
            "cat": "assist",
            "ph": "X",
            "pid": sm,
            "tid": ASSIST_TID,
            "ts": start,
            "dur": max(1, end - start),
        })

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Close all open slot segments (call once, at end of run)."""
        for (sm, sched) in sorted(self._lanes):
            self._close(sm, sched, self._lanes[(sm, sched)])
        self._lanes.clear()

    def export(self) -> dict:
        """JSON-ready trace_event object-format payload."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "metadata": {"clock": "simulated-cycles",
                         "dropped_events": self.dropped},
        }
