"""Trace-artifact serialization: JSON/CSV files and the CLI table.

All writers are deterministic — sorted keys, integer metrics, newline-
terminated — so identical runs produce byte-identical artifacts whether
they ran serially, through the parallel engine, or with compression
planes on or off (tested in ``tests/obs/test_trace_export.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.ledger import CAT_LABELS, StallCat


def payload_json(payload: dict) -> str:
    """Canonical JSON for an ``RunResult.obs`` payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def payload_csv(payload: dict) -> str:
    """Flat CSV: ledger rows, then counters, then histograms."""
    lines = ["kind,name,field,value"]
    ledger = payload.get("ledger", {})
    for cat, total in sorted(ledger.get("totals", {}).items()):
        lines.append(f"ledger,total,{cat},{total}")
    for sm_id, counts in enumerate(ledger.get("per_sm", [])):
        for cat, count in zip(ledger.get("categories", []), counts):
            lines.append(f"ledger,sm{sm_id},{cat},{count}")
    metrics = payload.get("metrics", {})
    for name, value in sorted(metrics.get("counters", {}).items()):
        lines.append(f"counter,{name},value,{value}")
    for name, hist in sorted(metrics.get("histograms", {}).items()):
        for field in ("count", "total", "min", "max"):
            lines.append(f"histogram,{name},{field},{hist[field]}")
        for i, n in enumerate(hist["bins"]):
            lines.append(f"histogram,{name},bin{i},{n}")
    return "\n".join(lines) + "\n"


def write_trace_files(payload: dict, out_dir: Path | str,
                      base: str) -> list[Path]:
    """Write ``<base>.json`` / ``<base>.csv`` (and ``<base>.chrome.json``
    when the payload carries chrome events); returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    json_path = out / f"{base}.json"
    json_path.write_text(payload_json(payload))
    written.append(json_path)
    csv_path = out / f"{base}.csv"
    csv_path.write_text(payload_csv(payload))
    written.append(csv_path)
    chrome = payload.get("chrome")
    if chrome is not None:
        chrome_path = out / f"{base}.chrome.json"
        chrome_path.write_text(
            json.dumps(chrome, indent=1, sort_keys=True) + "\n"
        )
        written.append(chrome_path)
    return written


def render_ledger(payload: dict) -> str:
    """Human-readable stall-attribution table for the CLI."""
    ledger = payload["ledger"]
    totals = ledger["totals"]
    denom = sum(totals.values())
    lines = [f"{'category':22s} {'slots':>12s} {'share':>8s}"]
    for cat in StallCat:
        count = totals[cat.name.lower()]
        share = count / denom if denom else 0.0
        lines.append(f"{CAT_LABELS[cat]:22s} {count:12d} {share:8.1%}")
    lines.append(f"{'total':22s} {denom:12d} {1:8.1%}" if denom
                 else f"{'total':22s} {0:12d} {0:8.1%}")
    return "\n".join(lines)
