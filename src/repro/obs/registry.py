"""Named-metric registry: counters and histograms with stable export.

Components record into the registry only when tracing is enabled, so
the default hot path stays untouched. Histograms use power-of-two bins
(latencies and occupancies span orders of magnitude) and track exact
count/sum/min/max, which keeps the export compact, integer-valued and
byte-deterministic across runs, worker processes and backends.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Snapshot-style assignment (used when mirroring existing
        aggregate counters into the registry at end of run)."""
        self.value = value


class Histogram:
    """Power-of-two-binned histogram of non-negative integers.

    Bin ``i`` holds values in ``[2**(i-1), 2**i)`` with bin 0 holding
    exactly zero; values beyond the last bin land in the overflow bin.
    """

    __slots__ = ("name", "bins", "count", "total", "min", "max")

    N_BINS = 32

    def __init__(self, name: str) -> None:
        self.name = name
        self.bins = [0] * (self.N_BINS + 1)
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int, n: int = 1) -> None:
        if value < 0:
            value = 0
        index = value.bit_length()
        if index > self.N_BINS:
            index = self.N_BINS
        self.bins[index] += n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def export(self) -> dict:
        # Trailing empty bins are trimmed so the payload stays small and
        # independent of N_BINS bumps.
        last = 0
        for i, n in enumerate(self.bins):
            if n:
                last = i
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "bins": self.bins[: last + 1],
        }


class MetricsRegistry:
    """Create-on-first-use store of named counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._counters[name] = counter = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._histograms[name] = histogram = Histogram(name)
        return histogram

    def set_counters(self, prefix: str, values: dict[str, int]) -> None:
        """Mirror a dict of aggregate counters under ``prefix.*``."""
        for key in sorted(values):
            self.counter(f"{prefix}.{key}").set(int(values[key]))

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Deterministic, JSON-ready view (names sorted)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].export()
                for name in sorted(self._histograms)
            },
        }

    def to_csv(self) -> str:
        """Flat CSV: ``kind,name,field,value`` rows, sorted."""
        lines = ["kind,name,field,value"]
        for name in sorted(self._counters):
            lines.append(f"counter,{name},value,{self._counters[name].value}")
        for name in sorted(self._histograms):
            h = self._histograms[name].export()
            for field in ("count", "total", "min", "max"):
                lines.append(f"histogram,{name},{field},{h[field]}")
            for i, n in enumerate(h["bins"]):
                lines.append(f"histogram,{name},bin{i},{n}")
        return "\n".join(lines) + "\n"
