"""``repro.obs`` — the zero-cost-when-disabled observability layer.

The paper's argument rests on knowing where cycles go (Figs. 1, 2,
7-13); this package makes that auditable. One :class:`RunObservation`
per traced run bundles

* a :class:`~repro.obs.ledger.StallLedger` charging every SM issue slot
  to exactly one refined stall category and one responsible warp,
* a :class:`~repro.obs.registry.MetricsRegistry` of named counters and
  histograms fed by the memory hierarchy, DRAM channels, interconnect
  and CABA controllers, and
* optionally a :class:`~repro.obs.chrome.ChromeTraceCollector` sampling
  warp/assist-warp timelines for ``chrome://tracing``.

Tracing is off by default and gated behind ``REPRO_TRACE=1`` (or the
``trace=True`` runner argument / ``repro trace`` CLI subcommand). With
tracing off the instrumented components pay only a handful of ``is not
None`` checks — the runner benchmark guard in
``scripts/bench_hot_paths.py`` holds this under 3%. Observation never
feeds back into simulation, so traced and untraced runs produce
bit-identical statistics (enforced by ``tests/obs``).
"""

from __future__ import annotations

import os

from repro.obs.chrome import ChromeTraceCollector
from repro.obs.ledger import (
    ASSIST_WARP,
    CAT_LABELS,
    NO_WARP,
    SLOT_OF_CAT,
    StallCat,
    StallLedger,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "ASSIST_WARP",
    "CAT_LABELS",
    "ChromeTraceCollector",
    "MetricsRegistry",
    "NO_WARP",
    "RunObservation",
    "SLOT_OF_CAT",
    "StallCat",
    "StallLedger",
    "trace_enabled",
]


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks for the observability layer."""
    return os.environ.get("REPRO_TRACE", "0") not in ("", "0")


class RunObservation:
    """Everything observed about one traced simulation run.

    Components hold a reference and call the ``record_*`` hooks; the
    simulator calls :meth:`finalize` once at end of run to snapshot the
    aggregate counters and close the chrome timelines.
    """

    def __init__(self, n_sms: int, n_schedulers: int,
                 chrome: bool = False,
                 max_chrome_events: int = 200_000) -> None:
        self.ledger = StallLedger(n_sms, n_schedulers)
        self.registry = MetricsRegistry()
        self.chrome = (
            ChromeTraceCollector(max_events=max_chrome_events)
            if chrome else None
        )
        self.ledger.chrome = self.chrome

    @classmethod
    def for_config(cls, config, chrome: bool = False) -> "RunObservation":
        return cls(config.n_sms, config.schedulers_per_sm, chrome=chrome)

    # ------------------------------------------------------------------
    # Component hooks (only reached when tracing is enabled)
    # ------------------------------------------------------------------
    def record_fill(self, fill, now: float) -> None:
        """One L1 load lookup resolved (hit or freshly issued miss)."""
        reg = self.registry
        reg.histogram("mem.fill_latency").record(
            int(fill.ready_time - now)
        )
        source = ("l1", "l2", "dram")[fill.source]
        reg.counter(f"mem.fills_{source}").inc()
        if fill.needs_assist:
            reg.counter("mem.fills_need_assist").inc()

    def record_dram(self, mc_id: int, bursts: int, is_write: bool,
                    queue_cycles: float) -> None:
        """One DRAM line transfer scheduled on channel ``mc_id``."""
        reg = self.registry
        reg.histogram("dram.queue_cycles").record(int(queue_cycles))
        reg.histogram("dram.bursts_per_access").record(bursts)

    def record_icnt_reply(self, mc_id: int, flits: int,
                          queue_cycles: float) -> None:
        """One crossbar reply reserved (the contended direction)."""
        reg = self.registry
        reg.histogram("icnt.reply_flits").record(flits)
        reg.histogram("icnt.reply_queue_cycles").record(int(queue_cycles))

    def assist_event(self, sm_id: int, task: str, line: int, start: int,
                     end: int, completed: bool) -> None:
        """One assist warp retired (or was cancelled)."""
        self.registry.histogram("caba.assist_lifetime").record(
            max(0, end - start)
        )
        if self.chrome is not None:
            self.chrome.assist_event(sm_id, task, line, start, end,
                                     completed)

    # ------------------------------------------------------------------
    def finalize(self, stats, memory, sms) -> None:
        """Snapshot end-of-run aggregates into the registry."""
        reg = self.registry
        reg.set_counters("slots", {
            slot.name.lower(): count
            for slot, count in stats.slot_totals().items()
        })
        reg.set_counters("sim", stats.counters())
        reg.counter("sim.cycles").set(stats.cycles)
        reg.set_counters("traffic", vars(memory.stats))
        dram = {"reads": 0, "writes": 0, "read_bursts": 0,
                "write_bursts": 0, "metadata_bursts": 0,
                "row_hits": 0, "row_misses": 0}
        for mc in memory.mcs:
            for key in dram:
                dram[key] += getattr(mc.stats, key)
        reg.set_counters("dram", dram)
        reg.set_counters("icnt", {
            "request_flits": memory.crossbar.request_flits,
            "reply_flits": memory.crossbar.reply_flits,
        })
        caba_totals: dict[str, int] = {}
        for sm in sms:
            if sm.caba is None or not hasattr(sm.caba, "stats"):
                continue
            for key, value in vars(sm.caba.stats).items():
                caba_totals[key] = caba_totals.get(key, 0) + value
        if caba_totals:
            reg.set_counters("caba", caba_totals)
        if self.chrome is not None:
            self.chrome.flush()

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Deterministic JSON-ready payload (rides on ``RunResult.obs``)."""
        payload = {
            "ledger": self.ledger.export(),
            "metrics": self.registry.export(),
        }
        if self.chrome is not None:
            payload["chrome"] = self.chrome.export()
        return payload
