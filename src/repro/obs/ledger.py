"""The stall-attribution ledger.

Figure 1's issue-slot taxonomy (:class:`repro.gpu.stats.Slot`) explains
*that* a scheduler slot stalled; this ledger explains *why*. When
tracing is enabled, every (SM, scheduler) issue slot of every cycle is
charged to exactly one refined :class:`StallCat` category and to one
responsible warp, so the paper's bottleneck claims (memory-bound stalls,
MSHR/LSU hazards, assist-warp overhead) can be audited and
regression-tested instead of eyeballed.

Two invariants make the ledger trustworthy (and are enforced by
``tests/obs/test_ledger_invariants.py``):

* **Completeness** — per SM, the category counts sum exactly to
  ``cycles * schedulers_per_sm``; nothing is double-charged or dropped.
* **Reconciliation** — grouping the refined categories by
  :data:`SLOT_OF_CAT` reproduces the coarse ``SmStats.slots`` counters
  bit-exactly, so the ledger can never drift from the stats the figures
  are built on.

The refinement rules (applied only on the traced path, so the default
hot path never pays for them):

* An issued slot is ``ISSUE`` for a parent instruction and ``ASSIST``
  for an assist-warp instruction (the framework's overhead).
* A structural memory stall is ``MSHR_FULL`` when any considered warp
  failed the MSHR pre-check, else ``LSU`` (load/store port busy).
* A scoreboard stall is ``DRAM``/``INTERCONNECT`` when a blocked warp
  has a global load in flight (classified by where the most recent load
  was served), else ``SCOREBOARD`` (plain data dependence).
* An idle slot is ``ASSIST_WAIT`` when a warp is gated by a blocking
  decompression assist warp, else ``IDLE``.
"""

from __future__ import annotations

import enum

from repro.gpu.stats import Slot

#: Synthetic warp id charged for slots no parent warp is responsible for.
NO_WARP = -1
#: Synthetic warp id charged for issued assist-warp instructions.
ASSIST_WARP = -2
#: Synthetic warp id charged for extrapolated (sampled-skip) slots —
#: see :mod:`repro.gpu.sampling`. Keeping them on their own warp id
#: means the measured per-warp attribution is never diluted by
#: extrapolation, while the per-SM completeness and slot-reconciliation
#: invariants still close over sampled runs.
EXTRAP_WARP = -3


class StallCat(enum.IntEnum):
    """Refined per-slot attribution categories."""

    ISSUE = 0  # a parent instruction issued
    ASSIST = 1  # an assist-warp instruction issued (framework overhead)
    COMPUTE = 2  # ready warp blocked by a busy ALU/SFU pipe
    SCOREBOARD = 3  # data dependence on in-flight compute results
    MSHR_FULL = 4  # ready memory op blocked by full MSHRs
    LSU = 5  # ready memory op blocked by the LSU port
    INTERCONNECT = 6  # waiting on a load served by the L2/interconnect
    DRAM = 7  # waiting on a load served by DRAM
    ASSIST_WAIT = 8  # parent warp gated by a blocking assist warp
    IDLE = 9  # nothing to issue


N_CATS = len(StallCat)

CAT_LABELS = {
    StallCat.ISSUE: "Parent Issue",
    StallCat.ASSIST: "Assist-Warp Issue",
    StallCat.COMPUTE: "Compute Pipe Stall",
    StallCat.SCOREBOARD: "Scoreboard Stall",
    StallCat.MSHR_FULL: "MSHR-Full Stall",
    StallCat.LSU: "LSU Stall",
    StallCat.INTERCONNECT: "Interconnect Wait",
    StallCat.DRAM: "DRAM Wait",
    StallCat.ASSIST_WAIT: "Assist-Warp Wait",
    StallCat.IDLE: "Idle",
}

#: Coarse Figure-1 slot each category belongs to. Grouping ledger counts
#: by this table must reproduce ``SmStats.slots`` exactly.
SLOT_OF_CAT = (
    Slot.ACTIVE,  # ISSUE
    Slot.ACTIVE,  # ASSIST
    Slot.COMPUTE_STALL,  # COMPUTE
    Slot.DATA_STALL,  # SCOREBOARD
    Slot.MEMORY_STALL,  # MSHR_FULL
    Slot.MEMORY_STALL,  # LSU
    Slot.DATA_STALL,  # INTERCONNECT
    Slot.DATA_STALL,  # DRAM
    Slot.IDLE,  # ASSIST_WAIT
    Slot.IDLE,  # IDLE
)


class StallLedger:
    """Per-SM, per-warp refined issue-slot accounting.

    ``charge`` is called exactly once per (SM, scheduler) slot per
    simulated cycle (fast-forwarded gaps are charged in bulk with the
    last classification, mirroring ``SmStats`` replay semantics), so the
    completeness invariant holds by construction.
    """

    def __init__(self, n_sms: int, n_schedulers: int) -> None:
        self.n_sms = n_sms
        self.n_schedulers = n_schedulers
        #: counts[sm][cat] — the invariant-bearing aggregate.
        self.sm_counts: list[list[int]] = [[0] * N_CATS for _ in range(n_sms)]
        #: per-SM {warp_id: [count per cat]}; warp ids are kernel-global
        #: warp indices, plus :data:`NO_WARP` / :data:`ASSIST_WARP`.
        self.warp_counts: list[dict[int, list[int]]] = [
            {} for _ in range(n_sms)
        ]
        #: Per-SM count of slots charged by extrapolation (sampled
        #: skips) rather than detailed execution; zero on exact runs.
        self.extrapolated: list[int] = [0] * n_sms
        #: Optional chrome-trace collector fed per charge (see
        #: :mod:`repro.obs.chrome`).
        self.chrome = None

    # ------------------------------------------------------------------
    def charge(self, sm_id: int, sched: int, cat: int, warp_id: int,
               n: int = 1) -> None:
        """Attribute ``n`` slots of scheduler ``sched`` to ``cat``."""
        self.sm_counts[sm_id][cat] += n
        rows = self.warp_counts[sm_id]
        row = rows.get(warp_id)
        if row is None:
            rows[warp_id] = row = [0] * N_CATS
        row[cat] += n
        chrome = self.chrome
        if chrome is not None:
            chrome.note_slot(sm_id, sched, cat, n)

    def charge_extrapolated(self, sm_id: int, sched: int, cat: int,
                            n: int) -> None:
        """Attribute ``n`` extrapolated (sampled-skip) slots: charged to
        the synthetic :data:`EXTRAP_WARP` and tallied separately so
        sampled runs stay auditable."""
        self.extrapolated[sm_id] += n
        self.charge(sm_id, sched, cat, EXTRAP_WARP, n)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def totals(self) -> dict[StallCat, int]:
        out = {cat: 0 for cat in StallCat}
        for counts in self.sm_counts:
            for cat in StallCat:
                out[cat] += counts[cat]
        return out

    def slot_view(self, sm_id: int) -> list[int]:
        """Ledger counts regrouped into the five Figure-1 slots; must
        equal ``SmStats.slots`` for the same SM."""
        out = [0] * len(Slot)
        for cat, count in enumerate(self.sm_counts[sm_id]):
            out[SLOT_OF_CAT[cat]] += count
        return out

    def attributed_slots(self, sm_id: int) -> int:
        """Total slots charged for one SM (= cycles * schedulers)."""
        return sum(self.sm_counts[sm_id])

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Deterministic, JSON-ready view of the ledger."""
        return {
            "categories": [cat.name.lower() for cat in StallCat],
            "per_sm": [list(counts) for counts in self.sm_counts],
            "per_warp": [
                {str(wid): list(row) for wid, row in sorted(rows.items())}
                for rows in self.warp_counts
            ],
            "totals": {
                cat.name.lower(): count
                for cat, count in self.totals().items()
            },
            "extrapolated": list(self.extrapolated),
        }
