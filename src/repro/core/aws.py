"""The Assist Warp Store (AWS, Section 3.3).

An on-chip buffer, preloaded before kernel launch, holding the
instruction sequences of every enabled assist-warp subroutine. It is
indexed by subroutine ID (SR.ID) plus instruction ID (Inst.ID); here the
SR.ID is assigned at registration and looked up by (task, encoding) —
matching Section 4.2.1, where the AWS is indexed by the compression
encoding at the head of the cache line plus a load/store bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.isa import AssistProgram


class AwsCapacityError(RuntimeError):
    """Raised when subroutines exceed the on-chip store capacity."""


@dataclass(frozen=True)
class StoredSubroutine:
    """One AWS entry."""

    sr_id: int
    task: str  # "decompress" | "compress" | custom (memoization, ...)
    encoding: str  # algorithm encoding or "" for task-global subroutines
    program: AssistProgram


class AssistWarpStore:
    """Fixed-capacity on-chip subroutine storage."""

    def __init__(self, max_subroutines: int = 32, max_instructions: int = 512):
        self.max_subroutines = max_subroutines
        self.max_instructions = max_instructions
        self._by_key: dict[tuple[str, str], StoredSubroutine] = {}
        self._instructions_used = 0

    def register(self, task: str, encoding: str, program: AssistProgram) -> int:
        """Preload a subroutine; returns its SR.ID."""
        key = (task, encoding)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing.sr_id
        if len(self._by_key) >= self.max_subroutines:
            raise AwsCapacityError(
                f"AWS full: {self.max_subroutines} subroutines already stored"
            )
        if self._instructions_used + len(program) > self.max_instructions:
            raise AwsCapacityError(
                f"AWS instruction storage exhausted "
                f"({self._instructions_used} + {len(program)} "
                f"> {self.max_instructions})"
            )
        sr_id = len(self._by_key)
        self._by_key[key] = StoredSubroutine(sr_id, task, encoding, program)
        self._instructions_used += len(program)
        return sr_id

    def lookup(self, task: str, encoding: str = "") -> StoredSubroutine:
        try:
            return self._by_key[(task, encoding)]
        except KeyError:
            raise KeyError(f"no subroutine registered for ({task!r}, {encoding!r})")

    def contains(self, task: str, encoding: str = "") -> bool:
        return (task, encoding) in self._by_key

    @property
    def subroutine_count(self) -> int:
        return len(self._by_key)

    @property
    def instructions_used(self) -> int:
        return self._instructions_used
