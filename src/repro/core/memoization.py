"""Memoization with assist warps (Section 7.1).

Compute-bound kernels often repeat computations over identical or
similar inputs. The paper proposes trading computation for storage:
an assist warp (1) hashes the inputs at a predefined trigger point,
(2) looks the hash up in a shared-memory LUT, and (3) on a hit lets the
parent skip the redundant region by loading the cached result.

The model: kernels mark a memoizable region with a MEMO instruction
(``Instr.meta`` = region length). When a warp issues the marker, a
high-priority lookup assist warp runs (hash + shared-memory probe). The
workload supplies a *signature function* mapping (warp, iteration) to
the computation's input signature; redundancy across warps/iterations
is whatever that function exhibits. On a LUT hit the parent's program
counter jumps over the region (the computation is replaced by the
cached result); on a miss the parent executes the region and a
low-priority store assist inserts the result into the LUT.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

from repro.core.base import AssistController
from repro.gpu.isa import (
    ASSIST_REG_BASE,
    AssistProgram,
    Instr,
    MemSpace,
    OpKind,
    reg_mask,
)
from repro.gpu.warp import WarpContext, touch

#: (warp_linear_index, iteration) -> input signature of the computation.
SignatureFn = Callable[[int, int], int]

_R = ASSIST_REG_BASE


def _alu(dst: int, src: int, tag: str) -> Instr:
    return Instr(OpKind.ALU, latency=1, dst_mask=reg_mask(_R + dst),
                 src_mask=reg_mask(_R + src), tag=tag)


def memo_lookup_program() -> AssistProgram:
    """Hash the live-in values and probe the shared-memory LUT."""
    body = (
        Instr(OpKind.ALU, latency=1, dst_mask=reg_mask(_R + 0),
              src_mask=reg_mask(0), tag="move_livein"),
        _alu(1, 0, "hash_fold"),
        Instr(OpKind.LOAD, dst_mask=reg_mask(_R + 2),
              src_mask=reg_mask(_R + 1), space=MemSpace.SHARED,
              tag="lut_probe"),
        _alu(3, 2, "tag_compare"),
    )
    return AssistProgram(body=body, name="memo_lookup", register_demand=4)


def memo_result_load_program() -> AssistProgram:
    """On a hit: fetch the cached result into the parent's registers."""
    body = (
        Instr(OpKind.LOAD, dst_mask=reg_mask(_R + 4),
              src_mask=reg_mask(_R + 1), space=MemSpace.SHARED,
              tag="lut_read_result"),
        _alu(5, 4, "move_liveout"),
    )
    return AssistProgram(body=body, name="memo_result", register_demand=4)


def memo_store_program() -> AssistProgram:
    """On a miss: insert the computed result into the LUT (low priority)."""
    body = (
        _alu(4, 1, "pack_result"),
        Instr(OpKind.STORE, latency=1, src_mask=reg_mask(_R + 4),
              space=MemSpace.SHARED, tag="lut_insert"),
    )
    return AssistProgram(body=body, name="memo_store", register_demand=4)


@dataclass(frozen=True)
class MemoParams:
    """Memoization knobs."""

    #: Shared-memory LUT entries (per SM).
    lut_entries: int = 512
    #: Extra per-thread registers for the memoization subroutines.
    register_demand: int = 4


class _ActiveMemo:
    #: Assist warps are never mirrored into the SoA arrays (see
    #: repro.gpu.warp.touch).
    soa = None

    __slots__ = ("parent", "program", "pc", "deployed", "pending_mask",
                 "task", "line", "cancelled", "blocking", "signature",
                 "region_len")

    def __init__(self, parent, program, task, signature, region_len):
        self.parent = parent
        self.program = program
        self.pc = 0
        self.deployed = len(program.body)  # extensions skip deploy staging
        self.pending_mask = 0
        self.task = task
        self.line = 0
        self.cancelled = False
        self.blocking = False
        self.signature = signature
        self.region_len = region_len


@dataclass
class MemoStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    regions_skipped_instructions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoizationController(AssistController):
    """Per-SM memoization machinery built on the assist-warp substrate."""

    def __init__(
        self,
        sm,
        signature_fn: SignatureFn,
        params: MemoParams | None = None,
    ) -> None:
        super().__init__(sm)
        self.signature_fn = signature_fn
        self.params = params if params is not None else MemoParams()
        self.stats = MemoStats()
        n_sched = sm.config.schedulers_per_sm
        self._high: list[deque[_ActiveMemo]] = [deque() for _ in range(n_sched)]
        self._low: deque[_ActiveMemo] = deque()
        # The shared-memory LUT: signature -> True, FIFO-bounded.
        self._lut: OrderedDict[int, bool] = OrderedDict()
        self._lookup = memo_lookup_program()
        self._result = memo_result_load_program()
        self._store = memo_store_program()

    # ------------------------------------------------------------------
    def on_memo_point(self, warp: WarpContext, region_len: int, cycle: int) -> None:
        if region_len <= 0 or warp.finished:
            return
        signature = self.signature_fn(warp.global_index, warp.iteration)
        assist = _ActiveMemo(warp, self._lookup, "memo_lookup",
                             signature, region_len)
        assist.blocking = True
        warp.assist_block += 1
        if warp.soa is not None:
            touch(warp)
        self._high[warp.sched].append(assist)
        self.stats.lookups += 1

    # ------------------------------------------------------------------
    def issue_high(self, sched: int, cycle: int) -> bool:
        dq = self._high[sched]
        for _ in range(len(dq)):
            aw = dq[0]
            pc = aw.pc
            program = aw.program
            if aw.cancelled or pc >= len(program.body):
                dq.popleft()
                continue
            if aw.pending_mask & program.need[pc]:
                # Scoreboard-blocked: try_issue_assist would reject it
                # the same way, without side effects.
                dq.rotate(-1)
                continue
            if self.sm.try_issue_assist(aw, cycle):
                if aw.pc >= len(program.body):
                    dq.popleft()
                return True
            dq.rotate(-1)
        return False

    def issue_low(self, sched: int, cycle: int) -> bool:
        while self._low and (
            self._low[0].cancelled
            or self._low[0].pc >= len(self._low[0].program.body)
        ):
            self._low.popleft()
        if self._low:
            aw = self._low[0]
            if not aw.pending_mask & aw.program.need[aw.pc] and (
                self.sm.try_issue_assist(aw, cycle)
            ):
                return True
        return False

    def has_pending_work(self) -> bool:
        return bool(self._low) or any(self._high)

    # ------------------------------------------------------------------
    def finish(self, assist: _ActiveMemo) -> None:
        if assist.task == "memo_lookup":
            self._finish_lookup(assist)
        elif assist.task == "memo_result":
            self._unblock(assist)
        # memo_store completions need no action: the LUT was updated
        # at spawn time and the store runs off the critical path.

    def _finish_lookup(self, assist: _ActiveMemo) -> None:
        hit = assist.signature in self._lut
        if hit:
            self._lut.move_to_end(assist.signature)
            self.stats.hits += 1
            self._skip_region(assist.parent, assist.region_len)
            follow = _ActiveMemo(assist.parent, self._result, "memo_result",
                                 assist.signature, 0)
            follow.blocking = assist.blocking
            assist.blocking = False
            self._high[assist.parent.sched].append(follow)
        else:
            self.stats.misses += 1
            self._lut[assist.signature] = True
            while len(self._lut) > self.params.lut_entries:
                self._lut.popitem(last=False)
            self._unblock(assist)
            self._low.append(
                _ActiveMemo(assist.parent, self._store, "memo_store",
                            assist.signature, 0)
            )

    def _skip_region(self, warp: WarpContext, region_len: int) -> None:
        """Jump the parent over the memoized region."""
        if warp.finished:
            return
        body_len = len(warp.program.body)
        skip = min(region_len, body_len - warp.pc)
        warp.pc += skip
        self.stats.regions_skipped_instructions += skip
        finished = False
        if warp.pc >= body_len:
            warp.pc = 0
            warp.iteration += 1
            if warp.iteration >= warp.program.iterations:
                warp.finished = True
                finished = True
        if warp.soa is not None:
            touch(warp)
        if finished:
            # Route through the SM so block-completion bookkeeping
            # (warp counts, block retirement) stays consistent.
            self.sm._on_warp_finished(warp)

    def _unblock(self, assist: _ActiveMemo) -> None:
        if assist.blocking:
            assist.parent.assist_block -= 1
            if assist.parent.soa is not None:
                touch(assist.parent)
            assist.blocking = False
