"""Opportunistic prefetching with assist warps (Section 7.2).

The paper argues assist warps are a natural home for GPU prefetching:
per-warp stride tracking needs fine-grained bookkeeping (spare registers
hold the metadata), the idle memory pipeline offers free slots, and
throttling falls out of the low-priority scheduling class.

The model: the controller observes every demand load (the SM's
``on_global_load`` hook), keeps a per-(warp, region) stride detector in
"spare registers", and once a stride is confirmed spawns a low-priority
prefetch assist warp. The subroutine computes the prefetch address
(two ALU ops); on completion the predicted line is requested through
the regular L1 miss path, warming the cache for the parent's future
iterations. Prefetches never steal MSHRs the demand stream is about to
need (a free-entry floor) and stop entirely while the AWC observes high
pipeline utilization — the paper's guard against flooding the off-chip
buses in bandwidth-bound phases.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.base import AssistController
from repro.gpu.isa import (
    ASSIST_REG_BASE,
    AssistProgram,
    Instr,
    OpKind,
    reg_mask,
)
from repro.gpu.warp import WarpContext

_R = ASSIST_REG_BASE


def prefetch_program() -> AssistProgram:
    """Compute the next predicted address from the stride metadata."""
    body = (
        Instr(OpKind.ALU, latency=1, dst_mask=reg_mask(_R + 0),
              src_mask=reg_mask(0), tag="move_livein"),
        Instr(OpKind.ALU, latency=1, dst_mask=reg_mask(_R + 1),
              src_mask=reg_mask(_R + 0), tag="add_stride"),
    )
    return AssistProgram(body=body, name="prefetch", register_demand=3)


@dataclass(frozen=True)
class PrefetchParams:
    """Prefetcher knobs."""

    #: Confirmations needed before a stride is trusted.
    train_threshold: int = 2
    #: How many strides ahead to fetch.
    distance: int = 2
    #: Lines fetched per trigger once trained.
    degree: int = 1
    #: Keep at least this many MSHRs free for demand misses.
    mshr_floor: int = 8
    #: Issue-slot utilization (EMA) above which prefetching pauses.
    throttle_threshold: float = 0.7
    #: EMA smoothing factor.
    ema_alpha: float = 0.05


@dataclass
class PrefetchStats:
    trained_streams: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_mshr: int = 0
    prefetches_dropped_throttle: int = 0


class _Stream:
    """Stride detector state for one (warp, region) pair."""

    __slots__ = ("last_line", "stride", "confirmations")

    def __init__(self) -> None:
        self.last_line: int | None = None
        self.stride = 0
        self.confirmations = 0


class _ActivePrefetch:
    #: Assist warps are never mirrored into the SoA arrays (see
    #: repro.gpu.warp.touch).
    soa = None

    __slots__ = ("parent", "program", "pc", "deployed", "pending_mask",
                 "task", "line", "cancelled", "blocking", "targets")

    def __init__(self, parent, program, targets):
        self.parent = parent
        self.program = program
        self.pc = 0
        self.deployed = len(program.body)
        self.pending_mask = 0
        self.task = "prefetch"
        self.line = targets[0] if targets else 0
        self.cancelled = False
        self.blocking = False
        self.targets = targets


#: Region granularity for stream tracking (distinct data structures sit
#: in distinct multi-MLine regions; see repro.workloads.tracegen).
_REGION_SHIFT = 21


class PrefetchController(AssistController):
    """Per-SM stride prefetching through low-priority assist warps."""

    def __init__(self, sm, params: PrefetchParams | None = None) -> None:
        super().__init__(sm)
        self.params = params if params is not None else PrefetchParams()
        self.stats = PrefetchStats()
        self._streams: dict[tuple[int, int], _Stream] = {}
        self._low: deque[_ActivePrefetch] = deque()
        self._program = prefetch_program()
        self._utilization = 0.0
        self._issued_lines: set[int] = set()

    # ------------------------------------------------------------------
    # Training (demand-load observation)
    # ------------------------------------------------------------------
    def on_global_load(self, warp: WarpContext, lines, cycle: int) -> None:
        params = self.params
        line = lines[0]
        key = (warp.global_index, line >> _REGION_SHIFT)
        stream = self._streams.get(key)
        if stream is None:
            stream = _Stream()
            self._streams[key] = stream
        if stream.last_line is not None:
            stride = line - stream.last_line
            if stride != 0 and stride == stream.stride:
                stream.confirmations += 1
                if stream.confirmations == params.train_threshold:
                    self.stats.trained_streams += 1
            else:
                stream.stride = stride
                stream.confirmations = 1 if stride != 0 else 0
        stream.last_line = line
        if stream.confirmations >= params.train_threshold:
            self._trigger(warp, line, stream.stride, cycle)

    def _trigger(self, warp: WarpContext, line: int, stride: int, cycle: int) -> None:
        params = self.params
        if self._utilization > params.throttle_threshold:
            self.stats.prefetches_dropped_throttle += 1
            return
        targets = []
        for k in range(params.degree):
            target = line + stride * (params.distance + k)
            if target > 0 and target not in self._issued_lines:
                targets.append(target)
        if not targets:
            return
        self._low.append(_ActivePrefetch(warp, self._program, targets))

    # ------------------------------------------------------------------
    # Issue / completion
    # ------------------------------------------------------------------
    def issue_low(self, sched: int, cycle: int) -> bool:
        while self._low and (
            self._low[0].cancelled
            or self._low[0].pc >= len(self._low[0].program.body)
        ):
            self._low.popleft()
        if self._low:
            aw = self._low[0]
            # Scoreboard precheck: skip the try_issue_assist call when
            # it would reject the warp anyway, without side effects.
            if not aw.pending_mask & aw.program.need[aw.pc] and (
                self.sm.try_issue_assist(aw, cycle)
            ):
                return True
        return False

    def has_pending_work(self) -> bool:
        return bool(self._low)

    def observe(self, issued: int, slots: int) -> None:
        alpha = self.params.ema_alpha
        self._utilization += alpha * (issued / slots - self._utilization)

    def finish(self, assist: _ActivePrefetch) -> None:
        """Address computed: issue the prefetch through the L1 miss path."""
        memory = self.sm.memory
        now = float(self.sm.now + 1)
        for target in assist.targets:
            free = memory.config.l1_mshrs - memory._mshr_used[self.sm.sm_id]
            if free <= self.params.mshr_floor:
                self.stats.prefetches_dropped_mshr += 1
                continue
            fill = memory.load(self.sm.sm_id, target, now)
            if fill is None:
                self.stats.prefetches_dropped_mshr += 1
                continue
            self._issued_lines.add(target)
            if not fill.merged and not fill.from_l1:
                self.stats.prefetches_issued += 1
                self.sm.schedule(
                    math.ceil(fill.fill_time),
                    lambda line=target: memory.complete_fill(
                        self.sm.sm_id, line
                    ),
                )
