"""The CABA framework: assist-warp generation, management and scheduling.

This package is the paper's primary contribution — the Core-Assisted
Bottleneck Acceleration machinery of Section 3 — plus the compression
subroutines of Section 4 and the extension applications of Section 7
(memoization, prefetching).
"""

from repro.core.aws import AssistWarpStore, AwsCapacityError, StoredSubroutine
from repro.core.base import AssistController
from repro.core.memoization import (
    MemoParams,
    MemoStats,
    MemoizationController,
    memo_lookup_program,
    memo_result_load_program,
    memo_store_program,
)
from repro.core.prefetch import (
    PrefetchController,
    PrefetchParams,
    PrefetchStats,
    prefetch_program,
)
from repro.core.controller import ActiveAssistWarp, CabaController, CabaStats
from repro.core.params import CabaParams
from repro.core.subroutines import (
    REGISTER_DEMAND,
    SubroutineLibrary,
    bdi_compress,
    bdi_decompress,
    cpack_compress,
    cpack_decompress,
    fpc_compress,
    fpc_decompress,
    fvc_compress,
    fvc_decompress,
)

__all__ = [
    "ActiveAssistWarp",
    "AssistController",
    "MemoParams",
    "MemoStats",
    "MemoizationController",
    "PrefetchController",
    "PrefetchParams",
    "PrefetchStats",
    "memo_lookup_program",
    "memo_result_load_program",
    "memo_store_program",
    "prefetch_program",
    "AssistWarpStore",
    "AwsCapacityError",
    "CabaController",
    "CabaParams",
    "CabaStats",
    "REGISTER_DEMAND",
    "StoredSubroutine",
    "SubroutineLibrary",
    "bdi_compress",
    "bdi_decompress",
    "cpack_compress",
    "cpack_decompress",
    "fpc_compress",
    "fpc_decompress",
    "fvc_compress",
    "fvc_decompress",
]
